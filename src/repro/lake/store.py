"""Content-addressed weight storage.

Weights are stored by digest of their serialized bytes, so identical
parameter sets share storage and every stored artifact has a stable,
citable identity.  An optional directory backend persists blobs to disk.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import numpy as np

from repro.errors import LakeError, LakeIntegrityError
from repro.obs import metrics as obs_metrics
from repro.obs.instrument import (
    WEIGHT_STORE_BYTES,
    WEIGHT_STORE_CACHE_HITS,
    WEIGHT_STORE_CACHE_MISSES,
    WEIGHT_STORE_DEDUP_HITS,
    WEIGHT_STORE_PUTS,
)
from repro.reliability.atomic import atomic_write_bytes
from repro.utils.hashing import bytes_digest
from repro.utils.serialization import arrays_to_bytes, bytes_to_arrays


class WeightStore:
    """In-memory (optionally disk-backed) content-addressed blob store."""

    def __init__(self, directory: Optional[str] = None):
        self._blobs: Dict[str, bytes] = {}
        self._directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        # Pre-register the cache counters so a metrics snapshot always
        # carries both names, even before the first get().
        registry = obs_metrics.get_registry()
        registry.counter(WEIGHT_STORE_CACHE_HITS)
        registry.counter(WEIGHT_STORE_CACHE_MISSES)

    def __len__(self) -> int:
        return len(self._blobs)

    def __contains__(self, digest: str) -> bool:
        return digest in self._blobs or self._on_disk(digest)

    def put(self, state: Dict[str, np.ndarray]) -> str:
        """Store a state dict; returns its content digest."""
        # Digest format v2: hash the serialized bytes directly.  (v1
        # hex-encoded the blob first — an avoidable 2x copy and encode on
        # a hot path; digests changed with the bump.)
        blob = arrays_to_bytes(state)
        digest = bytes_digest(blob, length=24)
        if digest in self._blobs:
            obs_metrics.inc(WEIGHT_STORE_DEDUP_HITS)
        else:
            obs_metrics.inc(WEIGHT_STORE_PUTS)
            self._blobs[digest] = blob
            obs_metrics.set_gauge(WEIGHT_STORE_BYTES, self.total_bytes())
            if self._directory is not None:
                path = self._path(digest)
                if not os.path.exists(path):
                    # Atomic: a crash mid-put leaves no partial blob for a
                    # later get() to mistake for the real artifact.
                    atomic_write_bytes(path, blob)
        return digest

    def get(self, digest: str) -> Dict[str, np.ndarray]:
        """Fetch a state dict by digest.

        Disk reads are re-verified against the digest that names them:
        a truncated or bit-rotted blob raises
        :class:`~repro.errors.LakeIntegrityError` (naming the path and
        the expected digest) instead of a cryptic ``np.load`` failure —
        and is never admitted to the in-memory cache.
        """
        return bytes_to_arrays(self.blob(digest))

    def blob(self, digest: str) -> bytes:
        """Raw serialized bytes for ``digest`` (verified on disk reads)."""
        blob = self._blobs.get(digest)
        if blob is not None:
            obs_metrics.inc(WEIGHT_STORE_CACHE_HITS)
            return blob
        obs_metrics.inc(WEIGHT_STORE_CACHE_MISSES)
        if self._on_disk(digest):
            path = self._path(digest)
            with open(path, "rb") as handle:
                blob = handle.read()
            actual = bytes_digest(blob, length=len(digest))
            if actual != digest:
                raise LakeIntegrityError(
                    path=path, expected=digest, actual=actual,
                    kind="weight blob",
                )
            self._blobs[digest] = blob
            obs_metrics.set_gauge(WEIGHT_STORE_BYTES, self.total_bytes())
            return blob
        raise LakeError(f"weights not found for digest {digest!r}")

    def digests(self):
        return list(self._blobs)

    def total_bytes(self) -> int:
        return sum(len(blob) for blob in self._blobs.values())

    def _path(self, digest: str) -> str:
        assert self._directory is not None
        return os.path.join(self._directory, f"{digest}.npz")

    def _on_disk(self, digest: str) -> bool:
        return self._directory is not None and os.path.exists(self._path(digest))
