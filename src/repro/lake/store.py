"""Content-addressed weight storage with out-of-core reads.

Weights are stored by digest of their serialized bytes, so identical
parameter sets share storage and every stored artifact has a stable,
citable identity.  An optional directory backend persists blobs to disk
as raw weight bundles (``.rwb``), optionally sharded by digest prefix
(:class:`~repro.lake.shard.ShardLayout`).

Reads from disk are *lazy*: a blob is stream-verified against the
digest that names it (O(chunk) memory), then opened with ``np.memmap``
so array bytes are paged in on access and never copied into the store.
That keeps resident memory flat no matter how many models a lake holds
— the property ``benchmarks/bench_shard.py`` gates on.  A store opened
over a persisted lake (``write_through=False``) is a pure read layer:
``put`` keeps new blobs in memory only, so rehydrating models never
mutates the on-disk lake.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.errors import LakeError, LakeIntegrityError
from repro.lake.shard import ShardLayout
from repro.obs import metrics as obs_metrics
from repro.obs.instrument import (
    WEIGHT_STORE_BYTES,
    WEIGHT_STORE_CACHE_HITS,
    WEIGHT_STORE_CACHE_MISSES,
    WEIGHT_STORE_DEDUP_HITS,
    WEIGHT_STORE_PUTS,
)
from repro.reliability.atomic import atomic_copy_file, atomic_write_bytes
from repro.reliability.digest import stream_digest
from repro.utils.hashing import bytes_digest
from repro.utils.serialization import (
    open_arrays_memmap,
    pack_arrays,
    unpack_arrays,
)


class WeightStore:
    """Content-addressed blob store: in-memory, optionally disk-backed."""

    def __init__(
        self,
        directory: Optional[str] = None,
        layout: Optional[ShardLayout] = None,
        write_through: bool = True,
    ):
        self._blobs: Dict[str, bytes] = {}
        self._directory = directory
        self._layout = layout or ShardLayout()
        self._write_through = write_through
        # Disk blobs that already passed a streaming digest check this
        # session; only *successes* are memoized, so a corrupted file
        # keeps failing until its bytes are actually repaired.
        self._verified: Set[str] = set()
        # One memmap per digest for the life of the store (or until
        # ``close``).  Without the memo every get() re-opened the blob
        # file, and each ``np.memmap`` holds a dup'ed fd until the array
        # is garbage-collected — a long-lived serving process doing one
        # open per request grows its fd table without bound.
        self._mapped: Dict[str, Dict[str, np.ndarray]] = {}
        # Serializes disk verification and memmap opening so concurrent
        # first-touch of the same digest can't double-open the file.
        self._lock = threading.RLock()
        if directory is not None and write_through:
            os.makedirs(directory, exist_ok=True)
        # Pre-register the cache counters so a metrics snapshot always
        # carries both names, even before the first get().
        registry = obs_metrics.get_registry()
        registry.counter(WEIGHT_STORE_CACHE_HITS)
        registry.counter(WEIGHT_STORE_CACHE_MISSES)

    @property
    def layout(self) -> ShardLayout:
        return self._layout

    def __len__(self) -> int:
        return len(self._blobs)

    def __contains__(self, digest: str) -> bool:
        return digest in self._blobs or self._on_disk(digest)

    def put(self, state: Dict[str, np.ndarray]) -> str:
        """Store a state dict; returns its content digest."""
        # Digest format v3: hash the raw weight bundle bytes.  (v2
        # hashed the npz archive — a zip container whose bytes cannot be
        # memmapped or stream-verified without full materialization;
        # digests changed with the bump, as they did for v1 -> v2.)
        blob = pack_arrays(state)
        digest = bytes_digest(blob, length=24)
        if digest in self._blobs:
            obs_metrics.inc(WEIGHT_STORE_DEDUP_HITS)
        else:
            obs_metrics.inc(WEIGHT_STORE_PUTS)
            self._blobs[digest] = blob
            obs_metrics.set_gauge(WEIGHT_STORE_BYTES, self.total_bytes())
            if self._directory is not None and self._write_through:
                path = self._path(digest)
                if not os.path.exists(path):
                    os.makedirs(os.path.dirname(path), exist_ok=True)
                    # Atomic: a crash mid-put leaves no partial blob for a
                    # later get() to mistake for the real artifact.
                    atomic_write_bytes(path, blob)
        return digest

    def get(self, digest: str) -> Dict[str, np.ndarray]:
        """Fetch a state dict by digest.

        Memory blobs decode in place; disk blobs are stream-verified
        (once per session) and then opened as memmap-backed arrays, so
        a get() never materializes a full weight file.  A truncated or
        bit-rotted blob raises :class:`~repro.errors.LakeIntegrityError`
        (naming the path and the expected digest) instead of a cryptic
        parse failure.  Returned arrays are read-only views — callers
        that mutate must copy, as ``Module.load_state_dict`` does.
        """
        blob = self._blobs.get(digest)
        if blob is not None:
            obs_metrics.inc(WEIGHT_STORE_CACHE_HITS)
            return unpack_arrays(blob)
        with self._lock:
            mapped = self._mapped.get(digest)
            if mapped is not None:
                obs_metrics.inc(WEIGHT_STORE_CACHE_HITS)
                return dict(mapped)
            obs_metrics.inc(WEIGHT_STORE_CACHE_MISSES)
            if self._on_disk(digest):
                path = self._verify_disk(digest)
                mapped = open_arrays_memmap(path)
                self._mapped[digest] = mapped
                # Shallow copy: callers own their dict (and may pop from
                # it) but share the single memmap per blob file.
                return dict(mapped)
        raise LakeError(f"weights not found for digest {digest!r}")

    def close(self) -> None:
        """Release memoized memmap handles and verification memos.

        Dropping the store's references lets CPython reclaim each
        ``np.memmap`` (closing its dup'ed fd) as soon as no caller holds
        a view — arrays still referenced elsewhere keep their mapping
        valid, so closing under outstanding readers is safe: they finish
        against the old snapshot while new opens see fresh bytes.  The
        verification memo is cleared too, so a reopened blob is
        re-checked against its digest.  The store remains usable; the
        next get() simply reopens.
        """
        with self._lock:
            self._mapped.clear()
            self._verified.clear()

    @property
    def open_handles(self) -> int:
        """Number of memoized memmap handles currently held."""
        with self._lock:
            return len(self._mapped)

    def blob(self, digest: str) -> bytes:
        """Raw serialized bytes for ``digest`` (verified on disk reads).

        Disk reads are *not* cached: callers that need full bytes (blob
        export, resident-mode benchmarks) are the exception, and caching
        them would silently re-grow the resident footprint the memmap
        path exists to avoid.  Use :meth:`materialize` to opt in.
        """
        blob = self._blobs.get(digest)
        if blob is not None:
            obs_metrics.inc(WEIGHT_STORE_CACHE_HITS)
            return blob
        obs_metrics.inc(WEIGHT_STORE_CACHE_MISSES)
        if self._on_disk(digest):
            path = self._verify_disk(digest)
            with open(path, "rb") as handle:
                return handle.read()
        raise LakeError(f"weights not found for digest {digest!r}")

    def materialize(self, digest: str) -> None:
        """Load a disk blob fully into memory (resident mode).

        Exists for workloads that genuinely want RAM-speed repeated
        access — and for the benchmark that demonstrates why the memmap
        default is the right one.
        """
        if digest in self._blobs:
            return
        blob = self.blob(digest)
        self._blobs[digest] = blob
        obs_metrics.set_gauge(WEIGHT_STORE_BYTES, self.total_bytes())

    def export_blob(
        self, digest: str, dest: str, fsync: bool = True
    ) -> Tuple[int, str]:
        """Atomically write a blob's bytes to ``dest``.

        Memory blobs are written directly; disk blobs are streamed via
        :func:`~repro.reliability.atomic.atomic_copy_file`, so exporting
        (e.g. during ``repro migrate``) never materializes a weight
        file.  Returns ``(size, file_digest)`` for manifest integrity
        entries — ``file_digest`` is the 24-char digest of the written
        bytes, which for a weight bundle equals ``digest`` itself.
        """
        os.makedirs(os.path.dirname(os.path.abspath(dest)), exist_ok=True)
        blob = self._blobs.get(digest)
        if blob is not None:
            atomic_write_bytes(dest, blob, fsync=fsync)
            return len(blob), bytes_digest(blob, length=24)
        if self._on_disk(digest):
            path = self._verify_disk(digest)
            size = atomic_copy_file(path, dest, fsync=fsync)
            return size, digest
        raise LakeError(f"weights not found for digest {digest!r}")

    def blob_size(self, digest: str) -> int:
        blob = self._blobs.get(digest)
        if blob is not None:
            return len(blob)
        if self._on_disk(digest):
            return os.path.getsize(self._path(digest))
        raise LakeError(f"weights not found for digest {digest!r}")

    def digests(self):
        return list(self._blobs)

    def total_bytes(self) -> int:
        return sum(len(blob) for blob in self._blobs.values())

    def _verify_disk(self, digest: str) -> str:
        """Streaming digest check of a disk blob; memoized on success."""
        path = self._path(digest)
        with self._lock:
            if digest not in self._verified:
                actual = stream_digest(path, length=len(digest))
                if actual != digest:
                    raise LakeIntegrityError(
                        path=path, expected=digest, actual=actual,
                        kind="weight blob",
                    )
                self._verified.add(digest)
        return path

    def _path(self, digest: str) -> str:
        assert self._directory is not None
        return os.path.join(self._directory, self._layout.weight_subpath(digest))

    def _on_disk(self, digest: str) -> bool:
        return self._directory is not None and os.path.exists(self._path(digest))
