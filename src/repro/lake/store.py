"""Content-addressed weight storage.

Weights are stored by digest of their serialized bytes, so identical
parameter sets share storage and every stored artifact has a stable,
citable identity.  An optional directory backend persists blobs to disk.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import numpy as np

from repro.errors import LakeError
from repro.utils.hashing import text_digest
from repro.utils.serialization import arrays_to_bytes, bytes_to_arrays


class WeightStore:
    """In-memory (optionally disk-backed) content-addressed blob store."""

    def __init__(self, directory: Optional[str] = None):
        self._blobs: Dict[str, bytes] = {}
        self._directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def __len__(self) -> int:
        return len(self._blobs)

    def __contains__(self, digest: str) -> bool:
        return digest in self._blobs or self._on_disk(digest)

    def put(self, state: Dict[str, np.ndarray]) -> str:
        """Store a state dict; returns its content digest."""
        blob = arrays_to_bytes(state)
        digest = text_digest(blob.hex(), length=24)
        if digest not in self._blobs:
            self._blobs[digest] = blob
            if self._directory is not None:
                path = self._path(digest)
                if not os.path.exists(path):
                    with open(path, "wb") as handle:
                        handle.write(blob)
        return digest

    def get(self, digest: str) -> Dict[str, np.ndarray]:
        """Fetch a state dict by digest."""
        blob = self._blobs.get(digest)
        if blob is None and self._on_disk(digest):
            with open(self._path(digest), "rb") as handle:
                blob = handle.read()
            self._blobs[digest] = blob
        if blob is None:
            raise LakeError(f"weights not found for digest {digest!r}")
        return bytes_to_arrays(blob)

    def digests(self):
        return list(self._blobs)

    def total_bytes(self) -> int:
        return sum(len(blob) for blob in self._blobs.values())

    def _path(self, digest: str) -> str:
        assert self._directory is not None
        return os.path.join(self._directory, f"{digest}.npz")

    def _on_disk(self, digest: str) -> bool:
        return self._directory is not None and os.path.exists(self._path(digest))
