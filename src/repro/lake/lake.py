"""The model lake: registry of models, weights, datasets, and metadata.

This is the storage layer of Figure 2.  It is deliberately *dumb* about
semantics: it holds models "in their natural formats" and enforces the
visibility rules of the three viewpoints (history may be hidden, weights
may be API-only).  All intelligence — search, versioning, attribution —
lives in :mod:`repro.core` and operates *on* a lake.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.registry import DatasetRegistry
from repro.errors import (
    DuplicateIdError,
    HistoryUnavailableError,
    IntrinsicsUnavailableError,
    ModelNotFoundError,
)
from repro.lake.card import ModelCard
from repro.lake.record import ModelHistory, ModelRecord
from repro.lake.store import WeightStore
from repro.nn.models import build_model
from repro.nn.module import Module
from repro.obs import metrics as obs_metrics
from repro.obs.instrument import LAKE_MODEL_LOADS, LAKE_MODELS_ADDED
from repro.obs.tracing import trace
from repro.utils.hashing import combine_digests, stable_hash


class ModelLake:
    """A population of registered models plus their related data.

    The lake keeps a logical clock (monotonically increasing event
    counter).  Every mutation bumps it; citation snapshots reference a
    clock value, making citations stable under lake evolution.
    """

    def __init__(self, weight_directory: Optional[str] = None):
        self._records: Dict[str, ModelRecord] = {}
        self._weights = WeightStore(directory=weight_directory)
        self._datasets = DatasetRegistry()
        self._clock = 0
        self._id_counter = itertools.count()
        #: Shard layout of the persisted lake this instance was loaded
        #: from, or None for an in-memory / pre-shard lake.  Search and
        #: embedding caches use it to group work by digest prefix.
        self.storage_layout = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_model(
        self,
        model: Module,
        name: str,
        card: Optional[ModelCard] = None,
        history: Optional[ModelHistory] = None,
        history_public: bool = True,
        weights_public: bool = True,
        tags: Optional[Sequence[str]] = None,
        model_id: Optional[str] = None,
    ) -> ModelRecord:
        """Register a model; returns its record.

        The model id is derived from the name, a counter, and the weight
        digest, so ids are unique and stable within a lake instance.
        """
        with trace("lake.add_model", name=name):
            state = model.state_dict()
            weights_digest = self._weights.put(state)
            if model_id is None:
                serial = next(self._id_counter)
                model_id = f"m{serial:04d}-{stable_hash([name, weights_digest], length=8)}"
            if model_id in self._records:
                raise DuplicateIdError(f"model id already registered: {model_id!r}")
            self._clock += 1
            record = ModelRecord(
                model_id=model_id,
                name=name,
                architecture=model.architecture_spec(),
                weights_digest=weights_digest,
                card=card or ModelCard(model_name=name),
                history=history,
                history_public=history_public,
                weights_public=weights_public,
                created_at=self._clock,
                tags=list(tags or []),
            )
            self._records[model_id] = record
            obs_metrics.inc(LAKE_MODELS_ADDED)
            return record

    def register_record(self, record: ModelRecord) -> None:
        """Insert a fully-built record without touching the weight store.

        The out-of-core load path (:func:`repro.lake.persist.load_lake`
        on a v2 lake) reconstructs records straight from the manifest
        and leaves weights on disk behind a read-layer
        :class:`WeightStore`; rehydrating every model just to re-put its
        weights would defeat lazy loading.  The caller owns clock and
        digest bookkeeping.
        """
        if record.model_id in self._records:
            raise DuplicateIdError(
                f"model id already registered: {record.model_id!r}"
            )
        self._records[record.model_id] = record
        obs_metrics.inc(LAKE_MODELS_ADDED)

    # ------------------------------------------------------------------
    # Access (with viewpoint visibility rules)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, model_id: str) -> bool:
        return model_id in self._records

    def __iter__(self) -> Iterator[ModelRecord]:
        return iter(sorted(self._records.values(), key=lambda r: r.created_at))

    def model_ids(self) -> List[str]:
        return [record.model_id for record in self]

    def get_record(self, model_id: str) -> ModelRecord:
        try:
            return self._records[model_id]
        except KeyError:
            raise ModelNotFoundError(model_id) from None

    def get_model(self, model_id: str, force: bool = False) -> Module:
        """Rehydrate a model's Module from stored weights (intrinsics).

        Raises :class:`IntrinsicsUnavailableError` for API-only models
        unless ``force`` (used by the lake operator itself, which always
        has physical access).
        """
        record = self.get_record(model_id)
        if not record.weights_public and not force:
            raise IntrinsicsUnavailableError(
                f"weights of {model_id!r} are not public (API-only model)"
            )
        with trace("lake.get_model", model_id=model_id):
            obs_metrics.inc(LAKE_MODEL_LOADS)
            model = build_model(record.architecture)
            model.load_state_dict(self._weights.get(record.weights_digest))
            model.eval()
            return model

    def get_history(self, model_id: str, force: bool = False) -> ModelHistory:
        """The (D, A) viewpoint; raises if hidden or never recorded."""
        record = self.get_record(model_id)
        if record.history is None:
            raise HistoryUnavailableError(f"no history recorded for {model_id!r}")
        if not record.history_public and not force:
            raise HistoryUnavailableError(f"history of {model_id!r} is hidden")
        return record.history

    def has_public_history(self, model_id: str) -> bool:
        record = self.get_record(model_id)
        return record.history is not None and record.history_public

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def update_card(self, model_id: str, card: ModelCard) -> None:
        record = self.get_record(model_id)
        record.card = card
        self._clock += 1

    def set_history_visibility(self, model_id: str, public: bool) -> None:
        self.get_record(model_id).history_public = public
        self._clock += 1

    def set_weights_visibility(self, model_id: str, public: bool) -> None:
        self.get_record(model_id).weights_public = public
        self._clock += 1

    def record_metric(self, model_id: str, metric: str, value: float) -> None:
        self.get_record(model_id).eval_metrics[metric] = float(value)
        self._clock += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def filter(
        self,
        predicate: Optional[Callable[[ModelRecord], bool]] = None,
        family: Optional[str] = None,
        tag: Optional[str] = None,
    ) -> List[ModelRecord]:
        """Records matching simple structured filters."""
        results = []
        for record in self:
            if family is not None and record.family != family:
                continue
            if tag is not None and tag not in record.tags:
                continue
            if predicate is not None and not predicate(record):
                continue
            results.append(record)
        return results

    def find_by_name(self, name: str) -> List[ModelRecord]:
        return [record for record in self if record.name == name]

    @property
    def datasets(self) -> DatasetRegistry:
        return self._datasets

    @property
    def weights(self) -> WeightStore:
        return self._weights

    @property
    def clock(self) -> int:
        return self._clock

    def close(self) -> None:
        """Release the weight store's open file handles.

        A lake loaded with ``materialize=False`` keeps one memmap per
        touched weight blob; long-lived holders (the serve layer's
        snapshots, hot-swap reloads) call this to return fd usage to
        zero deterministically instead of waiting on garbage collection.
        The lake stays usable — subsequent reads reopen and re-verify.
        """
        self._weights.close()

    def snapshot_digest(self) -> str:
        """Digest of the lake's current registration state.

        Citations embed this digest plus the clock value: any later
        mutation changes the digest, so stale citations are detectable.
        """
        parts = [
            f"{record.model_id}:{record.weights_digest}:{record.card.digest()}"
            for record in self
        ]
        return combine_digests(parts + [str(self._clock)])
