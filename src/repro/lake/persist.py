"""Lake persistence: save/load a full ModelLake to/from a directory.

Layout::

    <dir>/manifest.json      records, cards, histories, clock
    <dir>/weights/*.npz      content-addressed weight blobs
    <dir>/datasets/*.npz     dataset token/label arrays
    <dir>/lineage.json       dataset derivation edges

Round trip guarantee: ``load_lake(save_lake(lake, d))`` reproduces every
record, card field, history (including transforms), weight blob, dataset,
and the dataset lineage graph.  The logical clock is restored, so
citations remain resolvable across processes.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Dict

import numpy as np

from repro.data.datasets import TextDataset
from repro.errors import LakeError
from repro.lake.card import ModelCard
from repro.lake.lake import ModelLake
from repro.lake.record import ModelHistory, ModelRecord
from repro.transforms.base import TransformRecord
from repro.utils.serialization import to_jsonable

_MANIFEST = "manifest.json"
_LINEAGE = "lineage.json"


def _history_to_dict(history: ModelHistory) -> Dict:
    payload = {
        "parent_ids": list(history.parent_ids),
        "dataset_digest": history.dataset_digest,
        "dataset_name": history.dataset_name,
        "algorithm": history.algorithm,
        "seed": history.seed,
        "transform": None,
    }
    if history.transform is not None:
        payload["transform"] = {
            "kind": history.transform.kind,
            "params": to_jsonable(history.transform.params),
            "dataset_digest": history.transform.dataset_digest,
            "dataset_name": history.transform.dataset_name,
            "seed": history.transform.seed,
        }
    return payload


def _history_from_dict(payload: Dict) -> ModelHistory:
    transform = None
    if payload.get("transform"):
        t = payload["transform"]
        transform = TransformRecord(
            kind=t["kind"], params=dict(t.get("params") or {}),
            dataset_digest=t.get("dataset_digest"),
            dataset_name=t.get("dataset_name"), seed=t.get("seed", 0),
        )
    return ModelHistory(
        parent_ids=tuple(payload.get("parent_ids") or ()),
        transform=transform,
        dataset_digest=payload.get("dataset_digest"),
        dataset_name=payload.get("dataset_name"),
        algorithm=payload.get("algorithm", "train_from_scratch"),
        seed=payload.get("seed", 0),
    )


def save_lake(lake: ModelLake, directory: str) -> str:
    """Persist ``lake`` under ``directory``; returns the directory."""
    os.makedirs(directory, exist_ok=True)
    weights_dir = os.path.join(directory, "weights")
    datasets_dir = os.path.join(directory, "datasets")
    os.makedirs(weights_dir, exist_ok=True)
    os.makedirs(datasets_dir, exist_ok=True)

    records = []
    for record in lake:
        state = lake.weights.get(record.weights_digest)
        np.savez(
            os.path.join(weights_dir, f"{record.weights_digest}.npz"),
            **{name.replace("/", "__SLASH__"): arr for name, arr in state.items()},
        )
        records.append({
            "model_id": record.model_id,
            "name": record.name,
            "architecture": to_jsonable(record.architecture),
            "weights_digest": record.weights_digest,
            "card": to_jsonable(asdict(record.card)),
            "history": (
                _history_to_dict(record.history) if record.history else None
            ),
            "history_public": record.history_public,
            "weights_public": record.weights_public,
            "created_at": record.created_at,
            "tags": list(record.tags),
            "eval_metrics": to_jsonable(record.eval_metrics),
        })

    dataset_entries = []
    for digest in lake.datasets.digests():
        dataset = lake.datasets.get(digest)
        np.savez(
            os.path.join(datasets_dir, f"{digest}.npz"),
            tokens=dataset.tokens, labels=dataset.labels,
        )
        dataset_entries.append({
            "digest": digest,
            "name": dataset.name,
            "domains": list(dataset.domains),
            "meta": to_jsonable(dataset.meta),
        })

    lineage = []
    for digest in lake.datasets.digests():
        for child in lake.datasets.children(digest):
            data = lake.datasets._lineage.get_edge_data(digest, child) or {}
            lineage.append({
                "source": digest, "target": child,
                "operation": data.get("operation"),
                "params": to_jsonable(data.get("params") or {}),
            })

    with open(os.path.join(directory, _MANIFEST), "w") as handle:
        json.dump(
            {"clock": lake.clock, "records": records, "datasets": dataset_entries},
            handle, indent=1,
        )
    with open(os.path.join(directory, _LINEAGE), "w") as handle:
        json.dump(lineage, handle, indent=1)
    return directory


def load_lake(directory: str) -> ModelLake:
    """Reconstruct a ModelLake saved by :func:`save_lake`."""
    manifest_path = os.path.join(directory, _MANIFEST)
    if not os.path.exists(manifest_path):
        raise LakeError(f"no lake manifest at {manifest_path!r}")
    with open(manifest_path) as handle:
        manifest = json.load(handle)

    lake = ModelLake()

    # Datasets first (histories may reference their digests).
    for entry in manifest.get("datasets", []):
        path = os.path.join(directory, "datasets", f"{entry['digest']}.npz")
        with np.load(path) as payload:
            dataset = TextDataset(
                tokens=payload["tokens"], labels=payload["labels"],
                domains=list(entry["domains"]), name=entry["name"],
                meta=dict(entry.get("meta") or {}),
            )
        restored = lake.datasets.register(dataset)
        if restored != entry["digest"]:
            raise LakeError(
                f"dataset digest mismatch on load: {restored} != {entry['digest']}"
            )

    lineage_path = os.path.join(directory, _LINEAGE)
    if os.path.exists(lineage_path):
        with open(lineage_path) as handle:
            for edge in json.load(handle):
                lake.datasets._lineage.add_edge(
                    edge["source"], edge["target"],
                    operation=edge.get("operation"),
                    params=dict(edge.get("params") or {}),
                )

    from repro.nn.models import build_model

    for entry in sorted(manifest["records"], key=lambda r: r["created_at"]):
        path = os.path.join(directory, "weights", f"{entry['weights_digest']}.npz")
        with np.load(path) as payload:
            state = {
                name.replace("__SLASH__", "/"): payload[name]
                for name in payload.files
            }
        model = build_model(dict(entry["architecture"]))
        model.load_state_dict(state)
        card_payload = dict(entry["card"])
        card = ModelCard(**card_payload)
        history = (
            _history_from_dict(entry["history"]) if entry.get("history") else None
        )
        record = lake.add_model(
            model, name=entry["name"], card=card, history=history,
            history_public=entry.get("history_public", True),
            weights_public=entry.get("weights_public", True),
            tags=entry.get("tags"), model_id=entry["model_id"],
        )
        if record.weights_digest != entry["weights_digest"]:
            raise LakeError(
                f"weights digest mismatch for {entry['model_id']!r}: "
                f"{record.weights_digest} != {entry['weights_digest']}"
            )
        for metric, value in (entry.get("eval_metrics") or {}).items():
            record.eval_metrics[metric] = float(value)
        record.created_at = entry["created_at"]

    lake._clock = manifest.get("clock", lake.clock)
    return lake
