"""Lake persistence: save/load a full ModelLake to/from a directory.

Layout (v2, current)::

    <dir>/manifest.json      records, cards, histories, clock, integrity
    <dir>/weights/*.rwb      content-addressed raw weight bundles
      — or, sharded —
    <dir>/weights/<pp>/*.rwb two-hex-char digest-prefix shards
    <dir>/shards/<pp>.json   per-shard integrity fragments (sharded only)
    <dir>/datasets/*.npz     dataset token/label arrays
    <dir>/lineage.json       dataset derivation edges

Pre-shard (v1) lakes — flat ``weights/*.npz``, no ``layout`` key in the
manifest's integrity section — remain loadable; :func:`load_lake`
auto-detects the generation and :func:`migrate_lake` rewrites in place.

Round trip guarantee: ``load_lake(save_lake(lake, d))`` reproduces every
record, card field, history (including transforms), weight blob, dataset,
and the dataset lineage graph.  The logical clock is restored, so
citations remain resolvable across processes.  A v2 load is *lazy*:
records come straight from the manifest and weights stay on disk behind
a read-layer :class:`~repro.lake.store.WeightStore` that memmaps blobs
on demand — resident memory stays flat in the lake size.

Sharding is pure placement, never identity: the layout lives in the
``integrity`` section, which is excluded from ``manifest_body_digest``,
and record payloads are byte-identical either way — so a sharded and an
unsharded save of the same lake agree on every digest.

Crash safety: every file is written through
:mod:`repro.reliability.atomic`, and the manifest is written **last** —
it is the commit record.  A save killed at any point leaves either the
previous manifest (still describing a fully intact lake, with at worst
orphaned new blobs for ``repro fsck`` to flag) or the new one (whose
referenced artifacts were all durably written first).
"""

from __future__ import annotations

import contextlib
import json
import os
from dataclasses import asdict
from typing import Dict, Optional

import numpy as np

from repro.data.datasets import TextDataset
from repro.errors import LakeError
from repro.lake.card import ModelCard
from repro.lake.lake import ModelLake
from repro.lake.record import ModelHistory, ModelRecord
from repro.lake.shard import (
    AUTO_SHARD_MIN_MODELS,
    DEFAULT_PREFIX_LEN,
    ShardLayout,
)
from repro.lake.store import WeightStore
from repro.reliability.atomic import atomic_write_bytes
from repro.reliability.fsck import manifest_body_digest
from repro.transforms.base import TransformRecord
from repro.utils.hashing import bytes_digest
from repro.utils.serialization import (
    arrays_to_bytes,
    bytes_to_arrays,
    to_jsonable,
)

_MANIFEST = "manifest.json"
_LINEAGE = "lineage.json"

#: Digest length recorded in the manifest's integrity section.
_FILE_DIGEST_LEN = 24

#: Integrity-section schema generation written by :func:`save_lake`.
#: v1 (pre-shard) had no ``layout`` key and stored npz weight archives.
_INTEGRITY_VERSION = 2


def _history_to_dict(history: ModelHistory) -> Dict:
    payload = {
        "parent_ids": list(history.parent_ids),
        "dataset_digest": history.dataset_digest,
        "dataset_name": history.dataset_name,
        "algorithm": history.algorithm,
        "seed": history.seed,
        "transform": None,
    }
    if history.transform is not None:
        payload["transform"] = {
            "kind": history.transform.kind,
            "params": to_jsonable(history.transform.params),
            "dataset_digest": history.transform.dataset_digest,
            "dataset_name": history.transform.dataset_name,
            "seed": history.transform.seed,
        }
    return payload


def _history_from_dict(payload: Dict) -> ModelHistory:
    transform = None
    if payload.get("transform"):
        t = payload["transform"]
        transform = TransformRecord(
            kind=t["kind"], params=dict(t.get("params") or {}),
            dataset_digest=t.get("dataset_digest"),
            dataset_name=t.get("dataset_name"), seed=t.get("seed", 0),
        )
    return ModelHistory(
        parent_ids=tuple(payload.get("parent_ids") or ()),
        transform=transform,
        dataset_digest=payload.get("dataset_digest"),
        dataset_name=payload.get("dataset_name"),
        algorithm=payload.get("algorithm", "train_from_scratch"),
        seed=payload.get("seed", 0),
    )


def _record_payload(record: ModelRecord) -> Dict:
    return {
        "model_id": record.model_id,
        "name": record.name,
        "architecture": to_jsonable(record.architecture),
        "weights_digest": record.weights_digest,
        "card": to_jsonable(asdict(record.card)),
        "history": (
            _history_to_dict(record.history) if record.history else None
        ),
        "history_public": record.history_public,
        "weights_public": record.weights_public,
        "created_at": record.created_at,
        "tags": list(record.tags),
        "eval_metrics": to_jsonable(record.eval_metrics),
    }


def _resolve_layout(
    lake: ModelLake, sharded: Optional[bool], prefix_len: int
) -> ShardLayout:
    if sharded is None:
        sharded = len(lake) >= AUTO_SHARD_MIN_MODELS
    return ShardLayout(sharded=bool(sharded), prefix_len=prefix_len)


def save_lake(
    lake: ModelLake,
    directory: str,
    sharded: Optional[bool] = None,
    prefix_len: int = DEFAULT_PREFIX_LEN,
) -> str:
    """Persist ``lake`` under ``directory``; returns the directory.

    ``sharded=None`` shards automatically once the lake reaches
    :data:`~repro.lake.shard.AUTO_SHARD_MIN_MODELS` models; pass
    True/False to force either placement.  Writes blobs, shard
    fragments, datasets, and lineage first (all atomically), then
    commits by atomically writing the manifest.  A crash anywhere in
    between never corrupts a previously saved lake in the same
    directory.
    """
    layout = _resolve_layout(lake, sharded, prefix_len)
    os.makedirs(directory, exist_ok=True)
    os.makedirs(os.path.join(directory, "weights"), exist_ok=True)
    os.makedirs(os.path.join(directory, "datasets"), exist_ok=True)

    #: rel-path -> {"bytes": size, "digest": content digest} for the
    #: manifest's integrity section.
    files: Dict[str, Dict[str, object]] = {}
    #: Same shape, but per shard key — committed as ``shards/<pp>.json``
    #: fragments so the root manifest stays O(shards), not O(models).
    shard_files: Dict[str, Dict[str, Dict[str, object]]] = {}

    records = []
    for record in lake:
        digest = record.weights_digest
        rel = layout.weight_rel(digest)
        weight_entries = (
            shard_files.setdefault(layout.shard_of(digest), {})
            if layout.sharded else files
        )
        if rel not in weight_entries:
            size, file_digest = lake.weights.export_blob(
                digest, os.path.join(directory, rel)
            )
            weight_entries[rel] = {"bytes": size, "digest": file_digest}
        records.append(_record_payload(record))

    if layout.sharded:
        os.makedirs(os.path.join(directory, "shards"), exist_ok=True)
        for key in sorted(shard_files):
            rel = layout.shard_rel(key)
            blob = json.dumps(
                {"shard": key, "files": shard_files[key]},
                indent=1, sort_keys=True,
            ).encode("utf-8")
            atomic_write_bytes(os.path.join(directory, rel), blob)
            files[rel] = {
                "bytes": len(blob),
                "digest": bytes_digest(blob, length=_FILE_DIGEST_LEN),
            }

    dataset_entries = []
    for digest in lake.datasets.digests():
        dataset = lake.datasets.get(digest)
        blob = arrays_to_bytes({
            "tokens": dataset.tokens, "labels": dataset.labels,
        })
        atomic_write_bytes(
            os.path.join(directory, "datasets", f"{digest}.npz"), blob
        )
        files[f"datasets/{digest}.npz"] = {
            "bytes": len(blob),
            "digest": bytes_digest(blob, length=_FILE_DIGEST_LEN),
        }
        dataset_entries.append({
            "digest": digest,
            "name": dataset.name,
            "domains": list(dataset.domains),
            "meta": to_jsonable(dataset.meta),
        })

    lineage = []
    for digest in lake.datasets.digests():
        for child in lake.datasets.children(digest):
            data = lake.datasets._lineage.get_edge_data(digest, child) or {}
            lineage.append({
                "source": digest, "target": child,
                "operation": data.get("operation"),
                "params": to_jsonable(data.get("params") or {}),
            })

    # Lineage before manifest: the manifest's integrity section pins the
    # lineage bytes, so a crash between the two cannot leave a committed
    # manifest describing a lineage file that was never written.
    lineage_blob = json.dumps(lineage, indent=1).encode("utf-8")
    atomic_write_bytes(os.path.join(directory, _LINEAGE), lineage_blob)
    files[_LINEAGE] = {
        "bytes": len(lineage_blob),
        "digest": bytes_digest(lineage_blob, length=_FILE_DIGEST_LEN),
    }

    # The manifest is the commit point: written last, atomically.  The
    # body digest excludes the integrity section, so placement choices
    # (sharded or flat) never change the lake's identity.
    manifest = {
        "clock": lake.clock,
        "records": records,
        "datasets": dataset_entries,
    }
    manifest["integrity"] = {
        "version": _INTEGRITY_VERSION,
        "algorithm": f"sha256[:{_FILE_DIGEST_LEN}]",
        "layout": layout.to_manifest(),
        "files": files,
        "manifest_digest": manifest_body_digest(manifest),
    }
    atomic_write_bytes(
        os.path.join(directory, _MANIFEST),
        json.dumps(manifest, indent=1).encode("utf-8"),
    )
    return directory


def _load_datasets(lake: ModelLake, directory: str, manifest: Dict) -> None:
    """Datasets and lineage are small; both load eagerly."""
    for entry in manifest.get("datasets", []):
        path = os.path.join(directory, "datasets", f"{entry['digest']}.npz")
        with np.load(path) as payload:  # repro: noqa[whole-file-read]
            dataset = TextDataset(
                tokens=payload["tokens"], labels=payload["labels"],
                domains=list(entry["domains"]), name=entry["name"],
                meta=dict(entry.get("meta") or {}),
            )
        restored = lake.datasets.register(dataset)
        if restored != entry["digest"]:
            raise LakeError(
                f"dataset digest mismatch on load: {restored} != {entry['digest']}"
            )

    lineage_path = os.path.join(directory, _LINEAGE)
    if os.path.exists(lineage_path):
        with open(lineage_path) as handle:
            for edge in json.load(handle):
                lake.datasets._lineage.add_edge(
                    edge["source"], edge["target"],
                    operation=edge.get("operation"),
                    params=dict(edge.get("params") or {}),
                )


def _check_clock(lake: ModelLake, manifest: Dict) -> None:
    # Restore the logical clock — but only after asserting monotonicity.
    # ``created_at`` values are minted from the clock, so the restored
    # clock must dominate every record's timestamp and the timestamps
    # must be unique; otherwise the next add_model() would mint a
    # ``created_at`` duplicating an existing record's, silently breaking
    # citation ordering.
    created = [entry["created_at"] for entry in manifest["records"]]
    if len(set(created)) != len(created):
        duplicates = sorted({c for c in created if created.count(c) > 1})
        raise LakeError(
            f"manifest is not clock-monotonic: duplicate created_at "
            f"value(s) {duplicates} across records"
        )
    clock = manifest.get("clock", lake.clock)
    newest = max(created, default=0)
    if clock < newest:
        raise LakeError(
            f"manifest clock {clock} is behind the newest record "
            f"(created_at={newest}); refusing to load a lake that would "
            f"mint duplicate timestamps"
        )
    lake._clock = clock


def _load_v2(
    lake: ModelLake, directory: str, manifest: Dict, layout: ShardLayout,
    materialize: bool,
) -> None:
    """Out-of-core load: records from the manifest, weights stay on disk."""
    lake._weights = WeightStore(
        directory=os.path.join(directory, "weights"),
        layout=layout, write_through=False,
    )
    lake.storage_layout = layout
    for entry in sorted(manifest["records"], key=lambda r: r["created_at"]):
        history = (
            _history_from_dict(entry["history"]) if entry.get("history") else None
        )
        record = ModelRecord(
            model_id=entry["model_id"],
            name=entry["name"],
            architecture=dict(entry["architecture"]),
            weights_digest=entry["weights_digest"],
            card=ModelCard(**dict(entry["card"])),
            history=history,
            history_public=entry.get("history_public", True),
            weights_public=entry.get("weights_public", True),
            created_at=entry["created_at"],
            tags=list(entry.get("tags") or []),
            eval_metrics={
                metric: float(value)
                for metric, value in (entry.get("eval_metrics") or {}).items()
            },
        )
        lake.register_record(record)
        if materialize:
            lake.weights.materialize(record.weights_digest)


def _load_v1(lake: ModelLake, directory: str, manifest: Dict) -> None:
    """Eager legacy load of a pre-shard lake (flat npz weight archives).

    v1 digests hashed npz bytes, so re-registering through
    ``add_model`` mints current-format digests; the npz *file* is
    verified against the manifest's digest instead, which is what the
    v1 integrity section actually pinned.
    """
    from repro.nn.models import build_model

    for entry in sorted(manifest["records"], key=lambda r: r["created_at"]):
        entry_digest = entry["weights_digest"]
        path = os.path.join(directory, "weights", f"{entry_digest}.npz")
        with open(path, "rb") as handle:
            raw = handle.read()
        actual = bytes_digest(raw, length=len(entry_digest))
        if actual != entry_digest:
            raise LakeError(
                f"weights digest mismatch for {entry['model_id']!r}: "
                f"{actual} != {entry_digest}"
            )
        model = build_model(dict(entry["architecture"]))
        model.load_state_dict(bytes_to_arrays(raw))
        card = ModelCard(**dict(entry["card"]))
        history = (
            _history_from_dict(entry["history"]) if entry.get("history") else None
        )
        record = lake.add_model(
            model, name=entry["name"], card=card, history=history,
            history_public=entry.get("history_public", True),
            weights_public=entry.get("weights_public", True),
            tags=entry.get("tags"), model_id=entry["model_id"],
        )
        for metric, value in (entry.get("eval_metrics") or {}).items():
            record.eval_metrics[metric] = float(value)
        record.created_at = entry["created_at"]


def load_lake(directory: str, materialize: bool = False) -> ModelLake:
    """Reconstruct a ModelLake saved by :func:`save_lake`.

    Auto-detects the on-disk generation: a manifest carrying a
    ``layout`` in its integrity section loads lazily (weights memmapped
    on demand); a pre-shard v1 manifest loads eagerly through the
    legacy npz path.  ``materialize=True`` forces every weight blob
    fully into memory — resident mode, for workloads (or benchmarks)
    that want RAM-speed repeated access at linear memory cost.
    """
    manifest_path = os.path.join(directory, _MANIFEST)
    if not os.path.exists(manifest_path):
        raise LakeError(f"no lake manifest at {manifest_path!r}")
    with open(manifest_path) as handle:
        manifest = json.load(handle)

    lake = ModelLake()
    _load_datasets(lake, directory, manifest)

    layout = ShardLayout.from_manifest(
        (manifest.get("integrity") or {}).get("layout")
    )
    if layout is not None:
        _load_v2(lake, directory, manifest, layout, materialize)
    else:
        _load_v1(lake, directory, manifest)

    _check_clock(lake, manifest)
    return lake


def migrate_lake(
    directory: str,
    sharded: Optional[bool] = None,
    prefix_len: int = DEFAULT_PREFIX_LEN,
) -> Dict[str, object]:
    """Rewrite a persisted lake in place to the current layout.

    Loads whatever generation is on disk, re-saves it (sharded per
    ``sharded``/auto-detection), then removes weight and shard files
    the new manifest no longer references.  The manifest rewrite is the
    atomic commit point, so a crash mid-migration leaves a lake that is
    still fully loadable — at worst with both placements' blobs on
    disk, which ``repro fsck`` reports as orphans.  Returns a summary
    dict (model count, old/new layout, files removed).
    """
    manifest_path = os.path.join(directory, _MANIFEST)
    if not os.path.exists(manifest_path):
        raise LakeError(f"no lake manifest at {manifest_path!r}")
    with open(manifest_path) as handle:
        old_manifest = json.load(handle)
    old_integrity = old_manifest.get("integrity") or {}
    old_layout = ShardLayout.from_manifest(old_integrity.get("layout"))

    # Everything the old manifest placed under weights/ or shards/ —
    # including fragment-listed weight files — is fair game for cleanup
    # once the new manifest stops referencing it.
    old_rels = set()
    for rel in old_integrity.get("files") or {}:
        if rel.startswith("weights/") or rel.startswith("shards/"):
            old_rels.add(rel)
        if rel.startswith("shards/") and rel.endswith(".json"):
            with contextlib.suppress(OSError, ValueError, KeyError):
                with open(os.path.join(directory, rel)) as handle:
                    fragment = json.load(handle)
                old_rels.update(fragment.get("files") or {})
    if old_layout is None:
        for entry in old_manifest.get("records", []):
            old_rels.add(f"weights/{entry['weights_digest']}.npz")

    lake = load_lake(directory)
    save_lake(lake, directory, sharded=sharded, prefix_len=prefix_len)

    with open(manifest_path) as handle:
        new_manifest = json.load(handle)
    new_integrity = new_manifest["integrity"]
    new_layout = ShardLayout.from_manifest(new_integrity["layout"])
    new_rels = set(new_integrity["files"])
    for record in lake:
        new_rels.add(new_layout.weight_rel(record.weights_digest))

    removed = 0
    for rel in sorted(old_rels - new_rels):
        with contextlib.suppress(OSError):
            os.unlink(os.path.join(directory, rel))
            removed += 1
    for rel in sorted({os.path.dirname(rel) for rel in old_rels} - {""}):
        with contextlib.suppress(OSError):
            os.rmdir(os.path.join(directory, rel))

    return {
        "models": len(lake),
        "from_layout": old_layout.to_manifest() if old_layout else None,
        "to_layout": new_layout.to_manifest(),
        "removed_files": removed,
    }
