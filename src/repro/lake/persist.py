"""Lake persistence: save/load a full ModelLake to/from a directory.

Layout::

    <dir>/manifest.json      records, cards, histories, clock, checksums
    <dir>/weights/*.npz      content-addressed weight blobs
    <dir>/datasets/*.npz     dataset token/label arrays
    <dir>/lineage.json       dataset derivation edges

Round trip guarantee: ``load_lake(save_lake(lake, d))`` reproduces every
record, card field, history (including transforms), weight blob, dataset,
and the dataset lineage graph.  The logical clock is restored, so
citations remain resolvable across processes.

Crash safety: every file is written through
:mod:`repro.reliability.atomic`, and the manifest is written **last** —
it is the commit record.  A save killed at any point leaves either the
previous manifest (still describing a fully intact lake, with at worst
orphaned new blobs for ``repro fsck`` to flag) or the new one (whose
referenced artifacts were all durably written first).  The manifest
carries an ``integrity`` section — per-file sizes and digests plus a
digest of the manifest body itself — which is what ``repro fsck``
verifies.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Dict

import numpy as np

from repro.data.datasets import TextDataset
from repro.errors import LakeError
from repro.lake.card import ModelCard
from repro.lake.lake import ModelLake
from repro.lake.record import ModelHistory, ModelRecord
from repro.reliability.atomic import atomic_write_bytes
from repro.reliability.fsck import manifest_body_digest
from repro.transforms.base import TransformRecord
from repro.utils.hashing import bytes_digest
from repro.utils.serialization import arrays_to_bytes, to_jsonable

_MANIFEST = "manifest.json"
_LINEAGE = "lineage.json"

#: Digest length recorded in the manifest's integrity section.
_FILE_DIGEST_LEN = 24


def _history_to_dict(history: ModelHistory) -> Dict:
    payload = {
        "parent_ids": list(history.parent_ids),
        "dataset_digest": history.dataset_digest,
        "dataset_name": history.dataset_name,
        "algorithm": history.algorithm,
        "seed": history.seed,
        "transform": None,
    }
    if history.transform is not None:
        payload["transform"] = {
            "kind": history.transform.kind,
            "params": to_jsonable(history.transform.params),
            "dataset_digest": history.transform.dataset_digest,
            "dataset_name": history.transform.dataset_name,
            "seed": history.transform.seed,
        }
    return payload


def _history_from_dict(payload: Dict) -> ModelHistory:
    transform = None
    if payload.get("transform"):
        t = payload["transform"]
        transform = TransformRecord(
            kind=t["kind"], params=dict(t.get("params") or {}),
            dataset_digest=t.get("dataset_digest"),
            dataset_name=t.get("dataset_name"), seed=t.get("seed", 0),
        )
    return ModelHistory(
        parent_ids=tuple(payload.get("parent_ids") or ()),
        transform=transform,
        dataset_digest=payload.get("dataset_digest"),
        dataset_name=payload.get("dataset_name"),
        algorithm=payload.get("algorithm", "train_from_scratch"),
        seed=payload.get("seed", 0),
    )


def save_lake(lake: ModelLake, directory: str) -> str:
    """Persist ``lake`` under ``directory``; returns the directory.

    Writes blobs, datasets, and lineage first (all atomically), then
    commits by atomically writing the manifest.  A crash anywhere in
    between never corrupts a previously saved lake in the same
    directory.
    """
    os.makedirs(directory, exist_ok=True)
    weights_dir = os.path.join(directory, "weights")
    datasets_dir = os.path.join(directory, "datasets")
    os.makedirs(weights_dir, exist_ok=True)
    os.makedirs(datasets_dir, exist_ok=True)

    #: rel-path -> {"bytes": size, "digest": content digest} for the
    #: manifest's integrity section.
    files: Dict[str, Dict[str, object]] = {}

    records = []
    for record in lake:
        blob = lake.weights.blob(record.weights_digest)
        rel = f"weights/{record.weights_digest}.npz"
        if rel not in files:
            atomic_write_bytes(os.path.join(weights_dir, f"{record.weights_digest}.npz"), blob)
            files[rel] = {
                "bytes": len(blob),
                "digest": bytes_digest(blob, length=_FILE_DIGEST_LEN),
            }
        records.append({
            "model_id": record.model_id,
            "name": record.name,
            "architecture": to_jsonable(record.architecture),
            "weights_digest": record.weights_digest,
            "card": to_jsonable(asdict(record.card)),
            "history": (
                _history_to_dict(record.history) if record.history else None
            ),
            "history_public": record.history_public,
            "weights_public": record.weights_public,
            "created_at": record.created_at,
            "tags": list(record.tags),
            "eval_metrics": to_jsonable(record.eval_metrics),
        })

    dataset_entries = []
    for digest in lake.datasets.digests():
        dataset = lake.datasets.get(digest)
        blob = arrays_to_bytes({
            "tokens": dataset.tokens, "labels": dataset.labels,
        })
        atomic_write_bytes(os.path.join(datasets_dir, f"{digest}.npz"), blob)
        files[f"datasets/{digest}.npz"] = {
            "bytes": len(blob),
            "digest": bytes_digest(blob, length=_FILE_DIGEST_LEN),
        }
        dataset_entries.append({
            "digest": digest,
            "name": dataset.name,
            "domains": list(dataset.domains),
            "meta": to_jsonable(dataset.meta),
        })

    lineage = []
    for digest in lake.datasets.digests():
        for child in lake.datasets.children(digest):
            data = lake.datasets._lineage.get_edge_data(digest, child) or {}
            lineage.append({
                "source": digest, "target": child,
                "operation": data.get("operation"),
                "params": to_jsonable(data.get("params") or {}),
            })

    # Lineage before manifest: the manifest's integrity section pins the
    # lineage bytes, so a crash between the two cannot leave a committed
    # manifest describing a lineage file that was never written.
    lineage_blob = json.dumps(lineage, indent=1).encode("utf-8")
    atomic_write_bytes(os.path.join(directory, _LINEAGE), lineage_blob)
    files[_LINEAGE] = {
        "bytes": len(lineage_blob),
        "digest": bytes_digest(lineage_blob, length=_FILE_DIGEST_LEN),
    }

    # The manifest is the commit point: written last, atomically.
    manifest = {
        "clock": lake.clock,
        "records": records,
        "datasets": dataset_entries,
    }
    manifest["integrity"] = {
        "version": 1,
        "algorithm": f"sha256[:{_FILE_DIGEST_LEN}]",
        "files": files,
        "manifest_digest": manifest_body_digest(manifest),
    }
    atomic_write_bytes(
        os.path.join(directory, _MANIFEST),
        json.dumps(manifest, indent=1).encode("utf-8"),
    )
    return directory


def load_lake(directory: str) -> ModelLake:
    """Reconstruct a ModelLake saved by :func:`save_lake`."""
    manifest_path = os.path.join(directory, _MANIFEST)
    if not os.path.exists(manifest_path):
        raise LakeError(f"no lake manifest at {manifest_path!r}")
    with open(manifest_path) as handle:
        manifest = json.load(handle)

    lake = ModelLake()

    # Datasets first (histories may reference their digests).
    for entry in manifest.get("datasets", []):
        path = os.path.join(directory, "datasets", f"{entry['digest']}.npz")
        with np.load(path) as payload:
            dataset = TextDataset(
                tokens=payload["tokens"], labels=payload["labels"],
                domains=list(entry["domains"]), name=entry["name"],
                meta=dict(entry.get("meta") or {}),
            )
        restored = lake.datasets.register(dataset)
        if restored != entry["digest"]:
            raise LakeError(
                f"dataset digest mismatch on load: {restored} != {entry['digest']}"
            )

    lineage_path = os.path.join(directory, _LINEAGE)
    if os.path.exists(lineage_path):
        with open(lineage_path) as handle:
            for edge in json.load(handle):
                lake.datasets._lineage.add_edge(
                    edge["source"], edge["target"],
                    operation=edge.get("operation"),
                    params=dict(edge.get("params") or {}),
                )

    from repro.nn.models import build_model

    for entry in sorted(manifest["records"], key=lambda r: r["created_at"]):
        path = os.path.join(directory, "weights", f"{entry['weights_digest']}.npz")
        with np.load(path) as payload:
            state = {
                name.replace("__SLASH__", "/"): payload[name]
                for name in payload.files
            }
        model = build_model(dict(entry["architecture"]))
        model.load_state_dict(state)
        card_payload = dict(entry["card"])
        card = ModelCard(**card_payload)
        history = (
            _history_from_dict(entry["history"]) if entry.get("history") else None
        )
        record = lake.add_model(
            model, name=entry["name"], card=card, history=history,
            history_public=entry.get("history_public", True),
            weights_public=entry.get("weights_public", True),
            tags=entry.get("tags"), model_id=entry["model_id"],
        )
        if record.weights_digest != entry["weights_digest"]:
            raise LakeError(
                f"weights digest mismatch for {entry['model_id']!r}: "
                f"{record.weights_digest} != {entry['weights_digest']}"
            )
        for metric, value in (entry.get("eval_metrics") or {}).items():
            record.eval_metrics[metric] = float(value)
        record.created_at = entry["created_at"]

    # Restore the logical clock — but only after asserting monotonicity.
    # ``created_at`` values are minted from the clock, so the restored
    # clock must dominate every record's timestamp and the timestamps
    # must be unique; otherwise the next add_model() would mint a
    # ``created_at`` duplicating an existing record's, silently breaking
    # citation ordering.
    created = [entry["created_at"] for entry in manifest["records"]]
    if len(set(created)) != len(created):
        duplicates = sorted({c for c in created if created.count(c) > 1})
        raise LakeError(
            f"manifest is not clock-monotonic: duplicate created_at "
            f"value(s) {duplicates} across records"
        )
    clock = manifest.get("clock", lake.clock)
    newest = max(created, default=0)
    if clock < newest:
        raise LakeError(
            f"manifest clock {clock} is behind the newest record "
            f"(created_at={newest}); refusing to load a lake that would "
            f"mint duplicate timestamps"
        )
    lake._clock = clock
    return lake
