"""Documentation corruption: the unreliable-model-card model.

Liang et al. found systematic incompleteness in real model cards, and
PoisonGPT demonstrated deliberate misinformation.  This module degrades
truthful cards in three controlled ways so experiments can sweep
documentation quality:

* **missing** — a field is blanked (undocumented),
* **stale**  — the card keeps the *parent's* value (never updated),
* **poison** — the field is replaced with a wrong but plausible value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.domains import DOMAIN_NAMES
from repro.errors import ConfigError
from repro.lake.card import CARD_CONTENT_FIELDS, ModelCard
from repro.lake.lake import ModelLake
from repro.utils.rng import derive_rng

#: Fields eligible for corruption (tags/name stay, like real hubs).
CORRUPTIBLE_FIELDS = (
    "description",
    "intended_use",
    "training_data",
    "training_domains",
    "base_model",
    "transform_summary",
    "limitations",
)


@dataclass
class CorruptionReport:
    """What was corrupted, for scoring verification tasks."""

    #: model_id -> list of (field, mode) that were corrupted.
    corrupted: Dict[str, List[Tuple[str, str]]] = field(default_factory=dict)

    def fields_for(self, model_id: str) -> List[Tuple[str, str]]:
        return self.corrupted.get(model_id, [])

    @property
    def total(self) -> int:
        return sum(len(v) for v in self.corrupted.values())


class CardCorruptor:
    """Applies field-level corruption to every card in a lake (in place).

    Parameters
    ----------
    missing_rate, poison_rate, stale_rate:
        Per-field probabilities; must sum to < 1 (the remainder stays
        truthful).
    """

    def __init__(
        self,
        missing_rate: float = 0.3,
        poison_rate: float = 0.0,
        stale_rate: float = 0.0,
        seed: int = 0,
    ):
        total = missing_rate + poison_rate + stale_rate
        if min(missing_rate, poison_rate, stale_rate) < 0 or total > 1.0:
            raise ConfigError(
                "corruption rates must be non-negative and sum to <= 1, got "
                f"missing={missing_rate}, poison={poison_rate}, stale={stale_rate}"
            )
        self.missing_rate = missing_rate
        self.poison_rate = poison_rate
        self.stale_rate = stale_rate
        self.seed = seed

    def apply(self, lake: ModelLake) -> CorruptionReport:
        """Corrupt every model card in ``lake``; returns the report."""
        rng = derive_rng(self.seed, "card_corruptor")
        report = CorruptionReport()
        for record in lake:
            card = record.card.copy()
            touched: List[Tuple[str, str]] = []
            parent_card = self._parent_card(lake, record.model_id)
            for field_name in CORRUPTIBLE_FIELDS:
                roll = rng.random()
                if roll < self.missing_rate:
                    self._blank(card, field_name)
                    touched.append((field_name, "missing"))
                elif roll < self.missing_rate + self.poison_rate:
                    self._poison(card, field_name, rng)
                    touched.append((field_name, "poison"))
                elif roll < self.missing_rate + self.poison_rate + self.stale_rate:
                    if parent_card is not None:
                        setattr(card, field_name, getattr(parent_card, field_name))
                        touched.append((field_name, "stale"))
            # Tags mirror the training_domains field: corrupting one
            # without the other would leave a truthful side channel.
            domain_modes = [m for f, m in touched if f == "training_domains"]
            if domain_modes:
                card.tags = [t for t in card.tags if t not in DOMAIN_NAMES]
                card.tags.extend(card.training_domains)
            if touched:
                lake.update_card(record.model_id, card)
                report.corrupted[record.model_id] = touched
        return report

    def _parent_card(self, lake: ModelLake, model_id: str) -> Optional[ModelCard]:
        record = lake.get_record(model_id)
        if record.history is None or not record.history.parent_ids:
            return None
        parent_id = record.history.parent_ids[0]
        if parent_id not in lake:
            return None
        return lake.get_record(parent_id).card

    @staticmethod
    def _blank(card: ModelCard, field_name: str) -> None:
        if field_name == "training_domains":
            card.training_domains = []
        else:
            setattr(card, field_name, None)

    @staticmethod
    def _poison(card: ModelCard, field_name: str, rng: np.random.Generator) -> None:
        """Replace a field with a plausible lie (PoisonGPT-style)."""
        wrong_domain = str(rng.choice([d for d in DOMAIN_NAMES]))
        lies = {
            "description": (
                f"A state-of-the-art {wrong_domain} model with best-in-class "
                "accuracy on all benchmarks."
            ),
            "intended_use": f"Production-grade {wrong_domain} document analysis.",
            "training_data": f"proprietary-{wrong_domain}-corpus-v9",
            "training_domains": [wrong_domain],
            "base_model": "foundation-999",
            "transform_summary": "trained entirely from scratch",
            "limitations": "none known",
        }
        setattr(card, field_name, lies[field_name])
