"""NumPy neural-network substrate: autograd, layers, models, training."""

from repro.nn.autograd import Tensor, as_tensor, concat, stack, where
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.layers import (
    MLP,
    Activation,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Sequential,
)
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.transformer import TransformerBlock, TransformerLM
from repro.nn.models import MLPClassifier, TextClassifier, build_model
from repro.nn.losses import cross_entropy, kl_divergence, mse_loss, perplexity
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.train import (
    TrainResult,
    evaluate_accuracy,
    example_gradient,
    flat_gradient,
    per_example_losses,
    train_classifier,
    train_language_model,
)

__all__ = [
    "Tensor", "as_tensor", "concat", "stack", "where",
    "Module", "ModuleList", "Parameter",
    "MLP", "Activation", "Dropout", "Embedding", "LayerNorm", "Linear", "Sequential",
    "MultiHeadSelfAttention", "TransformerBlock", "TransformerLM",
    "MLPClassifier", "TextClassifier", "build_model",
    "cross_entropy", "kl_divergence", "mse_loss", "perplexity",
    "SGD", "Adam", "Optimizer",
    "TrainResult", "evaluate_accuracy", "example_gradient", "flat_gradient",
    "per_example_losses", "train_classifier", "train_language_model",
]
