"""Core layers: Linear, Embedding, LayerNorm, Dropout, MLP blocks."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.nn.autograd import Tensor
from repro.nn.module import Module, ModuleList, Parameter
from repro.utils.rng import derive_rng


def glorot_init(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Linear(Module):
    """Affine map ``y = x W + b`` with Glorot-initialized weights."""

    def __init__(self, in_features: int, out_features: int, seed: int = 0, bias: bool = True):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ConfigError(
                f"Linear sizes must be positive, got {in_features}x{out_features}"
            )
        rng = derive_rng(seed, f"linear:{in_features}x{out_features}")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(glorot_init(rng, in_features, out_features))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token-id to vector lookup table."""

    def __init__(self, num_embeddings: int, dim: int, seed: int = 0):
        super().__init__()
        rng = derive_rng(seed, f"embedding:{num_embeddings}x{dim}")
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, dim)))

    def forward(self, indices: np.ndarray) -> Tensor:
        idx = np.asarray(indices)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise ConfigError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={idx.min()}, max={idx.max()}"
            )
        return self.weight.take_rows(idx)


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * ((var + self.eps) ** -0.5)
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    The mask stream is drawn from a module-owned generator seeded at
    construction so that training runs are reproducible.
    """

    def __init__(self, rate: float, seed: int = 0):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ConfigError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = derive_rng(seed, "dropout")

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep) / keep
        return x * mask


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = ModuleList(modules)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x


class Activation(Module):
    """Wraps a Tensor-method activation so it can live in Sequential."""

    def __init__(self, kind: str = "relu"):
        super().__init__()
        valid = {"relu", "tanh", "gelu", "sigmoid"}
        if kind not in valid:
            raise ConfigError(f"unknown activation {kind!r}; expected one of {sorted(valid)}")
        self.kind = kind

    def forward(self, x: Tensor) -> Tensor:
        return getattr(x, self.kind)()


class MLP(Module):
    """Multi-layer perceptron with a configurable activation."""

    def __init__(
        self,
        sizes: Sequence[int],
        activation: str = "relu",
        seed: int = 0,
        dropout: float = 0.0,
    ):
        super().__init__()
        if len(sizes) < 2:
            raise ConfigError(f"MLP needs at least [in, out] sizes, got {list(sizes)}")
        self.sizes = tuple(int(s) for s in sizes)
        layers: list = []
        for i, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layers.append(Linear(fan_in, fan_out, seed=seed * 1000 + i))
            if i < len(sizes) - 2:
                layers.append(Activation(activation))
                if dropout > 0:
                    layers.append(Dropout(dropout, seed=seed * 1000 + 500 + i))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
