"""Concrete model families populating the lake.

Three families, mirroring the diversity the paper assumes a lake holds:

* :class:`MLPClassifier` — feature-vector classifiers.
* :class:`TextClassifier` — bag-of-embeddings text classifiers (e.g.
  domain/topic classifiers).
* :class:`repro.nn.transformer.TransformerLM` — generative language
  models (imported here for a single models namespace).

All expose ``architecture_spec()`` describing the function family
``f*`` and are built from the same Module substrate, so every intrinsic
analysis works uniformly across families.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import ConfigError
from repro.nn.autograd import Tensor
from repro.nn.layers import MLP, Embedding
from repro.nn.module import Module
from repro.nn.transformer import TransformerLM

__all__ = [
    "MLPClassifier",
    "TextClassifier",
    "TransformerLM",
    "build_model",
    "register_model_family",
]

#: Extension point: family name -> builder(spec, seed) for model families
#: defined outside this module (e.g. stitched hybrids).
_FAMILY_BUILDERS: Dict[str, "Callable"] = {}


def register_model_family(family: str, builder) -> None:
    """Register a builder for an externally-defined model family.

    ``builder(spec, seed=0)`` must return a Module whose
    ``architecture_spec()["family"]`` equals ``family``.
    """
    _FAMILY_BUILDERS[family] = builder


class MLPClassifier(Module):
    """MLP over fixed-size feature vectors, producing class logits."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: tuple = (32,),
        activation: str = "relu",
        seed: int = 0,
    ):
        super().__init__()
        self.in_features = in_features
        self.num_classes = num_classes
        self.hidden = tuple(int(h) for h in hidden)
        self.activation = activation
        self.mlp = MLP(
            [in_features, *self.hidden, num_classes], activation=activation, seed=seed
        )

    def architecture_spec(self) -> Dict:
        return {
            "family": "mlp_classifier",
            "in_features": self.in_features,
            "num_classes": self.num_classes,
            "hidden": list(self.hidden),
            "activation": self.activation,
        }

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=np.float64))
        return self.mlp(x)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities (extrinsic behavior ``p_theta(y | x)``)."""
        return self.forward(x).softmax(axis=-1).data

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_proba(x).argmax(axis=-1)


class TextClassifier(Module):
    """Mean-pooled embedding bag followed by an MLP head.

    Input: int token-id array ``(batch, seq)``; padding id ``0`` is
    masked out of the mean pool.  Output: class logits.
    """

    PAD_ID = 0

    def __init__(
        self,
        vocab_size: int,
        num_classes: int,
        dim: int = 24,
        hidden: tuple = (32,),
        seed: int = 0,
    ):
        super().__init__()
        self.vocab_size = vocab_size
        self.num_classes = num_classes
        self.dim = dim
        self.hidden = tuple(int(h) for h in hidden)
        self.embedding = Embedding(vocab_size, dim, seed=seed * 7 + 1)
        self.head = MLP([dim, *self.hidden, num_classes], seed=seed * 7 + 2)

    def architecture_spec(self) -> Dict:
        return {
            "family": "text_classifier",
            "vocab_size": self.vocab_size,
            "num_classes": self.num_classes,
            "dim": self.dim,
            "hidden": list(self.hidden),
        }

    def embed_tokens(self, tokens: np.ndarray) -> Tensor:
        """Masked mean-pooled document embedding, pre-head."""
        tokens = np.asarray(tokens)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        embedded = self.embedding(tokens)  # (B, S, D)
        mask = (tokens != self.PAD_ID).astype(np.float64)  # (B, S)
        counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)  # (B, 1)
        masked = embedded * mask[:, :, None]
        return masked.sum(axis=1) * Tensor(1.0 / counts)

    def forward(self, tokens: np.ndarray) -> Tensor:
        return self.head(self.embed_tokens(tokens))

    def predict_proba(self, tokens: np.ndarray) -> np.ndarray:
        return self.forward(tokens).softmax(axis=-1).data

    def predict(self, tokens: np.ndarray) -> np.ndarray:
        return self.predict_proba(tokens).argmax(axis=-1)


def build_model(spec: Dict, seed: int = 0) -> Module:
    """Instantiate a model from an architecture spec dictionary.

    The inverse of each model's ``architecture_spec()``; used by the
    lake's weight store to rehydrate models from stored weights.
    """
    family = spec.get("family")
    if family in _FAMILY_BUILDERS:
        return _FAMILY_BUILDERS[family](spec, seed=seed)
    if family == "mlp_classifier":
        return MLPClassifier(
            in_features=spec["in_features"],
            num_classes=spec["num_classes"],
            hidden=tuple(spec.get("hidden", (32,))),
            activation=spec.get("activation", "relu"),
            seed=seed,
        )
    if family == "text_classifier":
        return TextClassifier(
            vocab_size=spec["vocab_size"],
            num_classes=spec["num_classes"],
            dim=spec.get("dim", 24),
            hidden=tuple(spec.get("hidden", (32,))),
            seed=seed,
        )
    if family == "transformer_lm":
        return TransformerLM(
            vocab_size=spec["vocab_size"],
            d_model=spec.get("d_model", 32),
            num_heads=spec.get("num_heads", 2),
            num_layers=spec.get("num_layers", 2),
            d_ff=spec.get("d_ff"),
            max_seq_len=spec.get("max_seq_len", 64),
            seed=seed,
        )
    raise ConfigError(f"unknown model family: {family!r}")
