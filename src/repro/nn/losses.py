"""Loss functions over autograd tensors."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.autograd import Tensor


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` and integer ``targets``.

    ``logits`` may be ``(batch, classes)`` or ``(batch, seq, classes)``;
    targets must have the matching leading shape.  Target entries equal
    to ``-1`` are ignored (padding).
    """
    targets = np.asarray(targets)
    if logits.ndim == 3:
        batch, seq, classes = logits.shape
        logits = logits.reshape(batch * seq, classes)
        targets = targets.reshape(batch * seq)
    if logits.ndim != 2 or targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ShapeError(
            f"cross_entropy shapes incompatible: logits {logits.shape}, "
            f"targets {targets.shape}"
        )
    mask = targets >= 0
    count = int(mask.sum())
    if count == 0:
        raise ShapeError("cross_entropy received only padding targets")
    log_probs = logits.log_softmax(axis=-1)
    safe_targets = np.where(mask, targets, 0)
    picked = log_probs[np.arange(targets.shape[0]), safe_targets]
    return -(picked * mask.astype(float)).sum() * (1.0 / count)


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    target = np.asarray(target, dtype=np.float64)
    diff = pred - target
    return (diff * diff).mean()


def kl_divergence(student_logits: Tensor, teacher_probs: np.ndarray) -> Tensor:
    """KL(teacher || student) used for distillation.

    ``teacher_probs`` are fixed probabilities (already softmaxed);
    gradients flow only through the student.
    """
    teacher = np.asarray(teacher_probs, dtype=np.float64)
    log_student = student_logits.log_softmax(axis=-1)
    # Constant teacher-entropy term is omitted: it does not affect grads.
    per_example = -(log_student * teacher).sum(axis=-1)
    return per_example.mean()


def perplexity(logits: np.ndarray, targets: np.ndarray) -> float:
    """Perplexity of next-token predictions (plain numpy, no grads)."""
    logits = np.asarray(logits, dtype=np.float64)
    targets = np.asarray(targets)
    flat_logits = logits.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1)
    mask = flat_targets >= 0
    shifted = flat_logits - flat_logits.max(axis=-1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    picked = log_probs[np.arange(flat_targets.shape[0]), np.where(mask, flat_targets, 0)]
    nll = -(picked * mask).sum() / max(int(mask.sum()), 1)
    return float(np.exp(nll))
