"""Multi-head self-attention for the tiny transformer substrate."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn.autograd import Tensor
from repro.nn.layers import Linear
from repro.nn.module import Module


def causal_mask(length: int) -> np.ndarray:
    """Additive mask: 0 on/below the diagonal, -inf-ish above it."""
    mask = np.triu(np.ones((length, length)), k=1)
    return mask * -1e9


class MultiHeadSelfAttention(Module):
    """Standard scaled dot-product multi-head self-attention.

    Input/output shape ``(batch, seq, d_model)``.  A causal additive mask
    is applied when ``causal=True`` (the default for language modeling).
    """

    def __init__(self, d_model: int, num_heads: int, seed: int = 0, causal: bool = True):
        super().__init__()
        if d_model % num_heads != 0:
            raise ConfigError(
                f"d_model={d_model} must be divisible by num_heads={num_heads}"
            )
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads
        self.causal = causal
        self.q_proj = Linear(d_model, d_model, seed=seed * 17 + 1)
        self.k_proj = Linear(d_model, d_model, seed=seed * 17 + 2)
        self.v_proj = Linear(d_model, d_model, seed=seed * 17 + 3)
        self.out_proj = Linear(d_model, d_model, seed=seed * 17 + 4)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, S, D) -> (B, H, S, Hd)
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        v = self._split_heads(self.v_proj(x), batch, seq)

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        if self.causal:
            scores = scores + causal_mask(seq)
        attn = scores.softmax(axis=-1)
        context = attn @ v  # (B, H, S, Hd)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)
        return self.out_proj(merged)

    def attention_pattern(self, x: Tensor) -> np.ndarray:
        """Return the (detached) attention weights for interpretability.

        Shape ``(batch, heads, seq, seq)``.
        """
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        if self.causal:
            scores = scores + causal_mask(seq)
        return scores.softmax(axis=-1).data
