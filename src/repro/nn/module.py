"""Module and Parameter abstractions on top of the autograd engine.

Modules mirror the familiar torch-style containment model: a module owns
parameters and child modules, and ``state_dict`` / ``load_state_dict``
flatten the tree into ``name -> ndarray`` mappings.  That flat mapping is
the unit of storage in the lake's weight store and the input to all
intrinsic (weight-space) analyses.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.nn.autograd import Tensor


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True``)."""

    def __init__(self, data: np.ndarray, name: str = ""):
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True, name=name)


class Module:
    """Base class for neural network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; this base class discovers them by introspection, in
    attribute assignment order (dicts preserve insertion order), which
    makes ``state_dict`` deterministic.
    """

    def __init__(self) -> None:
        self.training = True

    # -- containment ----------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, ModuleList):
                for i, child in enumerate(value):
                    yield from child.named_parameters(prefix=f"{full}.{i}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Module):
                yield from value.named_modules(prefix=f"{full}.")
            elif isinstance(value, ModuleList):
                for i, child in enumerate(value):
                    yield from child.named_modules(prefix=f"{full}.{i}.")

    # -- train / eval ----------------------------------------------------
    def train(self) -> "Module":
        for _, module in self.named_modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for _, module in self.named_modules():
            module.training = False
        return self

    # -- gradients --------------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- state dict --------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat ``name -> ndarray`` copy of all parameters."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values from a flat mapping (in place)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise ShapeError(
                f"state dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ShapeError(
                    f"parameter {name!r}: expected shape {param.data.shape}, "
                    f"got {value.shape}"
                )
            param.data = value.copy()

    # -- call --------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList:
    """An ordered container of modules, discovered by Module introspection."""

    def __init__(self, modules=()):
        self._modules: List[Module] = list(modules)

    def append(self, module: Module) -> None:
        self._modules.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return self._modules[index]
