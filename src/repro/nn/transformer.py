"""A tiny decoder-only transformer language model.

This is the "large language model" of the lake: small enough to train in
seconds on synthetic corpora, but with the genuine architecture —
embeddings, positional encodings, pre-norm attention blocks, an MLP
expansion, weight-tied unembedding option — so that intrinsic analyses
(weight-space features, attention patterns, neuron ablation) have real
structure to work with.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.autograd import Tensor
from repro.nn.layers import Embedding, LayerNorm, Linear
from repro.nn.module import Module, ModuleList
from repro.utils.rng import derive_rng


class TransformerBlock(Module):
    """Pre-norm transformer block: LN -> attention -> LN -> MLP."""

    def __init__(self, d_model: int, num_heads: int, d_ff: int, seed: int = 0):
        super().__init__()
        self.ln1 = LayerNorm(d_model)
        self.attn = MultiHeadSelfAttention(d_model, num_heads, seed=seed)
        self.ln2 = LayerNorm(d_model)
        self.ff_in = Linear(d_model, d_ff, seed=seed * 31 + 7)
        self.ff_out = Linear(d_ff, d_model, seed=seed * 31 + 8)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.ln1(x))
        hidden = self.ff_in(self.ln2(x)).gelu()
        return x + self.ff_out(hidden)

    def mlp_activations(self, x: Tensor) -> Tensor:
        """Post-GELU hidden activations of the MLP, for neuron analyses."""
        x = x + self.attn(self.ln1(x))
        return self.ff_in(self.ln2(x)).gelu()


class TransformerLM(Module):
    """Decoder-only causal language model.

    ``forward`` maps int token ids ``(batch, seq)`` to logits
    ``(batch, seq, vocab)``.
    """

    def __init__(
        self,
        vocab_size: int,
        d_model: int = 32,
        num_heads: int = 2,
        num_layers: int = 2,
        d_ff: Optional[int] = None,
        max_seq_len: int = 64,
        seed: int = 0,
    ):
        super().__init__()
        if vocab_size <= 0:
            raise ConfigError(f"vocab_size must be positive, got {vocab_size}")
        d_ff = d_ff if d_ff is not None else 4 * d_model
        self.vocab_size = vocab_size
        self.d_model = d_model
        self.num_heads = num_heads
        self.num_layers = num_layers
        self.d_ff = d_ff
        self.max_seq_len = max_seq_len

        self.tok_emb = Embedding(vocab_size, d_model, seed=seed * 101 + 1)
        self.pos_emb = Embedding(max_seq_len, d_model, seed=seed * 101 + 2)
        self.blocks = ModuleList(
            [TransformerBlock(d_model, num_heads, d_ff, seed=seed * 101 + 10 + i)
             for i in range(num_layers)]
        )
        self.ln_final = LayerNorm(d_model)
        self.head = Linear(d_model, vocab_size, seed=seed * 101 + 99)

    def architecture_spec(self) -> dict:
        """Structured description of the function family ``f*``."""
        return {
            "family": "transformer_lm",
            "vocab_size": self.vocab_size,
            "d_model": self.d_model,
            "num_heads": self.num_heads,
            "num_layers": self.num_layers,
            "d_ff": self.d_ff,
            "max_seq_len": self.max_seq_len,
        }

    def _embed(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        _, seq = tokens.shape
        if seq > self.max_seq_len:
            raise ConfigError(f"sequence length {seq} exceeds max {self.max_seq_len}")
        positions = np.broadcast_to(np.arange(seq), tokens.shape)
        return self.tok_emb(tokens) + self.pos_emb(positions)

    def forward(self, tokens: np.ndarray) -> Tensor:
        x = self._embed(tokens)
        for block in self.blocks:
            x = block(x)
        return self.head(self.ln_final(x))

    def hidden_states(self, tokens: np.ndarray) -> List[Tensor]:
        """Residual-stream states after each block (for probing)."""
        x = self._embed(tokens)
        states = [x]
        for block in self.blocks:
            x = block(x)
            states.append(x)
        return states

    def next_token_distribution(self, tokens: np.ndarray) -> np.ndarray:
        """Probability distribution over the next token after ``tokens``.

        This is the extrinsic behavior ``p_theta`` the paper's behavioral
        analyses observe.  Accepts a 1-D prompt; returns shape (vocab,).
        """
        logits = self.forward(np.asarray(tokens)[None, :])
        return logits[0, -1].softmax().data

    def generate(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        rng: np.random.Generator,
        temperature: float = 1.0,
        logit_bias: Optional[np.ndarray] = None,
    ) -> List[int]:
        """Sample a continuation of ``prompt``.

        ``logit_bias`` (shape ``(vocab,)``) is added to logits before
        sampling — the hook used by the watermarking module.
        """
        tokens = list(np.asarray(prompt).tolist())
        for _ in range(max_new_tokens):
            window = np.array(tokens[-self.max_seq_len:], dtype=np.int64)
            logits = self.forward(window[None, :]).data[0, -1]
            if logit_bias is not None:
                logits = logits + logit_bias
            if temperature <= 0:
                tokens.append(int(np.argmax(logits)))
                continue
            scaled = logits / temperature
            scaled -= scaled.max()
            probs = np.exp(scaled)
            probs /= probs.sum()
            tokens.append(int(rng.choice(len(probs), p=probs)))
        return tokens[len(prompt):]
