"""Training loops, checkpointing, and per-example gradient utilities.

Checkpoints taken during training are the raw material for TracIn-style
attribution (:mod:`repro.core.attribution.influence`), so the trainer
optionally records full state dicts at a configurable cadence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.nn.autograd import Tensor
from repro.nn.losses import cross_entropy
from repro.nn.module import Module
from repro.nn.optim import Adam, Optimizer
from repro.obs import metrics as obs_metrics
from repro.obs.instrument import TRAIN_EPOCH_SECONDS, TRAIN_EPOCHS, TRAIN_LOSS
from repro.obs.tracing import trace
from repro.utils.rng import derive_rng


@dataclass
class TrainResult:
    """Outcome of a training run."""

    losses: List[float] = field(default_factory=list)
    checkpoints: List[Dict[str, np.ndarray]] = field(default_factory=list)
    checkpoint_lrs: List[float] = field(default_factory=list)
    epochs: int = 0

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def iterate_minibatches(
    n: int, batch_size: int, rng: np.random.Generator, shuffle: bool = True
):
    """Yield index arrays covering ``range(n)`` in batches."""
    order = rng.permutation(n) if shuffle else np.arange(n)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]


def train_classifier(
    model: Module,
    inputs: np.ndarray,
    labels: np.ndarray,
    epochs: int = 5,
    batch_size: int = 32,
    lr: float = 1e-2,
    seed: int = 0,
    optimizer: Optional[Optimizer] = None,
    checkpoint_every: int = 0,
    weight_decay: float = 0.0,
) -> TrainResult:
    """Train any classifier model (logits out, int labels) in place.

    ``checkpoint_every > 0`` records a state-dict snapshot every that
    many epochs (plus the final state), for TracIn attribution.
    """
    inputs = np.asarray(inputs)
    labels = np.asarray(labels)
    if len(inputs) != len(labels):
        raise ConfigError(
            f"inputs ({len(inputs)}) and labels ({len(labels)}) length mismatch"
        )
    rng = derive_rng(seed, "train_classifier")
    opt = optimizer or Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    result = TrainResult()
    model.train()
    with trace("nn.train_classifier", epochs=epochs, examples=len(inputs)):
        for epoch in range(epochs):
            epoch_start = time.perf_counter()
            epoch_losses = []
            with trace("nn.train.epoch", epoch=epoch):
                for batch_idx in iterate_minibatches(len(inputs), batch_size, rng):
                    opt.zero_grad()
                    logits = model(inputs[batch_idx])
                    loss = cross_entropy(logits, labels[batch_idx])
                    loss.backward()
                    opt.step()
                    epoch_losses.append(loss.item())
            result.losses.append(float(np.mean(epoch_losses)))
            obs_metrics.inc(TRAIN_EPOCHS)
            obs_metrics.observe(TRAIN_EPOCH_SECONDS, time.perf_counter() - epoch_start)
            obs_metrics.set_gauge(TRAIN_LOSS, result.losses[-1])
            if checkpoint_every and (epoch + 1) % checkpoint_every == 0:
                result.checkpoints.append(model.state_dict())
                result.checkpoint_lrs.append(opt.lr)
    result.epochs = epochs
    if checkpoint_every and (not result.checkpoints or epochs % checkpoint_every):
        result.checkpoints.append(model.state_dict())
        result.checkpoint_lrs.append(opt.lr)
    model.eval()
    return result


def train_language_model(
    model: Module,
    token_sequences: np.ndarray,
    epochs: int = 3,
    batch_size: int = 16,
    lr: float = 3e-3,
    seed: int = 0,
    checkpoint_every: int = 0,
) -> TrainResult:
    """Train a causal LM on fixed-length token sequences.

    ``token_sequences`` is ``(num_seqs, seq_len)``; next-token targets
    are the inputs shifted left, with ``-1`` padding for the last slot.
    """
    sequences = np.asarray(token_sequences, dtype=np.int64)
    if sequences.ndim != 2:
        raise ConfigError(f"expected (num_seqs, seq_len) tokens, got {sequences.shape}")
    rng = derive_rng(seed, "train_lm")
    opt = Adam(model.parameters(), lr=lr)
    result = TrainResult()
    model.train()
    targets = np.concatenate(
        [sequences[:, 1:], np.full((len(sequences), 1), -1, dtype=np.int64)], axis=1
    )
    with trace("nn.train_language_model", epochs=epochs, sequences=len(sequences)):
        for epoch in range(epochs):
            epoch_start = time.perf_counter()
            epoch_losses = []
            with trace("nn.train.epoch", epoch=epoch):
                for batch_idx in iterate_minibatches(len(sequences), batch_size, rng):
                    opt.zero_grad()
                    logits = model(sequences[batch_idx])
                    loss = cross_entropy(logits, targets[batch_idx])
                    loss.backward()
                    opt.step()
                    epoch_losses.append(loss.item())
            result.losses.append(float(np.mean(epoch_losses)))
            obs_metrics.inc(TRAIN_EPOCHS)
            obs_metrics.observe(TRAIN_EPOCH_SECONDS, time.perf_counter() - epoch_start)
            obs_metrics.set_gauge(TRAIN_LOSS, result.losses[-1])
            if checkpoint_every and (epoch + 1) % checkpoint_every == 0:
                result.checkpoints.append(model.state_dict())
                result.checkpoint_lrs.append(opt.lr)
    result.epochs = epochs
    if checkpoint_every and (not result.checkpoints or epochs % checkpoint_every):
        result.checkpoints.append(model.state_dict())
        result.checkpoint_lrs.append(opt.lr)
    model.eval()
    return result


def example_gradient(
    model: Module, x: np.ndarray, y: int,
    loss_fn: Callable[[Tensor, np.ndarray], Tensor] = cross_entropy,
) -> Dict[str, np.ndarray]:
    """Gradient of the loss on a single example, as ``name -> grad``."""
    model.zero_grad()
    logits = model(np.asarray(x)[None, ...])
    loss = loss_fn(logits, np.asarray([y]))
    loss.backward()
    grads = {
        name: (param.grad.copy() if param.grad is not None else np.zeros_like(param.data))
        for name, param in model.named_parameters()
    }
    model.zero_grad()
    return grads


def flat_gradient(grads: Dict[str, np.ndarray]) -> np.ndarray:
    """Concatenate a name->grad mapping into one flat vector (sorted names)."""
    return np.concatenate([grads[name].ravel() for name in sorted(grads)])


def evaluate_accuracy(model: Module, inputs: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct argmax predictions."""
    logits = model(np.asarray(inputs))
    predictions = logits.data.argmax(axis=-1)
    return float((predictions == np.asarray(labels)).mean())


def per_example_losses(
    model: Module, inputs: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """Cross-entropy loss of each example separately (no grads)."""
    logits = model(np.asarray(inputs)).data
    labels = np.asarray(labels)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    return -log_probs[np.arange(len(labels)), labels]
