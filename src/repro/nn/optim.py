"""Optimizers: SGD (with momentum) and Adam/AdamW."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: Sequence[Parameter], lr: float):
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        self.params: List[Parameter] = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Sequence[Parameter], lr: float = 0.1, momentum: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                param.data = param.data - self.lr * velocity
            else:
                param.data = param.data - self.lr * param.grad


class Adam(Optimizer):
    """Adam with optional decoupled weight decay (AdamW when decay > 0)."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            param.data = param.data - self.lr * update
