"""A small reverse-mode automatic differentiation engine over NumPy.

This is the computational substrate for every trained model in the lake:
classifiers, language models, probes, and meta-models.  It supports the
operations needed by MLPs and small transformers — elementwise math,
matmul, reductions, indexing/gather, softmax and friends — with full
broadcasting support in both the forward and backward passes.

Design notes
------------
* A :class:`Tensor` wraps a ``float64`` (or integer, for index tensors)
  ndarray plus an optional gradient and a backward closure.
* The graph is built eagerly; ``Tensor.backward()`` runs a topological
  sort and accumulates gradients into every tensor with
  ``requires_grad=True``.
* Broadcasting is undone in the backward pass by :func:`unbroadcast`,
  which sums gradient axes that were expanded in the forward pass.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ShapeError

ArrayLike = Union[np.ndarray, float, int, list, tuple]


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An ndarray with an autograd tape entry.

    Parameters
    ----------
    data:
        Array data; converted to ``float64`` unless an integer dtype is
        passed explicitly (used for token index tensors).
    requires_grad:
        Whether gradients should accumulate into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        name: str = "",
    ):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype.kind not in "iub":
            arr = arr.astype(np.float64, copy=False)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[], None]] = None
        self._parents: Tuple[Tensor, ...] = tuple(_parents)
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    def _make_child(self, data: np.ndarray, parents: Sequence["Tensor"]) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=requires, _parents=parents if requires else ())

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ShapeError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        self.grad = grad if self.grad is None else self.grad + grad
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    @staticmethod
    def _accumulate(tensor: "Tensor", grad: np.ndarray) -> None:
        if not tensor.requires_grad:
            return
        grad = unbroadcast(grad, tensor.data.shape)
        if tensor.grad is None:
            tensor.grad = grad.copy()
        else:
            tensor.grad = tensor.grad + grad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out = self._make_child(self.data + other_t.data, (self, other_t))

        def _backward() -> None:
            Tensor._accumulate(self, out.grad)
            Tensor._accumulate(other_t, out.grad)

        out._backward = _backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = self._make_child(-self.data, (self,))

        def _backward() -> None:
            Tensor._accumulate(self, -out.grad)

        out._backward = _backward
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out = self._make_child(self.data * other_t.data, (self, other_t))

        def _backward() -> None:
            Tensor._accumulate(self, out.grad * other_t.data)
            Tensor._accumulate(other_t, out.grad * self.data)

        out._backward = _backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        out = self._make_child(self.data / other_t.data, (self, other_t))

        def _backward() -> None:
            Tensor._accumulate(self, out.grad / other_t.data)
            Tensor._accumulate(other_t, -out.grad * self.data / (other_t.data**2))

        out._backward = _backward
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out = self._make_child(self.data**exponent, (self,))

        def _backward() -> None:
            Tensor._accumulate(self, out.grad * exponent * self.data ** (exponent - 1))

        out._backward = _backward
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other_t = as_tensor(other)
        out = self._make_child(self.data @ other_t.data, (self, other_t))

        def _backward() -> None:
            grad = out.grad
            a, b = self.data, other_t.data
            if a.ndim == 1 and b.ndim == 1:
                Tensor._accumulate(self, grad * b)
                Tensor._accumulate(other_t, grad * a)
                return
            a2 = a[None, :] if a.ndim == 1 else a
            b2 = b[:, None] if b.ndim == 1 else b
            g2 = grad
            if a.ndim == 1:
                g2 = np.expand_dims(g2, axis=-2)
            if b.ndim == 1:
                g2 = np.expand_dims(g2, axis=-1)
            grad_a = g2 @ np.swapaxes(b2, -1, -2)
            grad_b = np.swapaxes(a2, -1, -2) @ g2
            if a.ndim == 1:
                grad_a = grad_a.reshape(grad_a.shape[:-2] + (a.shape[0],))
                grad_a = unbroadcast(grad_a, a.shape)
            if b.ndim == 1:
                grad_b = grad_b.reshape(grad_b.shape[:-1])
            Tensor._accumulate(self, unbroadcast(grad_a, a.shape))
            Tensor._accumulate(other_t, unbroadcast(grad_b, b.shape))

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        out = self._make_child(out_data, (self,))

        def _backward() -> None:
            Tensor._accumulate(self, out.grad * out_data)

        out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make_child(np.log(self.data), (self,))

        def _backward() -> None:
            Tensor._accumulate(self, out.grad / self.data)

        out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = self._make_child(self.data * mask, (self,))

        def _backward() -> None:
            Tensor._accumulate(self, out.grad * mask)

        out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        out = self._make_child(out_data, (self,))

        def _backward() -> None:
            Tensor._accumulate(self, out.grad * (1.0 - out_data**2))

        out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make_child(out_data, (self,))

        def _backward() -> None:
            Tensor._accumulate(self, out.grad * out_data * (1.0 - out_data))

        out._backward = _backward
        return out

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        x = self.data
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + t)
        out = self._make_child(out_data, (self,))

        def _backward() -> None:
            dt = (1.0 - t**2) * c * (1.0 + 3 * 0.044715 * x**2)
            local = 0.5 * (1.0 + t) + 0.5 * x * dt
            Tensor._accumulate(self, out.grad * local)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make_child(self.data.sum(axis=axis, keepdims=keepdims), (self,))

        def _backward() -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            Tensor._accumulate(self, np.broadcast_to(grad, self.data.shape))

        out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make_child(self.data.reshape(shape), (self,))

        def _backward() -> None:
            Tensor._accumulate(self, out.grad.reshape(self.data.shape))

        out._backward = _backward
        return out

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out = self._make_child(self.data.transpose(axes), (self,))
        inverse = np.argsort(axes)

        def _backward() -> None:
            Tensor._accumulate(self, out.grad.transpose(inverse))

        out._backward = _backward
        return out

    def swapaxes(self, a: int, b: int) -> "Tensor":
        out = self._make_child(np.swapaxes(self.data, a, b), (self,))

        def _backward() -> None:
            Tensor._accumulate(self, np.swapaxes(out.grad, a, b))

        out._backward = _backward
        return out

    def __getitem__(self, key) -> "Tensor":
        out = self._make_child(self.data[key], (self,))

        def _backward() -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, key, out.grad)
            Tensor._accumulate(self, grad)

        out._backward = _backward
        return out

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows (embedding lookup): ``out[..., :] = self[indices]``."""
        idx = np.asarray(indices)
        out = self._make_child(self.data[idx], (self,))

        def _backward() -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, idx.reshape(-1), out.grad.reshape(-1, self.data.shape[-1]))
            Tensor._accumulate(self, grad)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Softmax family (implemented as fused primitives for stability)
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)
        out = self._make_child(out_data, (self,))

        def _backward() -> None:
            g = out.grad
            dot = (g * out_data).sum(axis=axis, keepdims=True)
            Tensor._accumulate(self, out_data * (g - dot))

        out._backward = _backward
        return out

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_norm
        out = self._make_child(out_data, (self,))

        def _backward() -> None:
            g = out.grad
            softmax = np.exp(out_data)
            Tensor._accumulate(self, g - softmax * g.sum(axis=axis, keepdims=True))

        out._backward = _backward
        return out


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce a value into a (non-grad) Tensor, passing Tensors through."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tuple(tensors) if requires else ())

    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def _backward() -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * data.ndim
            slicer[axis] = slice(int(start), int(stop))
            Tensor._accumulate(tensor, out.grad[tuple(slicer)])

    out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tuple(tensors) if requires else ())

    def _backward() -> None:
        for i, tensor in enumerate(tensors):
            slicer = [slice(None)] * data.ndim
            slicer[axis] = i
            Tensor._accumulate(tensor, out.grad[tuple(slicer)])

    out._backward = _backward
    return out


def where(condition: np.ndarray, if_true: Tensor, if_false: Tensor) -> Tensor:
    """Elementwise select with gradients flowing to both branches."""
    t, f = as_tensor(if_true), as_tensor(if_false)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, t.data, f.data)
    requires = t.requires_grad or f.requires_grad
    out = Tensor(data, requires_grad=requires, _parents=(t, f) if requires else ())

    def _backward() -> None:
        Tensor._accumulate(t, out.grad * cond)
        Tensor._accumulate(f, out.grad * (~cond))

    out._backward = _backward
    return out
