"""Vocabulary: a bidirectional token <-> id mapping with special tokens."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.errors import ConfigError
from repro.data.domains import (
    ALL_DOMAINS,
    SHARED_CONNECTIVES,
    SHARED_DETERMINERS,
    SHARED_VERBS,
)

PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"
BOS_TOKEN = "<bos>"
EOS_TOKEN = "<eos>"
SPECIAL_TOKENS = (PAD_TOKEN, UNK_TOKEN, BOS_TOKEN, EOS_TOKEN)


class Vocabulary:
    """Immutable-after-build token <-> id mapping.

    Id 0 is always the padding token (models mask it in pooling).
    """

    def __init__(self, tokens: Sequence[str]):
        self._id_to_token: List[str] = list(SPECIAL_TOKENS)
        seen = set(self._id_to_token)
        for token in tokens:
            if token in seen:
                continue
            seen.add(token)
            self._id_to_token.append(token)
        self._token_to_id: Dict[str, int] = {
            token: i for i, token in enumerate(self._id_to_token)
        }

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK_TOKEN]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[BOS_TOKEN]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[EOS_TOKEN]

    def id_of(self, token: str) -> int:
        """Token id, or the <unk> id for unseen tokens."""
        return self._token_to_id.get(token, self.unk_id)

    def token_of(self, token_id: int) -> str:
        if not 0 <= token_id < len(self._id_to_token):
            raise ConfigError(f"token id {token_id} out of range 0..{len(self) - 1}")
        return self._id_to_token[token_id]

    def encode(self, tokens: Iterable[str]) -> List[int]:
        return [self.id_of(t) for t in tokens]

    def decode(self, ids: Iterable[int]) -> List[str]:
        return [self.token_of(i) for i in ids]

    def tokens(self) -> List[str]:
        return list(self._id_to_token)


def build_default_vocabulary() -> Vocabulary:
    """The shared lake vocabulary covering all domains plus function words.

    Deterministic: domain registration order and word-list order are
    fixed, so every process builds an identical vocabulary — a property
    the lake relies on so that all text models share token ids.
    """
    words: List[str] = []
    words.extend(SHARED_DETERMINERS)
    words.extend(SHARED_CONNECTIVES)
    words.extend(SHARED_VERBS)
    for domain in ALL_DOMAINS:
        words.extend(domain.content_words())
    return Vocabulary(words)
