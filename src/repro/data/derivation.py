"""Dataset derivation operators with recorded provenance.

The paper argues model lakes must manage data alongside models
("Holistic Management of Models and Data"): dataset versions, their
lineage, and citation.  Each operator here returns a new
:class:`TextDataset` plus a :class:`DatasetDerivation` record describing
how it was produced — the dataset-side analogue of a model version edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.data.datasets import TextDataset
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class DatasetDerivation:
    """Provenance record: how a dataset version was produced."""

    operation: str
    source_digests: Tuple[str, ...]
    result_digest: str
    params: Dict = field(default_factory=dict)

    def describe(self) -> str:
        sources = ", ".join(d[:8] for d in self.source_digests)
        return f"{self.operation}({sources}) -> {self.result_digest[:8]} {self.params}"


def sample_dataset(
    dataset: TextDataset, fraction: float, seed: int = 0, name: Optional[str] = None
) -> Tuple[TextDataset, DatasetDerivation]:
    """Random subsample of ``fraction`` of the examples."""
    if not 0.0 < fraction <= 1.0:
        raise ConfigError(f"fraction must be in (0, 1], got {fraction}")
    rng = derive_rng(seed, "sample_dataset")
    count = max(1, int(round(fraction * len(dataset))))
    indices = np.sort(rng.choice(len(dataset), size=count, replace=False))
    result = dataset.subset(indices, name=name or f"{dataset.name}/sample{fraction}")
    record = DatasetDerivation(
        operation="sample",
        source_digests=(dataset.content_digest(),),
        result_digest=result.content_digest(),
        params={"fraction": fraction, "seed": seed},
    )
    return result, record


def filter_by_domain(
    dataset: TextDataset, domains: List[str], name: Optional[str] = None
) -> Tuple[TextDataset, DatasetDerivation]:
    """Keep only examples whose domain is in ``domains``."""
    wanted = set(domains)
    indices = [i for i, d in enumerate(dataset.domains) if d in wanted]
    if not indices:
        raise ConfigError(f"filter for {sorted(wanted)} matched no examples")
    result = dataset.subset(indices, name=name or f"{dataset.name}/only[{','.join(domains)}]")
    record = DatasetDerivation(
        operation="filter_domain",
        source_digests=(dataset.content_digest(),),
        result_digest=result.content_digest(),
        params={"domains": sorted(wanted)},
    )
    return result, record


def augment_with_noise(
    dataset: TextDataset,
    swap_probability: float = 0.1,
    seed: int = 0,
    name: Optional[str] = None,
) -> Tuple[TextDataset, DatasetDerivation]:
    """Token-level noise augmentation: random in-vocabulary swaps.

    Swaps only non-padding positions, preserving lengths and labels —
    the synthetic analogue of paraphrase/typo augmentation.
    """
    if not 0.0 <= swap_probability < 1.0:
        raise ConfigError(f"swap_probability must be in [0, 1), got {swap_probability}")
    rng = derive_rng(seed, "augment_noise")
    tokens = dataset.tokens.copy()
    nonpad = tokens != 0
    vocab_high = int(tokens.max()) + 1
    swap_mask = nonpad & (rng.random(tokens.shape) < swap_probability)
    tokens[swap_mask] = rng.integers(4, vocab_high, size=int(swap_mask.sum()))
    result = TextDataset(
        tokens=tokens,
        labels=dataset.labels.copy(),
        domains=list(dataset.domains),
        name=name or f"{dataset.name}/aug{swap_probability}",
        meta=dict(dataset.meta),
    )
    record = DatasetDerivation(
        operation="augment_noise",
        source_digests=(dataset.content_digest(),),
        result_digest=result.content_digest(),
        params={"swap_probability": swap_probability, "seed": seed},
    )
    return result, record


def merge_datasets(
    first: TextDataset, second: TextDataset, name: Optional[str] = None
) -> Tuple[TextDataset, DatasetDerivation]:
    """Concatenate two datasets (sequence lengths must match)."""
    if first.seq_len != second.seq_len:
        raise ConfigError(
            f"cannot merge datasets with seq_len {first.seq_len} and {second.seq_len}"
        )
    result = TextDataset(
        tokens=np.concatenate([first.tokens, second.tokens]),
        labels=np.concatenate([first.labels, second.labels]),
        domains=list(first.domains) + list(second.domains),
        name=name or f"merge({first.name},{second.name})",
    )
    record = DatasetDerivation(
        operation="merge",
        source_digests=(first.content_digest(), second.content_digest()),
        result_digest=result.content_digest(),
        params={},
    )
    return result, record
