"""Probe sets: fixed inputs used to observe model behavior.

Behavioral (extrinsic) model embeddings are a model's outputs on a
*shared, fixed* probe set — the "model as query" machinery of Lu et al.
that the paper proposes extending to all lake models.  Probes must be
identical across the lake, so they are derived deterministically from a
probe-set seed only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.data.corpus import CorpusGenerator
from repro.data.domains import DOMAIN_NAMES
from repro.data.tokenizer import Tokenizer
from repro.data.vocab import build_default_vocabulary
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class ProbeSet:
    """A fixed batch of probe inputs.

    ``tokens`` is ``(n_probes, seq_len)``; ``domains`` records which
    domain each probe sentence was drawn from (balanced coverage), which
    lets behavioral embeddings expose per-domain competence.
    """

    tokens: np.ndarray
    domains: tuple
    seed: int

    @property
    def num_probes(self) -> int:
        return len(self.tokens)

    @property
    def seq_len(self) -> int:
        return self.tokens.shape[1]


def make_text_probes(
    probes_per_domain: int = 4,
    seq_len: int = 24,
    seed: int = 1234,
    domain_names: Optional[Sequence[str]] = None,
    tokenizer: Optional[Tokenizer] = None,
) -> ProbeSet:
    """Balanced text probes covering every (or the given) domain."""
    if probes_per_domain <= 0:
        raise ConfigError(f"probes_per_domain must be positive, got {probes_per_domain}")
    names = tuple(domain_names or DOMAIN_NAMES)
    tokenizer = tokenizer or Tokenizer(build_default_vocabulary())
    generator = CorpusGenerator(seed=seed, mixture_noise=0.0)
    documents = []
    for name in names:
        documents.extend(generator.generate_corpus(name, probes_per_domain, sentences_per_doc=3))
    tokens = tokenizer.encode_documents(documents, max_length=seq_len)
    return ProbeSet(
        tokens=tokens,
        domains=tuple(doc.domain for doc in documents),
        seed=seed,
    )


def make_feature_probes(
    num_probes: int, num_features: int, seed: int = 1234
) -> np.ndarray:
    """Gaussian feature-vector probes for MLP-classifier behavior."""
    if num_probes <= 0 or num_features <= 0:
        raise ConfigError("num_probes and num_features must be positive")
    rng = derive_rng(seed, f"feature_probes:{num_probes}x{num_features}")
    return rng.normal(size=(num_probes, num_features))


def make_lm_prompts(
    prompts_per_domain: int = 2,
    prompt_len: int = 6,
    seed: int = 1234,
    domain_names: Optional[Sequence[str]] = None,
    tokenizer: Optional[Tokenizer] = None,
) -> ProbeSet:
    """Short prompts used to observe a language model's continuations."""
    names = tuple(domain_names or DOMAIN_NAMES)
    tokenizer = tokenizer or Tokenizer(build_default_vocabulary())
    generator = CorpusGenerator(seed=seed, mixture_noise=0.0)
    rows: List[List[int]] = []
    domains: List[str] = []
    for name in names:
        for doc in generator.generate_corpus(name, prompts_per_domain, sentences_per_doc=1):
            ids = [tokenizer.vocabulary.bos_id] + tokenizer.encode(doc.tokens)
            rows.append(ids[:prompt_len])
            domains.append(name)
    tokens = tokenizer.pad_batch(rows, max_length=prompt_len)
    return ProbeSet(tokens=tokens, domains=tuple(domains), seed=seed)
