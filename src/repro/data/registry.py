"""Dataset registry: content-addressed storage of datasets + lineage.

This is the data-lake half of the holistic model/data lake the paper
calls for.  Datasets are registered by content digest; derivations form
a lineage DAG queried by dataset search and citation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

import networkx as nx

from repro.errors import DatasetNotFoundError, DuplicateIdError
from repro.data.datasets import TextDataset
from repro.data.derivation import DatasetDerivation


class DatasetRegistry:
    """Registry of datasets with lineage edges between versions."""

    def __init__(self) -> None:
        self._datasets: Dict[str, TextDataset] = {}
        self._lineage = nx.DiGraph()

    def __len__(self) -> int:
        return len(self._datasets)

    def __contains__(self, digest: str) -> bool:
        return digest in self._datasets

    def register(
        self, dataset: TextDataset, derivation: Optional[DatasetDerivation] = None
    ) -> str:
        """Register a dataset; returns its content digest.

        Re-registering identical content is a no-op (content addressing);
        registering different content under the same digest is impossible
        by construction.
        """
        digest = dataset.content_digest()
        if digest not in self._datasets:
            self._datasets[digest] = dataset
            self._lineage.add_node(digest, name=dataset.name)
        if derivation is not None:
            for source in derivation.source_digests:
                if source not in self._datasets:
                    raise DatasetNotFoundError(source)
                self._lineage.add_edge(
                    source, digest, operation=derivation.operation,
                    params=dict(derivation.params),
                )
        return digest

    def get(self, digest: str) -> TextDataset:
        try:
            return self._datasets[digest]
        except KeyError:
            raise DatasetNotFoundError(digest) from None

    def find_by_name(self, name: str) -> List[TextDataset]:
        return [d for d in self._datasets.values() if d.name == name]

    def digests(self) -> List[str]:
        return list(self._datasets)

    def __iter__(self) -> Iterator[TextDataset]:
        return iter(self._datasets.values())

    # -- lineage -----------------------------------------------------------
    def parents(self, digest: str) -> List[str]:
        self._require(digest)
        return list(self._lineage.predecessors(digest))

    def children(self, digest: str) -> List[str]:
        self._require(digest)
        return list(self._lineage.successors(digest))

    def ancestors(self, digest: str) -> Set[str]:
        self._require(digest)
        return set(nx.ancestors(self._lineage, digest))

    def descendants(self, digest: str) -> Set[str]:
        self._require(digest)
        return set(nx.descendants(self._lineage, digest))

    def versions_of(self, digest: str) -> Set[str]:
        """All datasets connected to ``digest`` by derivation (any direction).

        This implements the paper's "models trained on *versions of* the
        dataset" semantics: the weakly-connected component of the lineage
        graph containing the dataset.
        """
        self._require(digest)
        return set(nx.node_connected_component(self._lineage.to_undirected(), digest))

    def derivation_path(self, source: str, target: str) -> Optional[List[str]]:
        """Shortest derivation chain from ``source`` to ``target``, if any."""
        self._require(source)
        self._require(target)
        try:
            return nx.shortest_path(self._lineage, source, target)
        except nx.NetworkXNoPath:
            return None

    def _require(self, digest: str) -> None:
        if digest not in self._datasets:
            raise DatasetNotFoundError(digest)
