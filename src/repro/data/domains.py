"""Domain specifications for the synthetic multi-domain corpus.

Each domain has its own vocabulary of content words (nouns, verbs,
adjectives) layered over a shared pool of function words.  The skew in
token distributions is what gives models trained on different domains
genuinely different extrinsic behavior — the property every
content-based lake task depends on.

The domains intentionally mirror the paper's motivating scenario
(Example 1.1: a user hunting for a *legal* summarization model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigError

#: Function words shared by every domain.
SHARED_DETERMINERS = ["the", "a", "this", "that", "each", "every"]
SHARED_CONNECTIVES = ["and", "but", "while", "because", "although", "so"]
SHARED_VERBS = ["is", "was", "has", "had", "will", "may", "must", "can"]


@dataclass(frozen=True)
class DomainSpec:
    """A content-word profile for one topical domain."""

    name: str
    nouns: Tuple[str, ...]
    verbs: Tuple[str, ...]
    adjectives: Tuple[str, ...]
    description: str = ""

    def content_words(self) -> List[str]:
        return list(self.nouns) + list(self.verbs) + list(self.adjectives)


_DOMAIN_TABLE: Dict[str, DomainSpec] = {}


def _register(spec: DomainSpec) -> DomainSpec:
    if spec.name in _DOMAIN_TABLE:
        raise ConfigError(f"duplicate domain {spec.name!r}")
    _DOMAIN_TABLE[spec.name] = spec
    return spec


LEGAL = _register(DomainSpec(
    name="legal",
    nouns=("court", "plaintiff", "defendant", "statute", "contract", "clause",
           "verdict", "appeal", "judge", "jury", "tort", "liability",
           "precedent", "injunction", "testimony", "counsel"),
    verbs=("rules", "files", "appeals", "argues", "enjoins", "litigates",
           "settles", "affirms", "overturns", "deposes"),
    adjectives=("statutory", "contractual", "liable", "negligent", "binding",
                "appellate", "judicial", "punitive"),
    description="court opinions, contracts, and statutes",
))

MEDICAL = _register(DomainSpec(
    name="medical",
    nouns=("patient", "diagnosis", "symptom", "treatment", "dosage", "clinic",
           "physician", "therapy", "infection", "biopsy", "prognosis",
           "pathology", "vaccine", "syndrome", "lesion", "triage"),
    verbs=("diagnoses", "prescribes", "treats", "admits", "discharges",
           "monitors", "vaccinates", "operates", "examines", "stabilizes"),
    adjectives=("chronic", "acute", "benign", "malignant", "clinical",
                "surgical", "viral", "bacterial"),
    description="clinical notes and medical literature",
))

NEWS = _register(DomainSpec(
    name="news",
    nouns=("election", "government", "minister", "economy", "protest",
           "summit", "policy", "parliament", "crisis", "reporter",
           "headline", "campaign", "referendum", "coalition", "scandal", "poll"),
    verbs=("reports", "announces", "elects", "debates", "resigns",
           "campaigns", "votes", "investigates", "declares", "condemns"),
    adjectives=("political", "economic", "national", "international",
                "breaking", "official", "public", "controversial"),
    description="newswire and current-affairs text",
))

CODE = _register(DomainSpec(
    name="code",
    nouns=("function", "variable", "compiler", "bug", "array", "pointer",
           "thread", "module", "interface", "runtime", "stack", "queue",
           "algorithm", "refactor", "commit", "repository"),
    verbs=("compiles", "executes", "debugs", "refactors", "allocates",
           "iterates", "parses", "serializes", "deploys", "merges"),
    adjectives=("recursive", "concurrent", "immutable", "static", "dynamic",
                "asynchronous", "deprecated", "modular"),
    description="software engineering discussions",
))

FINANCE = _register(DomainSpec(
    name="finance",
    nouns=("market", "portfolio", "dividend", "equity", "bond", "ledger",
           "asset", "liability_fin", "hedge", "margin", "futures", "audit_fin",
           "revenue", "valuation", "broker", "derivative"),
    verbs=("invests", "trades", "hedges", "audits", "depreciates",
           "liquidates", "accrues", "capitalizes", "underwrites", "vests"),
    adjectives=("fiscal", "bullish", "bearish", "liquid", "leveraged",
                "solvent", "quarterly", "diversified"),
    description="financial filings and market commentary",
))

SPORTS = _register(DomainSpec(
    name="sports",
    nouns=("season", "tournament", "league", "coach", "striker", "goal",
           "penalty", "championship", "stadium", "referee_sport", "roster",
           "playoff", "transfer", "defense_sport", "record_sport", "medal"),
    verbs=("scores", "defends", "wins", "loses", "drafts", "trains",
           "tackles", "sprints", "qualifies", "competes"),
    adjectives=("defensive", "offensive", "undefeated", "veteran",
                "amateur", "professional", "olympic", "seasonal"),
    description="sports reporting",
))

COOKING = _register(DomainSpec(
    name="cooking",
    nouns=("recipe", "oven", "dough", "sauce", "spice", "skillet",
           "marinade", "garnish", "broth", "pastry", "fillet", "whisk",
           "ingredient", "seasoning", "glaze", "simmer_pot"),
    verbs=("bakes", "simmers", "whisks", "marinates", "roasts", "sautes",
           "garnishes", "kneads", "caramelizes", "seasons"),
    adjectives=("savory", "crispy", "tender", "zesty", "creamy",
                "smoked", "braised", "aromatic"),
    description="recipes and culinary writing",
))

TRAVEL = _register(DomainSpec(
    name="travel",
    nouns=("itinerary", "passport", "hostel", "voyage", "landmark",
           "excursion", "visa", "luggage", "terminal", "souvenir",
           "expedition", "resort", "ferry", "backpack", "customs", "layover"),
    verbs=("travels", "books", "explores", "departs", "arrives",
           "boards", "tours", "hikes", "navigates", "checks_in"),
    adjectives=("scenic", "remote", "coastal", "historic", "tropical",
                "bustling", "tranquil", "exotic"),
    description="travel guides and trip reports",
))

#: Canonical ordering of all registered domains.
ALL_DOMAINS: Tuple[DomainSpec, ...] = tuple(_DOMAIN_TABLE.values())
DOMAIN_NAMES: Tuple[str, ...] = tuple(_DOMAIN_TABLE.keys())


def get_domain(name: str) -> DomainSpec:
    """Look up a registered domain by name."""
    try:
        return _DOMAIN_TABLE[name]
    except KeyError:
        raise ConfigError(
            f"unknown domain {name!r}; known: {sorted(_DOMAIN_TABLE)}"
        ) from None


def domain_index(name: str) -> int:
    """Stable integer label for a domain (classification target)."""
    return DOMAIN_NAMES.index(get_domain(name).name)
