"""Dataset objects: materialized training data with identity and splits.

A :class:`TextDataset` couples encoded token matrices with labels and a
content digest.  The digest is what dataset citation, dataset search,
and the registry's lineage tracking key on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.data.corpus import CorpusGenerator, Document
from repro.data.domains import DOMAIN_NAMES, domain_index
from repro.data.tokenizer import Tokenizer
from repro.data.vocab import Vocabulary, build_default_vocabulary
from repro.utils.hashing import array_digest, combine_digests


@dataclass
class TextDataset:
    """Encoded, labelled text data.

    Attributes
    ----------
    tokens:
        ``(n, seq_len)`` int64 matrix (0 = padding).
    labels:
        ``(n,)`` int labels (domain indices for domain classification).
    domains:
        Human-readable domain name per example.
    name:
        Registry name (unique within a registry).
    """

    tokens: np.ndarray
    labels: np.ndarray
    domains: List[str]
    name: str = "unnamed"
    meta: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.tokens = np.asarray(self.tokens, dtype=np.int64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if len(self.tokens) != len(self.labels) or len(self.tokens) != len(self.domains):
            raise ConfigError(
                f"dataset {self.name!r}: tokens ({len(self.tokens)}), labels "
                f"({len(self.labels)}), domains ({len(self.domains)}) must align"
            )

    def __len__(self) -> int:
        return len(self.tokens)

    @property
    def seq_len(self) -> int:
        return self.tokens.shape[1]

    def content_digest(self) -> str:
        """Stable digest of the dataset contents (not the name)."""
        return combine_digests([array_digest(self.tokens), array_digest(self.labels)])

    def domain_histogram(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for domain in self.domains:
            counts[domain] = counts.get(domain, 0) + 1
        return counts

    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "TextDataset":
        idx = np.asarray(indices)
        return TextDataset(
            tokens=self.tokens[idx].copy(),
            labels=self.labels[idx].copy(),
            domains=[self.domains[i] for i in idx],
            name=name or f"{self.name}/subset",
            meta=dict(self.meta),
        )

    def split(
        self, train_fraction: float, seed: int = 0
    ) -> Tuple["TextDataset", "TextDataset"]:
        """Deterministic shuffled train/test split."""
        if not 0.0 < train_fraction < 1.0:
            raise ConfigError(f"train_fraction must be in (0, 1), got {train_fraction}")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        cut = int(round(train_fraction * len(self)))
        return (
            self.subset(order[:cut], name=f"{self.name}/train"),
            self.subset(order[cut:], name=f"{self.name}/test"),
        )


def make_domain_dataset(
    domain_names: Sequence[str],
    docs_per_domain: int,
    seq_len: int = 32,
    seed: int = 0,
    tokenizer: Optional[Tokenizer] = None,
    name: Optional[str] = None,
    sentences_per_doc: int = 4,
    mixture_noise: float = 0.05,
) -> TextDataset:
    """Build a domain-classification dataset over the given domains."""
    if not domain_names:
        raise ConfigError("domain_names must be non-empty")
    tokenizer = tokenizer or Tokenizer(build_default_vocabulary())
    generator = CorpusGenerator(seed=seed, mixture_noise=mixture_noise)
    documents = generator.generate_mixed_corpus(
        domain_names, docs_per_domain, sentences_per_doc=sentences_per_doc
    )
    tokens = tokenizer.encode_documents(documents, max_length=seq_len)
    labels = np.array([domain_index(doc.domain) for doc in documents], dtype=np.int64)
    return TextDataset(
        tokens=tokens,
        labels=labels,
        domains=[doc.domain for doc in documents],
        name=name or f"domains[{','.join(domain_names)}]-s{seed}",
        meta={"seed": seed, "docs_per_domain": docs_per_domain, "seq_len": seq_len},
    )


def make_lm_sequences(
    domain_names: Sequence[str],
    docs_per_domain: int,
    seq_len: int = 24,
    seed: int = 0,
    tokenizer: Optional[Tokenizer] = None,
) -> TextDataset:
    """Build fixed-length next-token-prediction sequences.

    Sequences start with ``<bos>``; documents shorter than ``seq_len``
    are padded with ``<eos>`` then ``<pad>`` (pad positions are ignored
    by the LM loss via target ``-1`` handling upstream).
    """
    tokenizer = tokenizer or Tokenizer(build_default_vocabulary())
    generator = CorpusGenerator(seed=seed)
    documents = generator.generate_mixed_corpus(domain_names, docs_per_domain)
    sequences = []
    for doc in documents:
        ids = tokenizer.encode(doc.tokens, add_special=True)
        sequences.append(ids)
    tokens = tokenizer.pad_batch(sequences, max_length=seq_len)
    labels = np.array([domain_index(doc.domain) for doc in documents], dtype=np.int64)
    return TextDataset(
        tokens=tokens,
        labels=labels,
        domains=[doc.domain for doc in documents],
        name=f"lm[{','.join(domain_names)}]-s{seed}",
        meta={"seed": seed, "purpose": "language_modeling"},
    )
