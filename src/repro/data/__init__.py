"""Synthetic data substrate: domains, corpora, tokenization, datasets."""

from repro.data.domains import (
    ALL_DOMAINS,
    DOMAIN_NAMES,
    DomainSpec,
    domain_index,
    get_domain,
)
from repro.data.vocab import Vocabulary, build_default_vocabulary
from repro.data.corpus import CorpusGenerator, Document
from repro.data.tokenizer import Tokenizer
from repro.data.datasets import TextDataset, make_domain_dataset, make_lm_sequences
from repro.data.derivation import (
    DatasetDerivation,
    augment_with_noise,
    filter_by_domain,
    merge_datasets,
    sample_dataset,
)
from repro.data.registry import DatasetRegistry
from repro.data.probes import (
    ProbeSet,
    make_feature_probes,
    make_lm_prompts,
    make_text_probes,
)

__all__ = [
    "ALL_DOMAINS", "DOMAIN_NAMES", "DomainSpec", "domain_index", "get_domain",
    "Vocabulary", "build_default_vocabulary",
    "CorpusGenerator", "Document",
    "Tokenizer",
    "TextDataset", "make_domain_dataset", "make_lm_sequences",
    "DatasetDerivation", "augment_with_noise", "filter_by_domain",
    "merge_datasets", "sample_dataset",
    "DatasetRegistry",
    "ProbeSet", "make_feature_probes", "make_lm_prompts", "make_text_probes",
]
