"""Synthetic multi-domain corpus generation.

Documents are produced from grammatical templates instantiated with
domain content words, so that (a) documents from different domains have
strongly separable token distributions, and (b) there is enough
sequential structure that a small language model learns nontrivial
next-token statistics.  This stands in for the natural corpora (legal
texts, clinical notes, C4, ...) the paper's lakes assume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.data.domains import (
    DomainSpec,
    SHARED_CONNECTIVES,
    SHARED_DETERMINERS,
    SHARED_VERBS,
    get_domain,
)
from repro.utils.rng import derive_rng

#: Sentence templates; slot names index into word pools.
_TEMPLATES = (
    ("det", "adj", "noun", "verb", "det", "noun"),
    ("det", "noun", "verb", "det", "adj", "noun"),
    ("det", "noun", "aux", "adj", "conn", "det", "noun", "verb"),
    ("det", "adj", "noun", "aux", "verb", "det", "noun"),
    ("det", "noun", "conn", "det", "noun", "verb", "det", "adj", "noun"),
)


@dataclass
class Document:
    """A generated document: tokens plus its generation provenance."""

    tokens: List[str]
    domain: str
    doc_id: str = ""
    meta: Dict = field(default_factory=dict)

    def text(self) -> str:
        return " ".join(self.tokens)

    def __len__(self) -> int:
        return len(self.tokens)


class CorpusGenerator:
    """Deterministic generator of domain-labelled documents.

    Parameters
    ----------
    seed:
        Top-level seed; all randomness derives from it.
    mixture_noise:
        Probability that a content slot is filled from a random *other*
        domain, modelling topical bleed-through between real corpora.
    """

    def __init__(self, seed: int = 0, mixture_noise: float = 0.05):
        if not 0.0 <= mixture_noise < 1.0:
            raise ConfigError(f"mixture_noise must be in [0, 1), got {mixture_noise}")
        self.seed = seed
        self.mixture_noise = mixture_noise

    def _pools(self, domain: DomainSpec) -> Dict[str, Sequence[str]]:
        return {
            "det": SHARED_DETERMINERS,
            "conn": SHARED_CONNECTIVES,
            "aux": SHARED_VERBS,
            "noun": domain.nouns,
            "verb": domain.verbs,
            "adj": domain.adjectives,
        }

    def generate_document(
        self,
        domain_name: str,
        num_sentences: int,
        rng: Optional[np.random.Generator] = None,
        noise_domains: Optional[Sequence[str]] = None,
    ) -> Document:
        """Generate one document of ``num_sentences`` template sentences."""
        if num_sentences <= 0:
            raise ConfigError(f"num_sentences must be positive, got {num_sentences}")
        domain = get_domain(domain_name)
        rng = rng if rng is not None else derive_rng(self.seed, f"doc:{domain_name}")
        pools = self._pools(domain)
        noise_pool_domains = [
            get_domain(d) for d in (noise_domains or []) if d != domain_name
        ]

        tokens: List[str] = []
        for _ in range(num_sentences):
            template = _TEMPLATES[rng.integers(len(_TEMPLATES))]
            for slot in template:
                pool = pools[slot]
                if (
                    slot in ("noun", "verb", "adj")
                    and noise_pool_domains
                    and rng.random() < self.mixture_noise
                ):
                    other = noise_pool_domains[rng.integers(len(noise_pool_domains))]
                    pool = self._pools(other)[slot]
                tokens.append(pool[rng.integers(len(pool))])
        return Document(tokens=tokens, domain=domain_name)

    def generate_corpus(
        self,
        domain_name: str,
        num_documents: int,
        sentences_per_doc: int = 4,
        noise_domains: Optional[Sequence[str]] = None,
    ) -> List[Document]:
        """Generate a labelled corpus for one domain."""
        rng = derive_rng(self.seed, f"corpus:{domain_name}:{num_documents}")
        documents = []
        for i in range(num_documents):
            doc = self.generate_document(
                domain_name, sentences_per_doc, rng=rng, noise_domains=noise_domains
            )
            doc.doc_id = f"{domain_name}-{self.seed}-{i:05d}"
            documents.append(doc)
        return documents

    def generate_mixed_corpus(
        self,
        domain_names: Sequence[str],
        docs_per_domain: int,
        sentences_per_doc: int = 4,
        cross_noise: bool = True,
    ) -> List[Document]:
        """Corpus covering several domains, round-robin ordered."""
        corpora = [
            self.generate_corpus(
                name,
                docs_per_domain,
                sentences_per_doc,
                noise_domains=list(domain_names) if cross_noise else None,
            )
            for name in domain_names
        ]
        mixed: List[Document] = []
        for i in range(docs_per_domain):
            for corpus in corpora:
                mixed.append(corpus[i])
        return mixed
