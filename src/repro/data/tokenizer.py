"""Tokenizer: documents/strings -> fixed-length id arrays."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.data.corpus import Document
from repro.data.vocab import Vocabulary


class Tokenizer:
    """Encodes token streams against a :class:`Vocabulary`.

    Provides both ragged encoding (lists of ids) and the padded/truncated
    matrix form models consume.
    """

    def __init__(self, vocabulary: Vocabulary):
        self.vocabulary = vocabulary

    @property
    def vocab_size(self) -> int:
        return len(self.vocabulary)

    def encode(self, tokens: Sequence[str], add_special: bool = False) -> List[int]:
        ids = self.vocabulary.encode(tokens)
        if add_special:
            ids = [self.vocabulary.bos_id] + ids + [self.vocabulary.eos_id]
        return ids

    def encode_text(self, text: str, add_special: bool = False) -> List[int]:
        return self.encode(text.split(), add_special=add_special)

    def decode(self, ids: Sequence[int], skip_special: bool = True) -> List[str]:
        tokens = self.vocabulary.decode(list(ids))
        if skip_special:
            specials = {"<pad>", "<bos>", "<eos>"}
            tokens = [t for t in tokens if t not in specials]
        return tokens

    def pad_batch(
        self,
        id_lists: Sequence[Sequence[int]],
        max_length: int,
        pad_id: Optional[int] = None,
    ) -> np.ndarray:
        """Pad/truncate ragged id lists into an ``(n, max_length)`` matrix."""
        if max_length <= 0:
            raise ConfigError(f"max_length must be positive, got {max_length}")
        pad = self.vocabulary.pad_id if pad_id is None else pad_id
        batch = np.full((len(id_lists), max_length), pad, dtype=np.int64)
        for row, ids in enumerate(id_lists):
            clipped = list(ids)[:max_length]
            batch[row, : len(clipped)] = clipped
        return batch

    def encode_documents(
        self, documents: Sequence[Document], max_length: int, add_special: bool = False
    ) -> np.ndarray:
        """Encode documents into a padded id matrix."""
        return self.pad_batch(
            [self.encode(doc.tokens, add_special=add_special) for doc in documents],
            max_length,
        )
