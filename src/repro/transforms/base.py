"""Transform records and shared model-surgery helpers.

A transform takes one or more parent models and produces a child model
plus a :class:`TransformRecord` describing the operation — the payload
attached to version-graph edges ("The edges can describe the
transformation", §3 Model Versioning).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.module import Module
from repro.nn.models import build_model

#: Canonical transform kind names (used by edge classification and docs).
TRANSFORM_KINDS = (
    "finetune",
    "lora",
    "edit",
    "distill",
    "prune",
    "quantize",
    "merge",
    "stitch",
    "preference",
)


@dataclass(frozen=True)
class TransformRecord:
    """Description of how a child model was derived from its parent(s)."""

    kind: str
    params: Dict = field(default_factory=dict)
    dataset_digest: Optional[str] = None
    dataset_name: Optional[str] = None
    seed: int = 0

    def describe(self) -> str:
        data = f" on {self.dataset_name}" if self.dataset_name else ""
        return f"{self.kind}{data} {self.params}"


def clone_model(model: Module) -> Module:
    """Deep-copy a model: same architecture spec, same weights, new object.

    Uses the spec/build round trip when available (keeps the clone
    rebuildable from stored metadata), falling back to ``copy.deepcopy``
    for ad-hoc modules.
    """
    spec = getattr(model, "architecture_spec", None)
    if spec is None:
        return copy.deepcopy(model)
    clone = build_model(spec())
    clone.load_state_dict(model.state_dict())
    clone.eval()
    return clone


def weight_delta(
    parent_state: Dict[str, np.ndarray], child_state: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """Per-parameter difference ``child - parent`` over shared names."""
    return {
        name: child_state[name] - parent_state[name]
        for name in parent_state
        if name in child_state and child_state[name].shape == parent_state[name].shape
    }


def flatten_state(state: Dict[str, np.ndarray]) -> np.ndarray:
    """Deterministic flat vector of a state dict (sorted by name)."""
    return np.concatenate([state[name].ravel() for name in sorted(state)])
