"""Magnitude pruning: zero out the smallest-magnitude weights."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Module
from repro.transforms.base import TransformRecord, clone_model


def prune_model(
    model: Module, sparsity: float = 0.5, seed: int = 0
) -> Tuple[Module, TransformRecord]:
    """Globally prune ``sparsity`` fraction of weights by magnitude.

    Biases and normalization parameters (1-D) are left intact; only
    matrices are pruned, matching standard practice.
    """
    if not 0.0 < sparsity < 1.0:
        raise ConfigError(f"sparsity must be in (0, 1), got {sparsity}")
    child = clone_model(model)
    state = child.state_dict()
    matrix_names = [name for name, arr in state.items() if arr.ndim >= 2]
    if not matrix_names:
        raise ConfigError("model has no weight matrices to prune")
    all_magnitudes = np.concatenate([np.abs(state[n]).ravel() for n in matrix_names])
    threshold = np.quantile(all_magnitudes, sparsity)
    for name in matrix_names:
        arr = state[name]
        state[name] = np.where(np.abs(arr) <= threshold, 0.0, arr)
    child.load_state_dict(state)
    record = TransformRecord(kind="prune", params={"sparsity": sparsity}, seed=seed)
    return child, record
