"""Model derivation operators — the edges of the lake's version graphs."""

from repro.transforms.base import (
    TRANSFORM_KINDS,
    TransformRecord,
    clone_model,
    flatten_state,
    weight_delta,
)
from repro.transforms.finetune import (
    finetune_classifier,
    finetune_language_model,
    preference_tune,
)
from repro.transforms.lora import LoRALinear, lora_adapt_classifier
from repro.transforms.editing import edit_classifier
from repro.transforms.distill import distill_classifier
from repro.transforms.prune import prune_model
from repro.transforms.quantize import quantize_model
from repro.transforms.merge import merge_models
from repro.transforms.stitch import StitchedTextClassifier, stitch_classifiers

__all__ = [
    "TRANSFORM_KINDS", "TransformRecord", "clone_model", "flatten_state",
    "weight_delta",
    "finetune_classifier", "finetune_language_model", "preference_tune",
    "LoRALinear", "lora_adapt_classifier",
    "edit_classifier",
    "distill_classifier",
    "prune_model",
    "quantize_model",
    "merge_models",
    "StitchedTextClassifier", "stitch_classifiers",
]
