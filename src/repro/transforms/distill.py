"""Knowledge distillation: train a (possibly smaller) student on teacher outputs."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.data.datasets import TextDataset
from repro.errors import TransformError
from repro.nn.losses import kl_divergence
from repro.nn.models import TextClassifier, build_model
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.train import iterate_minibatches
from repro.transforms.base import TransformRecord
from repro.utils.rng import derive_rng


def distill_classifier(
    teacher: Module,
    transfer_set: TextDataset,
    student_spec: Optional[dict] = None,
    epochs: int = 10,
    lr: float = 5e-3,
    temperature: float = 2.0,
    seed: int = 0,
    batch_size: int = 32,
) -> Tuple[Module, TransformRecord]:
    """Distill ``teacher`` into a student trained on soft targets.

    ``student_spec`` defaults to the teacher's architecture (self-
    distillation into a fresh init); pass a smaller spec to compress.
    The child's weights share *no* initialization with the teacher, so
    distillation edges are the hard case for weight-based version
    recovery — exactly why the lake also needs behavioral signals.
    """
    spec = dict(student_spec or teacher.architecture_spec())
    student = build_model(spec, seed=seed + 17)

    logits = teacher(transfer_set.tokens).data / temperature
    shifted = logits - logits.max(axis=-1, keepdims=True)
    soft_targets = np.exp(shifted)
    soft_targets /= soft_targets.sum(axis=-1, keepdims=True)

    opt = Adam(student.parameters(), lr=lr)
    rng = derive_rng(seed, "distill")
    student.train()
    for _ in range(epochs):
        for batch_idx in iterate_minibatches(len(transfer_set), batch_size, rng):
            opt.zero_grad()
            student_logits = student(transfer_set.tokens[batch_idx])
            loss = kl_divergence(student_logits, soft_targets[batch_idx])
            loss.backward()
            opt.step()
    student.eval()

    record = TransformRecord(
        kind="distill",
        params={
            "epochs": epochs,
            "lr": lr,
            "temperature": temperature,
            "student_family": spec.get("family"),
        },
        dataset_digest=transfer_set.content_digest(),
        dataset_name=transfer_set.name,
        seed=seed,
    )
    return student, record
