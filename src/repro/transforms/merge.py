"""Model merging: weight-space interpolation of two parents ("model soup")."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigError, IncompatibleModelsError
from repro.nn.module import Module
from repro.transforms.base import TransformRecord, clone_model


def merge_models(
    first: Module, second: Module, alpha: float = 0.5, seed: int = 0
) -> Tuple[Module, TransformRecord]:
    """Interpolate two same-architecture models: ``alpha*a + (1-alpha)*b``.

    Produces a child with *two* parents — the case the paper highlights
    as hard for single-base version recovery ("limited to known models
    with a single base version").
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must be in (0, 1), got {alpha}")
    state_a = first.state_dict()
    state_b = second.state_dict()
    if set(state_a) != set(state_b):
        raise IncompatibleModelsError(
            "cannot merge: parameter names differ "
            f"({sorted(set(state_a) ^ set(state_b))[:4]} ...)"
        )
    for name in state_a:
        if state_a[name].shape != state_b[name].shape:
            raise IncompatibleModelsError(
                f"cannot merge: parameter {name!r} shapes differ "
                f"{state_a[name].shape} vs {state_b[name].shape}"
            )
    child = clone_model(first)
    merged = {
        name: alpha * state_a[name] + (1.0 - alpha) * state_b[name]
        for name in state_a
    }
    child.load_state_dict(merged)
    record = TransformRecord(kind="merge", params={"alpha": alpha}, seed=seed)
    return child, record
