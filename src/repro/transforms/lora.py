"""LoRA: low-rank adaptation of linear layers (Hu et al., 2022).

Frozen base weights plus trainable low-rank factors ``A @ B``; after
adaptation the factors are merged back into dense weights for storage.
The merged child therefore differs from its parent by an (at most)
rank-``r`` matrix on each adapted layer — the statistical signature the
versioning edge classifier looks for.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.datasets import TextDataset
from repro.errors import ConfigError, TransformError
from repro.nn.autograd import Tensor
from repro.nn.layers import Linear
from repro.nn.losses import cross_entropy
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.optim import Adam
from repro.nn.train import iterate_minibatches
from repro.transforms.base import TransformRecord, clone_model
from repro.utils.rng import derive_rng


class LoRALinear(Module):
    """A Linear layer with frozen base weight and trainable low-rank delta."""

    def __init__(self, base: Linear, rank: int, seed: int = 0, alpha: float = 1.0):
        super().__init__()
        if rank <= 0 or rank > min(base.in_features, base.out_features):
            raise ConfigError(
                f"LoRA rank must be in [1, {min(base.in_features, base.out_features)}], "
                f"got {rank}"
            )
        rng = derive_rng(seed, "lora")
        self.in_features = base.in_features
        self.out_features = base.out_features
        self.rank = rank
        self.alpha = alpha
        # Frozen copy of the base weight; bias stays trainable (BitFit-style,
        # standard in LoRA implementations and needed to move units out of
        # dead ReLU regions). The weight delta stays exactly rank <= r.
        self._base_weight = Tensor(base.weight.data.copy())
        self._base_bias = (
            Parameter(base.bias.data.copy()) if base.bias is not None else None
        )
        # Standard LoRA init: A ~ Kaiming-scale, B = 0, so the delta starts
        # at 0 but gradients through the product are well-conditioned.
        self.lora_a = Parameter(
            rng.normal(0.0, 1.0 / np.sqrt(base.in_features), size=(base.in_features, rank))
        )
        self.lora_b = Parameter(np.zeros((rank, base.out_features)))

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self._base_weight + (x @ self.lora_a) @ self.lora_b * self.alpha
        if self._base_bias is not None:
            out = out + self._base_bias
        return out

    def merged_weight(self) -> np.ndarray:
        """Dense weight with the low-rank delta baked in."""
        return self._base_weight.data + self.alpha * (self.lora_a.data @ self.lora_b.data)


def _swap_linears(module: Module, rank: int, seed: int, adapted: List[Tuple[Module, str, LoRALinear]]) -> None:
    """Recursively replace Linear children with LoRALinear wrappers."""
    for name, value in list(vars(module).items()):
        if isinstance(value, Linear):
            max_rank = min(value.in_features, value.out_features)
            wrapper = LoRALinear(value, rank=min(rank, max_rank), seed=seed + len(adapted))
            setattr(module, name, wrapper)
            adapted.append((module, name, wrapper))
        elif isinstance(value, LoRALinear):
            continue
        elif isinstance(value, Module):
            _swap_linears(value, rank, seed, adapted)
        elif isinstance(value, ModuleList):
            for i, child in enumerate(value):
                if isinstance(child, Linear):
                    max_rank = min(child.in_features, child.out_features)
                    wrapper = LoRALinear(
                        child, rank=min(rank, max_rank), seed=seed + len(adapted)
                    )
                    value._modules[i] = wrapper
                    adapted.append((value, str(i), wrapper))
                else:
                    _swap_linears(child, rank, seed, adapted)


def lora_adapt_classifier(
    model: Module,
    dataset: TextDataset,
    rank: int = 2,
    epochs: int = 3,
    lr: float = 5e-3,
    seed: int = 0,
    batch_size: int = 32,
) -> Tuple[Module, TransformRecord]:
    """LoRA-adapt every Linear layer of a classifier, then merge.

    Only the low-rank factors (and no base weights) receive gradients;
    the returned child is a plain dense model with merged weights, so it
    is storable and comparable like any other lake model.
    """
    working = clone_model(model)
    adapted: List[Tuple[Module, str, LoRALinear]] = []
    _swap_linears(working, rank, seed, adapted)
    if not adapted:
        raise TransformError("model has no Linear layers to LoRA-adapt")

    trainable = []
    for _, _, wrapper in adapted:
        trainable.extend([wrapper.lora_a, wrapper.lora_b])
        if wrapper._base_bias is not None:
            trainable.append(wrapper._base_bias)
    opt = Adam(trainable, lr=lr)
    rng = derive_rng(seed, "lora_train")
    working.train()
    for _ in range(epochs):
        for batch_idx in iterate_minibatches(len(dataset), batch_size, rng):
            opt.zero_grad()
            loss = cross_entropy(working(dataset.tokens[batch_idx]), dataset.labels[batch_idx])
            loss.backward()
            opt.step()
    working.eval()

    # Merge: rebuild a clean dense model and write adapted weights in.
    child = clone_model(model)
    merged_state = model.state_dict()
    # Walk the working model in parallel with the clean child to map names.
    _write_merged(working, "", merged_state)
    child.load_state_dict(merged_state)
    record = TransformRecord(
        kind="lora",
        params={"rank": rank, "epochs": epochs, "lr": lr},
        dataset_digest=dataset.content_digest(),
        dataset_name=dataset.name,
        seed=seed,
    )
    return child, record


def _write_merged(module: Module, prefix: str, state: Dict[str, np.ndarray]) -> None:
    """Write merged LoRA weights into ``state`` under original names."""
    for name, value in vars(module).items():
        full = f"{prefix}{name}"
        if isinstance(value, LoRALinear):
            state[f"{full}.weight"] = value.merged_weight()
            if value._base_bias is not None:
                state[f"{full}.bias"] = value._base_bias.data.copy()
        elif isinstance(value, Module):
            _write_merged(value, f"{full}.", state)
        elif isinstance(value, ModuleList):
            for i, child in enumerate(value):
                if isinstance(child, LoRALinear):
                    state[f"{full}.{i}.weight"] = child.merged_weight()
                    if child._base_bias is not None:
                        state[f"{full}.{i}.bias"] = child._base_bias.data.copy()
                else:
                    _write_merged(child, f"{full}.{i}.", state)
