"""Model editing: localized rank-one weight updates (ROME-style, lite).

Model editing updates specific behaviors "without retraining the entire
model" (§4 Model Versions).  Here we implement the classifier analogue
of a fact edit: force a chosen probe input to map to a chosen class via
a closed-form rank-one update to the final linear layer, leaving other
behavior minimally disturbed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import TransformError
from repro.nn.autograd import Tensor
from repro.nn.layers import Linear
from repro.nn.module import Module, ModuleList
from repro.transforms.base import TransformRecord, clone_model


def _final_linear(module: Module) -> Linear:
    """The last Linear layer in forward order (the classification head)."""
    last: Optional[Linear] = None
    for _, sub in module.named_modules():
        if isinstance(sub, Linear):
            last = sub
    if last is None:
        raise TransformError("model has no Linear layer to edit")
    return last


def _penultimate_features(model: Module, tokens: np.ndarray, head: Linear) -> np.ndarray:
    """Input features of the head layer for the given input.

    Computed by temporarily hooking the head: we capture its input
    during a normal forward pass, so the routine works for any model
    whose head is a Linear.
    """
    captured = {}
    original_forward = head.forward

    def capturing_forward(x: Tensor) -> Tensor:
        captured["features"] = x.data.copy()
        return original_forward(x)

    head.forward = capturing_forward  # type: ignore[method-assign]
    try:
        model(tokens)
    finally:
        head.forward = original_forward  # type: ignore[method-assign]
    features = captured["features"]
    return features.reshape(-1, features.shape[-1])


def edit_classifier(
    model: Module,
    probe_tokens: np.ndarray,
    target_class: int,
    margin: float = 2.0,
    seed: int = 0,
    preserve_tokens: Optional[np.ndarray] = None,
    ridge: float = 1e-3,
) -> Tuple[Module, TransformRecord]:
    """Rank-one edit making ``probe_tokens`` classify as ``target_class``.

    Let ``h`` be the head's input features for the probe and ``W`` the
    head weight.  We apply ``W += u (t - y)^T / (h . u)`` where ``y`` is
    the current logit vector and ``t`` the target logits (current logits
    with the target class raised ``margin`` above the best competitor).

    The update direction ``u`` is covariance-corrected (ROME-style):
    when ``preserve_tokens`` is given, ``u = C^{-1} h`` with ``C`` the
    (ridge-regularized) second-moment matrix of their features, which
    steers the edit away from directions other inputs use — keeping the
    edit exact for the probe while minimizing collateral behavior
    change.  Without a preservation set, ``u = h`` (plain rank-one).
    """
    child = clone_model(model)
    head = _final_linear(child)
    probe = np.asarray(probe_tokens)
    if probe.ndim == 1:
        probe = probe[None, :]
    features = _penultimate_features(child, probe, head).mean(axis=0)

    logits = features @ head.weight.data
    if head.bias is not None:
        logits = logits + head.bias.data
    num_classes = logits.shape[-1]
    if not 0 <= target_class < num_classes:
        raise TransformError(
            f"target_class {target_class} out of range for {num_classes} classes"
        )
    target = logits.copy()
    competitor = np.max(np.delete(logits, target_class))
    target[target_class] = competitor + margin

    if preserve_tokens is not None:
        preserve = _penultimate_features(child, np.asarray(preserve_tokens), head)
        moment = preserve.T @ preserve / len(preserve)
        moment += ridge * np.trace(moment) / len(moment) * np.eye(len(moment))
        direction = np.linalg.solve(moment, features)
    else:
        direction = features
    alignment = float(features @ direction)
    if abs(alignment) < 1e-12:
        raise TransformError("probe produced a degenerate feature vector; cannot edit")
    delta = np.outer(direction, target - logits) / alignment
    head.weight.data = head.weight.data + delta

    record = TransformRecord(
        kind="edit",
        params={
            "target_class": int(target_class),
            "margin": margin,
            "probe_digest_len": int(probe.size),
        },
        seed=seed,
    )
    return child, record
