"""Uniform weight quantization (simulated: values snap to a k-bit grid)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Module
from repro.transforms.base import TransformRecord, clone_model


def quantize_model(
    model: Module, bits: int = 6, seed: int = 0
) -> Tuple[Module, TransformRecord]:
    """Quantize every parameter tensor to a symmetric ``bits``-bit grid.

    Per-tensor scale = max|w| / (2^(bits-1) - 1); values are rounded to
    the nearest grid point and de-quantized back to float, simulating
    the weight distribution of a quantized release artifact.
    """
    if not 2 <= bits <= 16:
        raise ConfigError(f"bits must be in [2, 16], got {bits}")
    child = clone_model(model)
    state = child.state_dict()
    levels = 2 ** (bits - 1) - 1
    for name, arr in state.items():
        max_abs = np.max(np.abs(arr))
        if max_abs == 0:
            continue
        scale = max_abs / levels
        state[name] = np.round(arr / scale) * scale
    child.load_state_dict(state)
    record = TransformRecord(kind="quantize", params={"bits": bits}, seed=seed)
    return child, record
