"""Model stitching: combine the front of one model with the head of another.

Stitching "involves altering f* by combining the architectures of two
or more models to create a hybrid model" (Lenc & Vedaldi via §4).  For
text classifiers we take model A's embedding, model B's MLP head, and
train a small linear adapter between their (possibly different) widths.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.data.datasets import TextDataset
from repro.errors import IncompatibleModelsError
from repro.nn.autograd import Tensor
from repro.nn.layers import Linear
from repro.nn.losses import cross_entropy
from repro.nn.models import TextClassifier, register_model_family
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.train import iterate_minibatches
from repro.transforms.base import TransformRecord, clone_model
from repro.utils.rng import derive_rng


class StitchedTextClassifier(Module):
    """Embedding of parent A + adapter + head of parent B."""

    PAD_ID = 0

    def __init__(
        self,
        vocab_size: int,
        num_classes: int,
        front_dim: int,
        back_dim: int,
        front_hidden: tuple = (32,),
        back_hidden: tuple = (32,),
        seed: int = 0,
    ):
        super().__init__()
        self.vocab_size = vocab_size
        self.num_classes = num_classes
        self.front_dim = front_dim
        self.back_dim = back_dim
        self.front_hidden = tuple(front_hidden)
        self.back_hidden = tuple(back_hidden)
        # Parts are real TextClassifier submodules so weights transplant 1:1.
        self._front = TextClassifier(
            vocab_size, num_classes, dim=front_dim, hidden=front_hidden, seed=seed
        )
        self._back = TextClassifier(
            vocab_size, num_classes, dim=back_dim, hidden=back_hidden, seed=seed + 1
        )
        self.front_embedding = self._front.embedding
        self.adapter = Linear(front_dim, back_dim, seed=seed + 2)
        self.back_head = self._back.head
        # Drop the unused halves so they do not appear in the state dict.
        del self._front
        del self._back

    def architecture_spec(self) -> Dict:
        return {
            "family": "stitched_text_classifier",
            "vocab_size": self.vocab_size,
            "num_classes": self.num_classes,
            "front_dim": self.front_dim,
            "back_dim": self.back_dim,
            "front_hidden": list(self.front_hidden),
            "back_hidden": list(self.back_hidden),
        }

    def embed_tokens(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        embedded = self.front_embedding(tokens)
        mask = (tokens != self.PAD_ID).astype(np.float64)
        counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        pooled = (embedded * mask[:, :, None]).sum(axis=1) * Tensor(1.0 / counts)
        return self.adapter(pooled)

    def forward(self, tokens: np.ndarray) -> Tensor:
        return self.back_head(self.embed_tokens(tokens))

    def predict_proba(self, tokens: np.ndarray) -> np.ndarray:
        return self.forward(tokens).softmax(axis=-1).data

    def predict(self, tokens: np.ndarray) -> np.ndarray:
        return self.predict_proba(tokens).argmax(axis=-1)


def _build_stitched(spec: Dict, seed: int = 0) -> StitchedTextClassifier:
    return StitchedTextClassifier(
        vocab_size=spec["vocab_size"],
        num_classes=spec["num_classes"],
        front_dim=spec["front_dim"],
        back_dim=spec["back_dim"],
        front_hidden=tuple(spec.get("front_hidden", (32,))),
        back_hidden=tuple(spec.get("back_hidden", (32,))),
        seed=seed,
    )


register_model_family("stitched_text_classifier", _build_stitched)


def stitch_classifiers(
    front: TextClassifier,
    back: TextClassifier,
    adapter_data: TextDataset,
    adapter_epochs: int = 3,
    lr: float = 5e-3,
    seed: int = 0,
    batch_size: int = 32,
) -> Tuple[StitchedTextClassifier, TransformRecord]:
    """Stitch ``front``'s embedding to ``back``'s head via a trained adapter.

    Only the adapter's parameters are trained; both transplanted halves
    stay frozen, so each parent's weights survive verbatim inside the
    child — detectable by versioning's shared-submatrix analysis.
    """
    if front.vocab_size != back.vocab_size:
        raise IncompatibleModelsError(
            f"vocab sizes differ: {front.vocab_size} vs {back.vocab_size}"
        )
    child = StitchedTextClassifier(
        vocab_size=front.vocab_size,
        num_classes=back.num_classes,
        front_dim=front.dim,
        back_dim=back.dim,
        front_hidden=front.hidden,
        back_hidden=back.hidden,
        seed=seed,
    )
    state = child.state_dict()
    for name, value in front.state_dict().items():
        if name.startswith("embedding."):
            state["front_embedding." + name[len("embedding."):]] = value
    for name, value in back.state_dict().items():
        if name.startswith("head."):
            state["back_head." + name[len("head."):]] = value
    child.load_state_dict(state)

    opt = Adam([self_p for name, self_p in child.named_parameters() if name.startswith("adapter.")], lr=lr)
    rng = derive_rng(seed, "stitch_adapter")
    child.train()
    for _ in range(adapter_epochs):
        for batch_idx in iterate_minibatches(len(adapter_data), batch_size, rng):
            opt.zero_grad()
            loss = cross_entropy(
                child(adapter_data.tokens[batch_idx]), adapter_data.labels[batch_idx]
            )
            loss.backward()
            opt.step()
    child.eval()

    record = TransformRecord(
        kind="stitch",
        params={"adapter_epochs": adapter_epochs, "lr": lr},
        dataset_digest=adapter_data.content_digest(),
        dataset_name=adapter_data.name,
        seed=seed,
    )
    return child, record
