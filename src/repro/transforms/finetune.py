"""Fine-tuning and preference-tuning transforms."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.datasets import TextDataset
from repro.errors import ConfigError
from repro.nn.autograd import Tensor
from repro.nn.losses import cross_entropy
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.train import iterate_minibatches, train_classifier, train_language_model
from repro.transforms.base import TransformRecord, clone_model
from repro.utils.rng import derive_rng


def finetune_classifier(
    model: Module,
    dataset: TextDataset,
    epochs: int = 5,
    lr: float = 5e-3,
    seed: int = 0,
    batch_size: int = 32,
) -> Tuple[Module, TransformRecord]:
    """Continue training a classifier on (possibly new-domain) data."""
    child = clone_model(model)
    train_classifier(
        child, dataset.tokens, dataset.labels,
        epochs=epochs, lr=lr, seed=seed, batch_size=batch_size,
    )
    record = TransformRecord(
        kind="finetune",
        params={"epochs": epochs, "lr": lr},
        dataset_digest=dataset.content_digest(),
        dataset_name=dataset.name,
        seed=seed,
    )
    return child, record


def finetune_language_model(
    model: Module,
    dataset: TextDataset,
    epochs: int = 3,
    lr: float = 3e-3,
    seed: int = 0,
    batch_size: int = 16,
) -> Tuple[Module, TransformRecord]:
    """Continue next-token training of a language model."""
    child = clone_model(model)
    train_language_model(
        child, dataset.tokens, epochs=epochs, lr=lr, seed=seed, batch_size=batch_size
    )
    record = TransformRecord(
        kind="finetune",
        params={"epochs": epochs, "lr": lr, "objective": "lm"},
        dataset_digest=dataset.content_digest(),
        dataset_name=dataset.name,
        seed=seed,
    )
    return child, record


def preference_tune(
    model: Module,
    dataset: TextDataset,
    preferred_domains: Tuple[str, ...],
    preference_weight: float = 3.0,
    epochs: int = 3,
    lr: float = 5e-3,
    seed: int = 0,
    batch_size: int = 32,
) -> Tuple[Module, TransformRecord]:
    """Preference tuning: upweight examples from preferred domains.

    A lightweight stand-in for RLHF-style preference optimization: the
    loss of examples whose domain is preferred is scaled by
    ``preference_weight``, steering behavior toward the preference
    without a reward model.
    """
    if preference_weight <= 0:
        raise ConfigError(f"preference_weight must be positive, got {preference_weight}")
    child = clone_model(model)
    rng = derive_rng(seed, "preference_tune")
    opt = Adam(child.parameters(), lr=lr)
    preferred = set(preferred_domains)
    weights = np.array(
        [preference_weight if d in preferred else 1.0 for d in dataset.domains]
    )
    weights = weights / weights.mean()
    child.train()
    for _ in range(epochs):
        for batch_idx in iterate_minibatches(len(dataset), batch_size, rng):
            opt.zero_grad()
            logits = child(dataset.tokens[batch_idx])
            labels = dataset.labels[batch_idx]
            log_probs = logits.log_softmax(axis=-1)
            picked = log_probs[np.arange(len(labels)), labels]
            loss = -(picked * weights[batch_idx]).mean()
            loss.backward()
            opt.step()
    child.eval()
    record = TransformRecord(
        kind="preference",
        params={
            "preferred_domains": sorted(preferred),
            "preference_weight": preference_weight,
            "epochs": epochs,
            "lr": lr,
        },
        dataset_digest=dataset.content_digest(),
        dataset_name=dataset.name,
        seed=seed,
    )
    return child, record
