"""Registered performance benchmarks behind ``repro bench``.

The heavyweight experiment benchmarks under ``benchmarks/`` answer the
paper's quality questions; this package is the *operational* suite — a
handful of fast, deterministic measurements of the hot paths (lake
generation, search engine builds, index queries) that run on every CI
push and append to the perf trajectory
(:mod:`repro.obs.timeseries`), so "did this PR make the lake slower?"
has a recorded, regression-gated answer.

Benchmarks register through :func:`register_bench`; each is a callable
``fn(mode) -> {metric: value}`` where ``mode`` is ``"full"`` or
``"smoke"``.  Registration carries per-metric tolerances — wall-clock
metrics on shared CI hardware need looser gates than counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

__all__ = ["BenchSpec", "register_bench", "registered_benches"]


@dataclass
class BenchSpec:
    """One registered benchmark and its regression-gate tolerances."""

    name: str
    fn: Callable[[str], Dict[str, float]]
    description: str = ""
    tolerances: Dict[str, float] = field(default_factory=dict)


_REGISTRY: Dict[str, BenchSpec] = {}


def register_bench(
    name: str,
    description: str = "",
    tolerances: Dict[str, float] | None = None,
) -> Callable[[Callable[[str], Dict[str, float]]], Callable[[str], Dict[str, float]]]:
    """Decorator: register ``fn(mode) -> metrics`` under ``name``."""

    def decorate(fn: Callable[[str], Dict[str, float]]):
        _REGISTRY[name] = BenchSpec(
            name=name, fn=fn, description=description,
            tolerances=dict(tolerances or {}),
        )
        return fn

    return decorate


def registered_benches() -> List[BenchSpec]:
    """All registered benchmarks, importing the suite on first use."""
    from repro.perf import suite  # noqa: F401 - registration side effect

    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
