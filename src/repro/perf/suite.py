"""The operational benchmark suite: generation, search, index hot paths.

Every benchmark here is small enough to run on a 1-core CI container in
seconds (``smoke`` mode) while still exercising the real code paths —
actual training, actual engine builds, actual graph walks — so a
regression in any of them is a regression users of the library would
feel.  ``full`` mode scales the same measurements up for workstation
runs.

Wall-clock metrics get generous tolerances (shared CI hardware jitters
by tens of percent); the regression gate is meant to catch the 2x
"someone quadratic-ed the hot loop" class of slip, not 10% noise.
"""

from __future__ import annotations

import tempfile
import time
from typing import Callable, Dict

import numpy as np

from repro.perf import register_bench

#: Allowed worse-direction drift for wall-clock metrics: CI-noise-proof
#: but far below the 2x slips the gate exists to catch.
WALL_CLOCK_TOLERANCE = 1.75

# Sized so every gated wall-clock metric lands well above the
# regression gate's absolute noise floors (~0.05s / 100us): a tinier
# lake measures scheduler jitter, not the code.
_SMOKE_SPEC = dict(
    num_foundations=2, chains_per_foundation=3, max_chain_depth=1,
    docs_per_domain=12, eval_docs_per_domain=5,
    foundation_epochs=6, specialize_epochs=4,
    num_merges=1, num_stitches=0, seed=7,
)

_FULL_SPEC = dict(
    num_foundations=2, chains_per_foundation=4, max_chain_depth=1,
    docs_per_domain=16, eval_docs_per_domain=6,
    foundation_epochs=4, specialize_epochs=3,
    num_merges=1, num_stitches=1, seed=7,
)


def _build_lake(mode: str):
    from repro.lake import LakeSpec, generate_lake

    spec_kwargs = _SMOKE_SPEC if mode == "smoke" else _FULL_SPEC
    return generate_lake(LakeSpec(**spec_kwargs))


def _best_of(rounds: int, sweep: Callable[[], None]) -> float:
    """Minimum wall time over ``rounds`` sweeps — the standard defense
    against scheduler noise when timing sub-second query loops."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        sweep()
        best = min(best, time.perf_counter() - start)
    return best


@register_bench(
    "generate",
    description="lake generation wall time (sequential, tiny spec)",
    tolerances={"generate_seconds": WALL_CLOCK_TOLERANCE,
                "models_per_second": WALL_CLOCK_TOLERANCE},
)
def bench_generate(mode: str) -> Dict[str, float]:
    start = time.perf_counter()
    bundle = _build_lake(mode)
    elapsed = time.perf_counter() - start
    models = len(list(bundle.lake))
    return {
        "generate_seconds": round(elapsed, 3),
        "models": float(models),
        "models_per_second": round(models / elapsed, 3),
    }


@register_bench(
    "search",
    description="search-engine cold/warm builds and query latency",
    tolerances={"cold_build_seconds": WALL_CLOCK_TOLERANCE,
                "warm_build_seconds": WALL_CLOCK_TOLERANCE,
                "query_latency_us": WALL_CLOCK_TOLERANCE,
                "warm_speedup": 2.5},
)
def bench_search(mode: str) -> Dict[str, float]:
    from repro.core.search import SearchEngine
    from repro.data.probes import make_text_probes

    bundle = _build_lake(mode)
    probes = make_text_probes(probes_per_domain=4, seq_len=24)
    queries = ["legal specialist", "medical fine-tuned", "code model"]
    repeats = 3 if mode == "smoke" else 10
    with tempfile.TemporaryDirectory() as cache_dir:
        start = time.perf_counter()
        SearchEngine(bundle.lake, probes, cache_dir=cache_dir)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        engine = SearchEngine(bundle.lake, probes, cache_dir=cache_dir)
        warm = time.perf_counter() - start

        def sweep():
            for query in queries:
                engine.search(query, k=3)

        sweep()  # warm the engine's caches before measuring
        query_seconds = _best_of(repeats, sweep)
    return {
        "cold_build_seconds": round(cold, 3),
        "warm_build_seconds": round(warm, 3),
        "warm_speedup": round(cold / warm, 2) if warm > 0 else float("inf"),
        "query_latency_us": round(query_seconds / len(queries) * 1e6, 1),
    }


@register_bench(
    "shard",
    description="sharded save/lazy-load/fsck vs flat layout, digest parity",
    tolerances={"sharded_save_seconds": WALL_CLOCK_TOLERANCE,
                "lazy_load_seconds": WALL_CLOCK_TOLERANCE,
                "fsck_seconds": WALL_CLOCK_TOLERANCE},
)
def bench_shard(mode: str) -> Dict[str, float]:
    import json
    import os

    from repro.lake import load_lake, save_lake
    from repro.reliability.fsck import fsck_lake

    bundle = _build_lake(mode)
    workers = 1 if mode == "smoke" else 2
    with tempfile.TemporaryDirectory() as root:
        flat_dir = os.path.join(root, "flat")
        shard_dir = os.path.join(root, "sharded")
        save_lake(bundle.lake, flat_dir, sharded=False)
        start = time.perf_counter()
        save_lake(bundle.lake, shard_dir, sharded=True)
        sharded_save = time.perf_counter() - start

        # The layout is pure physics: both saves must describe the same
        # lake, digest for digest.
        digests = []
        for directory in (flat_dir, shard_dir):
            with open(os.path.join(directory, "manifest.json")) as fh:
                digests.append(json.load(fh)["integrity"]["manifest_digest"])
        if digests[0] != digests[1]:
            raise AssertionError(
                f"sharded manifest digest {digests[1]} != flat {digests[0]}"
            )

        start = time.perf_counter()
        lake = load_lake(shard_dir)  # lazy: weights stay on disk, mmapped
        lazy_load = time.perf_counter() - start
        models = len(list(lake))
        # Touch one model end-to-end so the lazy path is actually read.
        first = sorted(record.model_id for record in lake)[0]
        lake.get_model(first, force=True)

        start = time.perf_counter()
        report = fsck_lake(shard_dir, workers=workers)
        fsck = time.perf_counter() - start
        if not report.clean:
            raise AssertionError(
                f"fsck found problems in a freshly saved sharded lake: "
                f"{[f.kind for f in report.findings]}"
            )
    return {
        "models": float(models),
        "sharded_save_seconds": round(sharded_save, 3),
        "lazy_load_seconds": round(lazy_load, 3),
        "fsck_seconds": round(fsck, 3),
        "manifest_digest_identical": 1.0,
    }


@register_bench(
    "serve",
    description="HTTP serving throughput: micro-batched vs per-request",
    tolerances={"batched_qps": WALL_CLOCK_TOLERANCE,
                "unbatched_qps": WALL_CLOCK_TOLERANCE,
                "batch_speedup": 2.0,
                "batched_p99_seconds": WALL_CLOCK_TOLERANCE},
)
def bench_serve(mode: str) -> Dict[str, float]:
    import asyncio
    import http.client
    import json
    import os
    import threading

    from repro.lake import save_lake
    from repro.serve import LakeServer, LakeSnapshot, ServeConfig

    clients = 8
    per_client = 6 if mode == "smoke" else 16
    queries = [
        "legal specialist", "medical fine-tuned", "code model",
        "news summarizer", "legal contract review", "medical triage notes",
        "code completion assistant", "news briefing model",
    ]

    def drill(snapshot, window: float) -> Dict[str, float]:
        """Closed-loop qps and p99 over one in-process server."""
        config = ServeConfig(
            directory=snapshot.directory, host="127.0.0.1", port=0,
            workers=2, window=window, max_batch=clients,
        )
        server = LakeServer(snapshot, config)
        loop = asyncio.new_event_loop()
        ready = threading.Event()
        stop_box: Dict[str, asyncio.Event] = {}

        async def main():
            stop_box["stop"] = asyncio.Event()
            await server.start()
            ready.set()
            await stop_box["stop"].wait()
            await server.stop()

        loop_thread = threading.Thread(
            target=lambda: (asyncio.set_event_loop(loop),
                            loop.run_until_complete(main()),
                            loop.close()),
            daemon=True,
        )
        loop_thread.start()
        if not ready.wait(timeout=60):
            raise RuntimeError("serve bench: server did not start")
        port = server.port

        barrier = threading.Barrier(clients + 1)
        latencies: list = []
        lock = threading.Lock()

        def client(wid: int) -> None:
            conn = http.client.HTTPConnection("127.0.0.1", port)
            from urllib.parse import quote

            target = f"/search?q={quote(queries[wid])}&k=5&method=hybrid"
            mine = []
            barrier.wait()
            for _ in range(per_client):
                begin = time.perf_counter()
                conn.request("GET", target)
                response = conn.getresponse()
                payload = json.loads(response.read())
                if response.status != 200:
                    raise AssertionError(
                        f"serve bench: HTTP {response.status}: {payload}"
                    )
                mine.append(time.perf_counter() - begin)
            conn.close()
            with lock:
                latencies.extend(mine)

        threads = [
            # Mutations inside the clients are lock-guarded.
            threading.Thread(target=client, args=(wid,), daemon=True)  # repro: noqa[shared-state-race]
            for wid in range(clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        begin = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - begin
        loop.call_soon_threadsafe(stop_box["stop"].set)
        loop_thread.join(timeout=60)
        ordered = sorted(latencies)
        p99 = ordered[min(len(ordered) - 1,
                          int(round(0.99 * (len(ordered) - 1))))]
        return {"qps": len(latencies) / elapsed, "p99": p99}

    bundle = _build_lake(mode)
    with tempfile.TemporaryDirectory() as root:
        directory = os.path.join(root, "lake")
        save_lake(bundle.lake, directory, sharded=True)
        snapshot = LakeSnapshot.open(directory)
        # Best of 2 rounds per phase: shared-runner scheduler noise
        # swamps single-round qps.
        unbatched = max((drill(snapshot, 0.0) for _ in range(2)),
                        key=lambda r: r["qps"])
        batched = max((drill(snapshot, 0.002) for _ in range(2)),
                      key=lambda r: r["qps"])
        snapshot.close()
    return {
        "models": float(len(list(bundle.lake))),
        "unbatched_qps": round(unbatched["qps"], 1),
        "batched_qps": round(batched["qps"], 1),
        "batch_speedup": round(batched["qps"] / unbatched["qps"], 3)
        if unbatched["qps"] else 0.0,
        "batched_p99_seconds": round(batched["p99"], 5),
    }


@register_bench(
    "hnsw",
    description="vectorized HNSW build and query latency",
    tolerances={"build_seconds": WALL_CLOCK_TOLERANCE,
                "query_us": WALL_CLOCK_TOLERANCE},
)
def bench_hnsw(mode: str) -> Dict[str, float]:
    from repro.index import HNSWIndex

    n = 300 if mode == "smoke" else 1500
    num_queries = 20 if mode == "smoke" else 50
    dim = 32
    rng = np.random.default_rng(21)
    centers = rng.normal(size=(12, dim)) * 3
    vectors = centers[rng.integers(12, size=n)] + rng.normal(
        scale=0.4, size=(n, dim)
    )
    ids = [f"v{i}" for i in range(n)]
    queries = vectors[rng.choice(n, num_queries, replace=False)] + rng.normal(
        scale=0.2, size=(num_queries, dim)
    )
    index = HNSWIndex(
        m=8, ef_construction=64, ef_search=48, seed=0, vectorized=True
    )
    start = time.perf_counter()
    index.build(ids, vectors)
    build = time.perf_counter() - start

    def sweep():
        for query in queries:
            index.query(query, k=10)

    query_seconds = _best_of(3, sweep)
    return {
        "indexed_vectors": float(n),
        "build_seconds": round(build, 3),
        "query_us": round(query_seconds / num_queries * 1e6, 1),
    }
