"""Stable content hashing for arrays, text, and JSON-like structures.

Content hashes are the backbone of the lake's content-addressed stores
and of dataset/model citation: two byte-identical artifacts always get
the same digest, across sessions.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable, Mapping

import numpy as np


def text_digest(text: str, length: int = 16) -> str:
    """Hex digest of a unicode string (first ``length`` hex chars)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:length]


def bytes_digest(blob: bytes, length: int = 16) -> str:
    """Hex digest of raw bytes (first ``length`` hex chars)."""
    return hashlib.sha256(blob).hexdigest()[:length]


def array_digest(array: np.ndarray, length: int = 16) -> str:
    """Hex digest of an array's dtype, shape, and raw bytes."""
    hasher = hashlib.sha256()
    arr = np.ascontiguousarray(array)
    hasher.update(str(arr.dtype).encode("utf-8"))
    hasher.update(str(arr.shape).encode("utf-8"))
    hasher.update(arr.tobytes())
    return hasher.hexdigest()[:length]


def _canonicalize(obj: Any) -> Any:
    """Convert ``obj`` into a deterministic JSON-serializable structure."""
    if isinstance(obj, np.ndarray):
        return {"__array__": array_digest(obj, length=32)}
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, Mapping):
        return {str(k): _canonicalize(obj[k]) for k in sorted(obj, key=str)}
    if isinstance(obj, (list, tuple)):
        return [_canonicalize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(_canonicalize(v) for v in obj)
    return obj


def stable_hash(obj: Any, length: int = 16) -> str:
    """Deterministic hex digest of a nested structure of plain data.

    Supports dicts, sequences, sets, numpy arrays and scalars.  Dict keys
    are sorted, so logically-equal structures hash identically.
    """
    canonical = _canonicalize(obj)
    payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return text_digest(payload, length=length)


def combine_digests(digests: Iterable[str], length: int = 16) -> str:
    """Combine multiple digests into one order-sensitive digest."""
    return text_digest("|".join(digests), length=length)
