"""Small text utilities shared by the corpus generator and search stack."""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, Iterable, List

_TOKEN_RE = re.compile(r"[a-z0-9_]+")


def simple_tokenize(text: str) -> List[str]:
    """Lowercase word tokenizer used for card text and queries."""
    return _TOKEN_RE.findall(text.lower())


def term_frequencies(tokens: Iterable[str]) -> Dict[str, int]:
    """Term -> count mapping for a token stream."""
    return dict(Counter(tokens))


def ngrams(tokens: List[str], n: int) -> List[tuple]:
    """All contiguous n-grams of a token list."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def truncate_words(text: str, max_words: int) -> str:
    """Truncate ``text`` to at most ``max_words`` whitespace words."""
    words = text.split()
    if len(words) <= max_words:
        return text
    return " ".join(words[:max_words]) + " ..."
