"""Shared utilities: deterministic RNG, hashing, serialization helpers."""

from repro.utils.rng import derive_rng, spawn_seed
from repro.utils.hashing import stable_hash, array_digest, text_digest
from repro.utils.serialization import (
    arrays_to_bytes,
    bytes_to_arrays,
    to_jsonable,
)

__all__ = [
    "derive_rng",
    "spawn_seed",
    "stable_hash",
    "array_digest",
    "text_digest",
    "arrays_to_bytes",
    "bytes_to_arrays",
    "to_jsonable",
]
