"""Serialization helpers for model weights and metadata.

Weights are stored as a flat mapping ``name -> ndarray``.  Two byte
formats live here:

* the legacy ``numpy.savez`` archive (:func:`arrays_to_bytes` /
  :func:`bytes_to_arrays`), still used for datasets and embedding
  caches, and readable for pre-shard (v1) lakes;
* the raw weight bundle (``.rwb``, :func:`pack_arrays` /
  :func:`unpack_arrays` / :func:`open_arrays_memmap`): a magic tag, a
  length-prefixed deterministic JSON header, then each array's raw
  C-contiguous bytes at a 64-byte-aligned offset.  Because the on-disk
  bytes *are* the serialized bytes (no zip container), a file can be
  digest-verified by streaming it in chunks and every array can be
  opened zero-copy with ``np.memmap`` — the two properties the
  out-of-core weight store is built on.
"""

from __future__ import annotations

import io
import json
import struct
from typing import Any, Dict, Mapping, Tuple

import numpy as np

from repro.errors import LakeError

#: Magic prefix of a raw weight bundle (format version baked in).
RWB_MAGIC = b"RWB1"

#: Array payload alignment inside a bundle.  64 bytes covers every
#: numpy dtype alignment and typical cache-line size, so memmap views
#: are as fast as the equivalent resident arrays.
RWB_ALIGN = 64

_RWB_LEN = struct.Struct("<Q")  # header length prefix


def arrays_to_bytes(arrays: Mapping[str, np.ndarray]) -> bytes:
    """Serialize a name->array mapping into a single bytes blob."""
    buffer = io.BytesIO()
    # savez mangles '/' in names on some versions; escape deterministically.
    escaped = {name.replace("/", "__SLASH__"): arr for name, arr in arrays.items()}
    np.savez(buffer, **escaped)
    return buffer.getvalue()


def bytes_to_arrays(blob: bytes) -> Dict[str, np.ndarray]:
    """Inverse of :func:`arrays_to_bytes`."""
    buffer = io.BytesIO(blob)
    with np.load(buffer) as payload:
        return {
            name.replace("__SLASH__", "/"): payload[name]
            for name in payload.files
        }


def _aligned(offset: int) -> int:
    return (offset + RWB_ALIGN - 1) // RWB_ALIGN * RWB_ALIGN


def pack_arrays(arrays: Mapping[str, np.ndarray]) -> bytes:
    """Serialize a name->array mapping as one raw weight bundle.

    Deterministic: names are sorted, the header is canonical JSON, and
    payload bytes are the arrays' C-contiguous memory — so equal
    mappings always produce identical bytes (the property the
    content-addressed store digests rely on).
    """
    metas = []
    payloads = []
    offset = 0
    for name in sorted(arrays):
        # asarray(order="C"), not ascontiguousarray: the latter silently
        # promotes 0-d arrays to 1-d, which would break shape fidelity.
        arr = np.asarray(arrays[name], order="C")
        raw = arr.tobytes()
        offset = _aligned(offset)
        metas.append({
            "name": name,
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": offset,
            "nbytes": len(raw),
        })
        payloads.append((offset, raw))
        offset += len(raw)
    header = json.dumps(
        {"align": RWB_ALIGN, "arrays": metas},
        sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")
    data_start = _aligned(len(RWB_MAGIC) + _RWB_LEN.size + len(header))
    out = bytearray(data_start + offset)
    out[: len(RWB_MAGIC)] = RWB_MAGIC
    out[len(RWB_MAGIC): len(RWB_MAGIC) + _RWB_LEN.size] = _RWB_LEN.pack(len(header))
    out[len(RWB_MAGIC) + _RWB_LEN.size: len(RWB_MAGIC) + _RWB_LEN.size + len(header)] = header
    for rel_offset, raw in payloads:
        out[data_start + rel_offset: data_start + rel_offset + len(raw)] = raw
    return bytes(out)


def _parse_rwb_header(prefix: bytes, where: str) -> Tuple[Dict, int]:
    """Parse a bundle's magic + header; returns (header, data_start)."""
    base = len(RWB_MAGIC) + _RWB_LEN.size
    if len(prefix) < base or prefix[: len(RWB_MAGIC)] != RWB_MAGIC:
        raise LakeError(f"not a raw weight bundle: {where}")
    (header_len,) = _RWB_LEN.unpack(prefix[len(RWB_MAGIC): base])
    if len(prefix) < base + header_len:
        raise LakeError(f"truncated raw weight bundle header: {where}")
    header = json.loads(prefix[base: base + header_len].decode("utf-8"))
    return header, _aligned(base + header_len)


def unpack_arrays(blob: bytes) -> Dict[str, np.ndarray]:
    """Inverse of :func:`pack_arrays` (arrays are read-only views)."""
    header, data_start = _parse_rwb_header(blob, "<bytes>")
    out: Dict[str, np.ndarray] = {}
    for meta in header["arrays"]:
        start = data_start + int(meta["offset"])
        count = int(np.prod(meta["shape"], dtype=np.int64)) if meta["shape"] else 1
        arr = np.frombuffer(
            blob, dtype=np.dtype(meta["dtype"]), count=count, offset=start
        ).reshape(meta["shape"])
        out[meta["name"]] = arr
    return out


def open_arrays_memmap(path: str) -> Dict[str, np.ndarray]:
    """Open a raw weight bundle file as zero-copy memmap-backed arrays.

    Only the header is read eagerly; array bytes are paged in on access
    and never copied, so opening a bundle costs O(header) memory no
    matter how large the weights are.  The returned arrays are
    read-only views — callers that mutate must copy first (as
    ``Module.load_state_dict`` already does).
    """
    base = len(RWB_MAGIC) + _RWB_LEN.size
    with open(path, "rb") as handle:
        prefix = handle.read(base)
        header_len = (
            _RWB_LEN.unpack(prefix[len(RWB_MAGIC):])[0]
            if len(prefix) == base and prefix[: len(RWB_MAGIC)] == RWB_MAGIC
            else 0
        )
        prefix += handle.read(header_len)
    header, data_start = _parse_rwb_header(prefix, path)
    mm = np.memmap(path, dtype=np.uint8, mode="r")
    out: Dict[str, np.ndarray] = {}
    for meta in header["arrays"]:
        start = data_start + int(meta["offset"])
        view = mm[start: start + int(meta["nbytes"])]
        out[meta["name"]] = view.view(np.dtype(meta["dtype"])).reshape(meta["shape"])
    return out


def to_jsonable(obj: Any) -> Any:
    """Recursively convert numpy scalars/arrays into plain Python values."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    return obj


def dumps_json(obj: Any) -> str:
    """Deterministic JSON encoding (sorted keys, compact separators)."""
    return json.dumps(to_jsonable(obj), sort_keys=True, separators=(",", ":"))
