"""Serialization helpers for model weights and metadata.

Weights are stored as a flat mapping ``name -> ndarray``.  The byte
format is ``numpy.savez``-based, which keeps us dependency-free while
remaining portable and stable.
"""

from __future__ import annotations

import io
import json
from typing import Any, Dict, Mapping

import numpy as np


def arrays_to_bytes(arrays: Mapping[str, np.ndarray]) -> bytes:
    """Serialize a name->array mapping into a single bytes blob."""
    buffer = io.BytesIO()
    # savez mangles '/' in names on some versions; escape deterministically.
    escaped = {name.replace("/", "__SLASH__"): arr for name, arr in arrays.items()}
    np.savez(buffer, **escaped)
    return buffer.getvalue()


def bytes_to_arrays(blob: bytes) -> Dict[str, np.ndarray]:
    """Inverse of :func:`arrays_to_bytes`."""
    buffer = io.BytesIO(blob)
    with np.load(buffer) as payload:
        return {
            name.replace("__SLASH__", "/"): payload[name]
            for name in payload.files
        }


def to_jsonable(obj: Any) -> Any:
    """Recursively convert numpy scalars/arrays into plain Python values."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    return obj


def dumps_json(obj: Any) -> str:
    """Deterministic JSON encoding (sorted keys, compact separators)."""
    return json.dumps(to_jsonable(obj), sort_keys=True, separators=(",", ":"))
