"""Deterministic random-number management.

Everything in the library that needs randomness takes either a seed or a
``numpy.random.Generator``.  These helpers derive independent child
generators from a parent seed and a string label, so that adding a new
consumer of randomness never perturbs the streams of existing consumers.
"""

from __future__ import annotations

import hashlib

import numpy as np


def spawn_seed(parent_seed: int, label: str) -> int:
    """Derive a child seed from ``parent_seed`` and a human-readable label.

    The derivation is a stable hash, so the same (seed, label) pair always
    yields the same child seed across processes and platforms.
    """
    payload = f"{parent_seed}:{label}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") % (2**63)


def derive_rng(seed_or_rng: "int | np.random.Generator", label: str = "") -> np.random.Generator:
    """Return a ``Generator`` derived from a seed or an existing generator.

    When given an int seed, the label participates in seed derivation so
    independent subsystems can share one top-level seed.  When given a
    generator, a child generator is spawned from it (label is ignored,
    since the caller already controls stream order).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return np.random.Generator(np.random.PCG64(seed_or_rng.integers(2**63)))
    return np.random.default_rng(spawn_seed(int(seed_or_rng), label))
