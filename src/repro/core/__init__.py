"""The paper's primary contribution: the model-lake task suite.

Subpackages map one-to-one onto the tasks of §3 and applications of §6:

* :mod:`repro.core.attribution` — model attribution (influence,
  sensitivity, membership inference, representation analysis),
* :mod:`repro.core.versioning` — version graphs and their recovery,
* :mod:`repro.core.search` — keyword / behavioral / hybrid / declarative
  model search,
* :mod:`repro.core.benchmarking` — benchmark lakes, metrics, lifelong
  evaluation,
* :mod:`repro.core.docgen` — model-card generation and verification,
* :mod:`repro.core.audit` — compliance questionnaires and risk
  propagation,
* :mod:`repro.core.citation` — model/data citation over lake snapshots.
"""
