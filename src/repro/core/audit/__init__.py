"""Auditing: compliance questionnaires and risk propagation."""

from repro.core.audit.questionnaire import AuditAnswer, AuditReport, ModelAuditor
from repro.core.audit.risk import (
    DEFAULT_EDGE_RETENTION,
    RiskAssessment,
    propagate_risk,
)

__all__ = [
    "AuditAnswer", "AuditReport", "ModelAuditor",
    "DEFAULT_EDGE_RETENTION", "RiskAssessment", "propagate_risk",
]
