"""Auditing: template questionnaires answered from lake evidence.

§6: "The model document generation application procedure can be
repurposed for auditing by creating a template questionnaire and using
the information from the model lake to generate a draft response with
proof or explanation about how a requirement is fulfilled."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.docgen.generator import CardGenerator
from repro.core.docgen.verify import CardVerifier
from repro.core.versioning.graph import VersionGraph
from repro.errors import HistoryUnavailableError
from repro.lake.lake import ModelLake


@dataclass
class AuditAnswer:
    """One questionnaire item: the finding plus its supporting evidence."""

    question: str
    answer: str
    satisfied: bool
    evidence: List[str] = field(default_factory=list)


@dataclass
class AuditReport:
    """A complete audit of one model."""

    model_id: str
    answers: List[AuditAnswer] = field(default_factory=list)

    @property
    def compliance_rate(self) -> float:
        if not self.answers:
            return 1.0
        return sum(1 for a in self.answers if a.satisfied) / len(self.answers)

    def to_text(self) -> str:
        lines = [f"Audit report for {self.model_id}", "=" * 40]
        for answer in self.answers:
            status = "PASS" if answer.satisfied else "FAIL"
            lines.append(f"[{status}] {answer.question}")
            lines.append(f"       {answer.answer}")
            for item in answer.evidence:
                lines.append(f"       - {item}")
        lines.append(f"Compliance: {self.compliance_rate:.0%}")
        return "\n".join(lines)


class ModelAuditor:
    """Answers a standard compliance questionnaire for lake models."""

    def __init__(
        self,
        lake: ModelLake,
        generator: CardGenerator,
        version_graph: Optional[VersionGraph] = None,
    ):
        self.lake = lake
        self.generator = generator
        self.verifier = CardVerifier(generator)
        self.version_graph = version_graph or VersionGraph.from_lake_history(lake)

    def audit(self, model_id: str) -> AuditReport:
        report = AuditReport(model_id=model_id)
        report.answers.append(self._q_documentation(model_id))
        report.answers.append(self._q_provenance(model_id))
        report.answers.append(self._q_training_data(model_id))
        report.answers.append(self._q_card_accuracy(model_id))
        report.answers.append(self._q_known_limitations(model_id))
        return report

    # -- individual questions --------------------------------------------
    def _q_documentation(self, model_id: str) -> AuditAnswer:
        card = self.lake.get_record(model_id).card
        completeness = card.completeness()
        return AuditAnswer(
            question="Is the model documented (card completeness >= 0.7)?",
            answer=f"Card completeness is {completeness:.0%}.",
            satisfied=completeness >= 0.7,
            evidence=[f"card digest {card.digest()}"],
        )

    def _q_provenance(self, model_id: str) -> AuditAnswer:
        """Is the model's lineage established (recorded or recoverable)?"""
        try:
            history = self.lake.get_history(model_id)
            parents = ", ".join(history.parent_ids) or "none (trained from scratch)"
            return AuditAnswer(
                question="Is the model's provenance established?",
                answer=f"Recorded history: {history.describe()}.",
                satisfied=True,
                evidence=[f"parents: {parents}"],
            )
        except HistoryUnavailableError:
            evidence = self.generator.gather_evidence(model_id)
            if evidence.inferred_base is not None:
                base = self.lake.get_record(evidence.inferred_base).name
                return AuditAnswer(
                    question="Is the model's provenance established?",
                    answer=(
                        f"History unavailable; weight analysis attributes it to "
                        f"{base} via {evidence.inferred_transform}."
                    ),
                    satisfied=True,
                    evidence=[f"weight distance {evidence.base_distance:.3f}"],
                )
            return AuditAnswer(
                question="Is the model's provenance established?",
                answer="No recorded history and no recoverable base model.",
                satisfied=False,
            )

    def _q_training_data(self, model_id: str) -> AuditAnswer:
        try:
            history = self.lake.get_history(model_id)
            if history.dataset_digest and history.dataset_digest in self.lake.datasets:
                return AuditAnswer(
                    question="Is the training data identified and available?",
                    answer=f"Dataset {history.dataset_name!r} is registered in the lake.",
                    satisfied=True,
                    evidence=[f"digest {history.dataset_digest}"],
                )
            return AuditAnswer(
                question="Is the training data identified and available?",
                answer="History names no registered dataset.",
                satisfied=False,
            )
        except HistoryUnavailableError:
            return AuditAnswer(
                question="Is the training data identified and available?",
                answer="History unavailable; training data cannot be confirmed.",
                satisfied=False,
            )

    def _q_card_accuracy(self, model_id: str) -> AuditAnswer:
        issues = self.verifier.verify(model_id)
        contradictions = [i for i in issues if i.severity == "contradiction"]
        return AuditAnswer(
            question="Do card claims match measured behavior?",
            answer=(
                "No contradictions detected."
                if not contradictions
                else f"{len(contradictions)} claim(s) contradicted by measurement."
            ),
            satisfied=not contradictions,
            evidence=[i.describe() for i in contradictions[:5]],
        )

    def _q_known_limitations(self, model_id: str) -> AuditAnswer:
        card = self.lake.get_record(model_id).card
        return AuditAnswer(
            question="Are limitations disclosed?",
            answer=(
                "Limitations section present."
                if card.limitations
                else "No limitations documented."
            ),
            satisfied=bool(card.limitations),
        )
