"""Risk propagation through the version graph.

§6 cites Wang et al.: "model versioning helps warn downstream model
users of upstream model risks."  Given models flagged as risky (e.g. a
poisoned foundation), propagate warnings to every descendant —
attenuated by the kind of edge crossed, since some transformations
launder more of the parent's weights than others.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.versioning.graph import VersionGraph
from repro.errors import ConfigError

#: How much of a parent's risk survives each transformation kind.
DEFAULT_EDGE_RETENTION: Dict[str, float] = {
    "finetune": 0.9,
    "preference": 0.9,
    "lora": 0.95,
    "edit": 1.0,
    "prune": 1.0,
    "quantize": 1.0,
    "merge": 0.6,     # diluted by the other parent
    "stitch": 0.5,    # only part of the parent survives
    "distill": 0.4,   # fresh weights, behavior partially inherited
    None: 0.8,        # unknown edge kind
}


@dataclass
class RiskAssessment:
    """Propagated risk levels over a set of models."""

    risk: Dict[str, float] = field(default_factory=dict)
    sources: Dict[str, List[str]] = field(default_factory=dict)

    def flagged(self, threshold: float = 0.5) -> Set[str]:
        return {mid for mid, value in self.risk.items() if value >= threshold}

    def explain(self, model_id: str) -> str:
        value = self.risk.get(model_id, 0.0)
        origin = ", ".join(self.sources.get(model_id, [])) or "-"
        return f"{model_id}: risk {value:.2f} (inherited from {origin})"


def propagate_risk(
    graph: VersionGraph,
    seed_risks: Dict[str, float],
    edge_retention: Optional[Dict[str, float]] = None,
    undirected: bool = False,
) -> RiskAssessment:
    """Push risk from seed models to all descendants along version edges.

    A node's risk is the max over paths of (seed risk x product of edge
    retentions) — max, not sum, since risks are not independent.

    ``undirected=True`` propagates along edges in both directions: the
    recall-oriented mode for *warnings* over recovered graphs, whose
    edge directions are heuristic (a mis-oriented edge should not hide a
    genuinely related model from an audit).
    """
    retention = dict(DEFAULT_EDGE_RETENTION)
    if edge_retention:
        retention.update(edge_retention)
    for model_id, value in seed_risks.items():
        if not 0.0 <= value <= 1.0:
            raise ConfigError(f"risk for {model_id!r} must be in [0, 1], got {value}")

    assessment = RiskAssessment()
    for model_id, value in seed_risks.items():
        if model_id not in graph:
            continue
        assessment.risk[model_id] = max(assessment.risk.get(model_id, 0.0), value)
        assessment.sources.setdefault(model_id, []).append(model_id)

    # Breadth-first relaxation (graphs are DAGs; loop until stable).
    frontier = list(seed_risks)
    while frontier:
        next_frontier: List[str] = []
        for parent in frontier:
            if parent not in graph:
                continue
            parent_risk = assessment.risk.get(parent, 0.0)
            neighbors = list(graph.children(parent))
            if undirected:
                neighbors.extend(graph.parents(parent))
            for child in neighbors:
                edge = graph.transform_between(parent, child)
                if edge is None and undirected:
                    edge = graph.transform_between(child, parent)
                kind = edge.kind if edge is not None else None
                # Recovered graphs store kind directly on the edge data.
                if kind is None:
                    data = (
                        graph._graph.get_edge_data(parent, child)
                        or graph._graph.get_edge_data(child, parent)
                        or {}
                    )
                    kind = data.get("kind")
                factor = retention.get(kind, retention[None])
                propagated = parent_risk * factor
                if propagated > assessment.risk.get(child, 0.0) + 1e-12:
                    assessment.risk[child] = propagated
                    assessment.sources[child] = list(
                        assessment.sources.get(parent, [parent])
                    )
                    next_frontier.append(child)
        frontier = next_frontier
    return assessment
