"""Model and data citation over versioned lake snapshots.

§6: "If a particular model is used, the platform would refer to its
versioning graph and generate a citation with the model version and
timestamp of the graph. Upon any updates of the graph, a new citation
would be generated with the updated version and timestamp."

A citation pins: the model id, its weights digest (exact artifact), its
position in the version graph (root + depth), the dataset digest when
known, and the lake's snapshot digest + logical clock.  Re-resolution
detects whether the cited artifact is unchanged, moved, or gone.
"""

from __future__ import annotations

from contextlib import suppress
from dataclasses import dataclass
from typing import List, Optional

from repro.core.versioning.graph import VersionGraph
from repro.errors import HistoryUnavailableError, ModelNotFoundError
from repro.lake.lake import ModelLake


@dataclass(frozen=True)
class ModelCitation:
    """An immutable, re-resolvable reference to a model artifact."""

    model_id: str
    model_name: str
    weights_digest: str
    root_id: str
    lineage_depth: int
    dataset_digest: Optional[str]
    lake_clock: int
    lake_snapshot: str

    def key(self) -> str:
        """Compact citation string."""
        return (
            f"model:{self.model_id}@{self.weights_digest[:12]}"
            f"/root:{self.root_id[:12]}+{self.lineage_depth}"
            f"/lake:{self.lake_clock}:{self.lake_snapshot[:12]}"
        )

    def to_bibtex(self) -> str:
        return (
            f"@misc{{{self.model_id.replace('-', '_')},\n"
            f"  title = {{{self.model_name}}},\n"
            f"  howpublished = {{Model Lake snapshot {self.lake_snapshot[:12]} "
            f"(clock {self.lake_clock})}},\n"
            f"  note = {{weights {self.weights_digest[:12]}, lineage root "
            f"{self.root_id[:12]} (+{self.lineage_depth} hops)}}\n"
            f"}}"
        )


@dataclass(frozen=True)
class DataCitation:
    """A reference to a dataset version used to train a model."""

    dataset_digest: str
    dataset_name: str
    num_versions_known: int
    lake_clock: int

    def key(self) -> str:
        return f"data:{self.dataset_digest[:12]}:{self.dataset_name}@{self.lake_clock}"


@dataclass
class ResolutionResult:
    """Outcome of re-resolving a citation against a (possibly newer) lake."""

    status: str  # "exact" | "weights_changed" | "missing" | "lake_evolved"
    detail: str


def cite_model(
    lake: ModelLake, model_id: str, graph: Optional[VersionGraph] = None
) -> ModelCitation:
    """Generate a citation for a lake model (uses the version graph)."""
    record = lake.get_record(model_id)
    graph = graph or VersionGraph.from_lake_history(lake)
    root = graph.root_of(model_id) if model_id in graph else model_id
    depth = 0
    if model_id in graph and root != model_id:
        path = graph.lineage_path(root, model_id)
        depth = (len(path) - 1) if path else 0
    dataset_digest = None
    with suppress(HistoryUnavailableError):
        dataset_digest = lake.get_history(model_id).dataset_digest
    return ModelCitation(
        model_id=model_id,
        model_name=record.name,
        weights_digest=record.weights_digest,
        root_id=root,
        lineage_depth=depth,
        dataset_digest=dataset_digest,
        lake_clock=lake.clock,
        lake_snapshot=lake.snapshot_digest(),
    )


def cite_dataset(lake: ModelLake, dataset_digest: str) -> DataCitation:
    dataset = lake.datasets.get(dataset_digest)
    versions = lake.datasets.versions_of(dataset_digest)
    return DataCitation(
        dataset_digest=dataset_digest,
        dataset_name=dataset.name,
        num_versions_known=len(versions),
        lake_clock=lake.clock,
    )


def resolve_citation(lake: ModelLake, citation: ModelCitation) -> ResolutionResult:
    """Check whether a citation still refers to the same artifact."""
    try:
        record = lake.get_record(citation.model_id)
    except ModelNotFoundError:
        return ResolutionResult(
            status="missing",
            detail=f"model {citation.model_id!r} no longer registered",
        )
    if record.weights_digest != citation.weights_digest:
        return ResolutionResult(
            status="weights_changed",
            detail=(
                f"weights are now {record.weights_digest[:12]}, cited "
                f"{citation.weights_digest[:12]}"
            ),
        )
    if lake.snapshot_digest() != citation.lake_snapshot:
        return ResolutionResult(
            status="lake_evolved",
            detail=(
                "artifact unchanged, but the lake has evolved since the "
                f"citation (clock {citation.lake_clock} -> {lake.clock}); "
                "a fresh citation would have a new snapshot id"
            ),
        )
    return ResolutionResult(status="exact", detail="citation resolves exactly")
