"""Model and data citation over lake snapshots."""

from repro.core.citation.citation import (
    DataCitation,
    ModelCitation,
    ResolutionResult,
    cite_dataset,
    cite_model,
    resolve_citation,
)

__all__ = [
    "DataCitation", "ModelCitation", "ResolutionResult",
    "cite_dataset", "cite_model", "resolve_citation",
]
