"""Ranking and graph metrics for scoring lake-task solutions."""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigError


def precision_at_k(ranked_ids: Sequence[str], relevant: Set[str], k: int) -> float:
    """Fraction of the top-k results that are relevant."""
    if k <= 0:
        raise ConfigError(f"k must be positive, got {k}")
    top = list(ranked_ids)[:k]
    if not top:
        return 0.0
    return sum(1 for item in top if item in relevant) / len(top)


def recall_at_k(ranked_ids: Sequence[str], relevant: Set[str], k: int) -> float:
    """Fraction of relevant items found in the top-k."""
    if not relevant:
        return 1.0
    top = set(list(ranked_ids)[:k])
    return len(top & relevant) / len(relevant)


def reciprocal_rank(ranked_ids: Sequence[str], relevant: Set[str]) -> float:
    """1 / rank of the first relevant result (0 if none)."""
    for i, item in enumerate(ranked_ids, start=1):
        if item in relevant:
            return 1.0 / i
    return 0.0


def mean_reciprocal_rank(
    rankings: Sequence[Sequence[str]], relevants: Sequence[Set[str]]
) -> float:
    if len(rankings) != len(relevants):
        raise ConfigError("rankings and relevants must align")
    if not rankings:
        return 0.0
    return float(np.mean([
        reciprocal_rank(r, rel) for r, rel in zip(rankings, relevants)
    ]))


def ndcg_at_k(
    ranked_ids: Sequence[str], gains: Dict[str, float], k: int
) -> float:
    """Normalized discounted cumulative gain with graded relevance."""
    if k <= 0:
        raise ConfigError(f"k must be positive, got {k}")
    top = list(ranked_ids)[:k]
    dcg = sum(
        gains.get(item, 0.0) / np.log2(i + 2) for i, item in enumerate(top)
    )
    ideal = sorted(gains.values(), reverse=True)[:k]
    idcg = sum(g / np.log2(i + 2) for i, g in enumerate(ideal))
    if idcg <= 0:
        return 0.0
    return float(dcg / idcg)


def edge_precision_recall(
    predicted: Set[Tuple[str, str]], truth: Set[Tuple[str, str]]
) -> Tuple[float, float, float]:
    """(precision, recall, F1) over directed edge sets."""
    if not predicted and not truth:
        return 1.0, 1.0, 1.0
    true_positive = len(predicted & truth)
    precision = true_positive / len(predicted) if predicted else 0.0
    recall = true_positive / len(truth) if truth else 1.0
    if precision + recall == 0:
        return precision, recall, 0.0
    f1 = 2 * precision * recall / (precision + recall)
    return precision, recall, f1


def undirected_edge_f1(
    predicted: Set[Tuple[str, str]], truth: Set[Tuple[str, str]]
) -> float:
    """F1 ignoring edge direction (separates topology from orientation)."""
    p = {tuple(sorted(e)) for e in predicted}
    t = {tuple(sorted(e)) for e in truth}
    _, _, f1 = edge_precision_recall(p, t)
    return f1


def kendall_tau(ranking_a: Sequence[str], ranking_b: Sequence[str]) -> float:
    """Kendall rank correlation between two rankings of the same items."""
    common = [x for x in ranking_a if x in set(ranking_b)]
    if len(common) < 2:
        return 1.0
    position_b = {item: i for i, item in enumerate(ranking_b)}
    concordant = discordant = 0
    for i in range(len(common)):
        for j in range(i + 1, len(common)):
            diff = position_b[common[i]] - position_b[common[j]]
            if diff < 0:
                concordant += 1
            elif diff > 0:
                discordant += 1
    total = concordant + discordant
    if total == 0:
        return 1.0
    return (concordant - discordant) / total
