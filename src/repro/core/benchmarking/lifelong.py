"""Lifelong benchmarking: keep scores current as the lake evolves.

§5 calls for "lifelong benchmarks that can address increasingly complex
and novel scenarios as models continue to evolve".  The ledger tracks
which (model, benchmark) cells are already scored and evaluates only
the missing ones when models or benchmarks are added — with a cost
accounting that benchmark E10 compares against naive full re-evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.benchmarking.scoring import Benchmark, score_model
from repro.errors import ConfigError
from repro.lake.lake import ModelLake


@dataclass
class LifelongLedger:
    """Incremental (model x benchmark) score matrix over a lake."""

    lake: ModelLake
    benchmarks: Dict[str, Benchmark] = field(default_factory=dict)
    scores: Dict[Tuple[str, str], float] = field(default_factory=dict)
    evaluations_performed: int = 0

    # -- evolution ---------------------------------------------------------
    def add_benchmark(self, benchmark: Benchmark) -> None:
        if benchmark.name in self.benchmarks:
            raise ConfigError(f"benchmark {benchmark.name!r} already registered")
        self.benchmarks[benchmark.name] = benchmark

    def refresh(self) -> int:
        """Evaluate every missing (model, benchmark) cell.

        Returns the number of evaluations actually performed — the
        incremental cost, compared to ``len(models) * len(benchmarks)``
        for a from-scratch run.
        """
        performed = 0
        for record in self.lake:
            model = None
            for name, benchmark in self.benchmarks.items():
                key = (record.model_id, name)
                if key in self.scores:
                    continue
                if model is None:
                    model = self.lake.get_model(record.model_id, force=True)
                if benchmark.metric == "perplexity" and hasattr(model, "predict_proba"):
                    continue
                if benchmark.metric != "perplexity" and not hasattr(model, "predict"):
                    continue
                self.scores[key] = score_model(model, benchmark)
                performed += 1
        self.evaluations_performed += performed
        return performed

    # -- queries -----------------------------------------------------------
    def score_of(self, model_id: str, benchmark_name: str) -> Optional[float]:
        return self.scores.get((model_id, benchmark_name))

    def leaderboard(self, benchmark_name: str, k: int = 10) -> List[Tuple[str, float]]:
        """Top-k models on one benchmark (descending score)."""
        entries = [
            (model_id, value)
            for (model_id, name), value in self.scores.items()
            if name == benchmark_name
        ]
        entries.sort(key=lambda kv: (-kv[1], kv[0]))
        return entries[:k]

    def coverage(self) -> float:
        """Fraction of the (model x benchmark) matrix that is scored."""
        total = len(self.lake) * len(self.benchmarks)
        if total == 0:
            return 1.0
        return len(self.scores) / total
