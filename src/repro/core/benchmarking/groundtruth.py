"""Benchmark lakes: ground-truth labels for each model-lake task.

§3: "within a benchmark lake, we will need verified ground truth."
:class:`TaskGroundTruth` derives per-task labels from a generated
lake's :class:`~repro.lake.generator.LakeGroundTruth` so that every
task solution can be scored with the metrics in
:mod:`repro.core.benchmarking.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.data.domains import DOMAIN_NAMES
from repro.lake.generator import GeneratedLake
from repro.transforms.base import TransformRecord

#: Transform kinds whose child shares aligned weights with its parent —
#: the edges weight-based recovery can reasonably be expected to find.
WEIGHT_PRESERVING_KINDS = frozenset(
    {"finetune", "lora", "edit", "prune", "quantize", "preference", "merge"}
)


@dataclass
class SearchGroundTruth:
    """Relevance labels for domain-targeted model search."""

    #: domain -> ids of models that are genuinely competent on it.
    relevant: Dict[str, Set[str]]
    #: domain -> model_id -> graded gain (held-out accuracy).
    gains: Dict[str, Dict[str, float]]


def search_ground_truth(
    bundle: GeneratedLake, accuracy_threshold: float = 0.9
) -> SearchGroundTruth:
    """Relevance = the model's *measured* competence on the domain.

    Relevant models are those whose held-out accuracy on the domain
    clears the threshold AND that actually saw the domain's data — the
    behavior a perfect search system should surface regardless of what
    any card claims.
    """
    relevant: Dict[str, Set[str]] = {d: set() for d in DOMAIN_NAMES}
    gains: Dict[str, Dict[str, float]] = {d: {} for d in DOMAIN_NAMES}
    for model_id, per_domain in bundle.truth.domain_accuracy.items():
        trained_domains = set(bundle.truth.model_domains.get(model_id, ()))
        for domain, accuracy in per_domain.items():
            gains[domain][model_id] = float(accuracy)
            if accuracy >= accuracy_threshold and domain in trained_domains:
                relevant[domain].add(model_id)
    return SearchGroundTruth(relevant=relevant, gains=gains)


def version_edge_truth(
    bundle: GeneratedLake, weight_preserving_only: bool = False
) -> Set[Tuple[str, str]]:
    """The (parent, child) pairs a versioning solution should recover."""
    pairs: Set[Tuple[str, str]] = set()
    for parents, child, record in bundle.truth.edges:
        if weight_preserving_only and record.kind not in WEIGHT_PRESERVING_KINDS:
            continue
        for parent in parents:
            pairs.add((parent, child))
    return pairs


def transform_label_truth(bundle: GeneratedLake) -> Dict[Tuple[str, str], str]:
    """(parent, child) -> canonical transform kind for edge labeling.

    Preference tuning is indistinguishable from fine-tuning in weight
    space by design, so it canonicalizes to ``finetune``.
    """
    labels: Dict[Tuple[str, str], str] = {}
    for parents, child, record in bundle.truth.edges:
        kind = "finetune" if record.kind == "preference" else record.kind
        for parent in parents:
            labels[(parent, child)] = kind
    return labels


def specialization_truth(bundle: GeneratedLake) -> Dict[str, Optional[str]]:
    """model_id -> primary specialty domain (None for generalists)."""
    return dict(bundle.truth.specialty)
