"""Benchmarking: metrics, ground truth, scoring, lifelong ledgers."""

from repro.core.benchmarking.metrics import (
    edge_precision_recall,
    kendall_tau,
    mean_reciprocal_rank,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
    undirected_edge_f1,
)
from repro.core.benchmarking.groundtruth import (
    WEIGHT_PRESERVING_KINDS,
    SearchGroundTruth,
    search_ground_truth,
    specialization_truth,
    transform_label_truth,
    version_edge_truth,
)
from repro.core.benchmarking.scoring import (
    Benchmark,
    SuiteResult,
    run_suite,
    score_accuracy,
    score_macro_f1,
    score_model,
    score_perplexity,
)
from repro.core.benchmarking.lifelong import LifelongLedger

__all__ = [
    "edge_precision_recall", "kendall_tau", "mean_reciprocal_rank",
    "ndcg_at_k", "precision_at_k", "recall_at_k", "reciprocal_rank",
    "undirected_edge_f1",
    "WEIGHT_PRESERVING_KINDS", "SearchGroundTruth", "search_ground_truth",
    "specialization_truth", "transform_label_truth", "version_edge_truth",
    "Benchmark", "SuiteResult", "run_suite", "score_accuracy",
    "score_macro_f1", "score_model", "score_perplexity",
    "LifelongLedger",
]
