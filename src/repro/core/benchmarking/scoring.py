"""Single-model benchmark scoring: S(M, B) -> R.

§3: "a benchmark B ... is used to measure the performance of a model M
based on a scoring function S(M, B)."  Scorers run a model against a
benchmark dataset and return scalar metrics; the suite runner applies a
set of scorers across a set of lake models and records the results into
the lake (the metrics later served by ``models_outperforming``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.data.datasets import TextDataset
from repro.errors import ConfigError
from repro.lake.lake import ModelLake
from repro.nn.losses import perplexity
from repro.nn.module import Module


@dataclass(frozen=True)
class Benchmark:
    """A named evaluation dataset plus the metric it is scored with."""

    name: str
    dataset: TextDataset
    metric: str = "accuracy"  # "accuracy" | "macro_f1" | "perplexity"


def score_accuracy(model: Module, dataset: TextDataset) -> float:
    predictions = model.predict(dataset.tokens)
    return float((predictions == dataset.labels).mean())


def score_macro_f1(model: Module, dataset: TextDataset) -> float:
    predictions = model.predict(dataset.tokens)
    labels = dataset.labels
    f1s: List[float] = []
    for cls in np.unique(labels):
        tp = int(((predictions == cls) & (labels == cls)).sum())
        fp = int(((predictions == cls) & (labels != cls)).sum())
        fn = int(((predictions != cls) & (labels == cls)).sum())
        if tp == 0:
            f1s.append(0.0)
            continue
        precision = tp / (tp + fp)
        recall = tp / (tp + fn)
        f1s.append(2 * precision * recall / (precision + recall))
    return float(np.mean(f1s))


def score_perplexity(model: Module, dataset: TextDataset) -> float:
    tokens = dataset.tokens
    targets = np.concatenate(
        [tokens[:, 1:], np.full((len(tokens), 1), -1, dtype=np.int64)], axis=1
    )
    targets = np.where(tokens == 0, -1, targets)
    logits = model(tokens).data
    return perplexity(logits, targets)


_SCORERS: Dict[str, Callable[[Module, TextDataset], float]] = {
    "accuracy": score_accuracy,
    "macro_f1": score_macro_f1,
    "perplexity": score_perplexity,
}


def score_model(model: Module, benchmark: Benchmark) -> float:
    """Apply S(M, B) for the benchmark's metric."""
    scorer = _SCORERS.get(benchmark.metric)
    if scorer is None:
        raise ConfigError(
            f"unknown metric {benchmark.metric!r}; expected {sorted(_SCORERS)}"
        )
    return scorer(model, benchmark.dataset)


@dataclass
class SuiteResult:
    """Benchmark-suite run: model_id -> benchmark name -> score."""

    scores: Dict[str, Dict[str, float]] = field(default_factory=dict)
    evaluations: int = 0

    def table(self) -> List[str]:
        """Plain-text result table, one row per model."""
        benchmarks = sorted({b for row in self.scores.values() for b in row})
        header = "model".ljust(40) + "".join(b.rjust(18) for b in benchmarks)
        lines = [header]
        for model_id in sorted(self.scores):
            row = model_id[:38].ljust(40)
            for bench in benchmarks:
                value = self.scores[model_id].get(bench)
                row += (f"{value:.4f}" if value is not None else "-").rjust(18)
            lines.append(row)
        return lines


def run_suite(
    lake: ModelLake,
    benchmarks: Sequence[Benchmark],
    model_ids: Optional[Sequence[str]] = None,
    record_into_lake: bool = True,
) -> SuiteResult:
    """Score every model on every benchmark; optionally record metrics."""
    ids = list(model_ids) if model_ids is not None else lake.model_ids()
    result = SuiteResult()
    for model_id in ids:
        model = lake.get_model(model_id, force=True)
        row: Dict[str, float] = {}
        for benchmark in benchmarks:
            if benchmark.metric == "perplexity" and hasattr(model, "predict_proba"):
                continue  # perplexity only applies to language models
            if benchmark.metric != "perplexity" and not hasattr(model, "predict"):
                continue
            value = score_model(model, benchmark)
            row[benchmark.name] = value
            result.evaluations += 1
            if record_into_lake:
                lake.record_metric(model_id, f"{benchmark.name}:{benchmark.metric}", value)
        result.scores[model_id] = row
    return result
