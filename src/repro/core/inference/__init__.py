"""Model inference: automated benchmark + model selection for a query."""

from repro.core.inference.agent import (
    InferencePlan,
    InferenceResult,
    ModelInferenceAgent,
    Recommendation,
)

__all__ = [
    "InferencePlan", "InferenceResult", "ModelInferenceAgent", "Recommendation",
]
