"""Model inference (§5): from user query to verified recommendation.

"The model inference component involves identifying appropriate
benchmarks and generating relevant prompts, as well as selecting
suitable models ... While users can manually run prompts and select
models, this approach is prone to errors ... This search and generation
process can also be automated using an AI agent."

The agent is a deterministic planner that composes the lake's other
components:

1. **understand** — map the query text to target domains;
2. **retrieve**  — shortlist candidates with (cheap) hybrid search;
3. **benchmark** — generate a fresh, targeted benchmark for the task
   (the "relevant prompts");
4. **verify**    — actually run every candidate on it (extrinsic truth);
5. **explain**   — re-rank by measured score and attach a rationale
   combining the card's claims with the fresh measurement.

Step 4 is the safeguard the paper wants: recommendations rest on
measured behavior, not on whatever the cards say.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.benchmarking.scoring import Benchmark, score_model
from repro.core.search.behavioral import extract_query_domains
from repro.core.search.engine import SearchEngine
from repro.data.datasets import TextDataset, make_domain_dataset
from repro.data.probes import ProbeSet
from repro.errors import ConfigError, QueryError
from repro.lake.lake import ModelLake
from repro.obs import metrics as obs_metrics
from repro.obs.instrument import (
    INFERENCE_CANDIDATES_VERIFIED,
    INFERENCE_REQUESTS,
)
from repro.obs.logging import get_logger
from repro.obs.tracing import trace
from repro.utils.rng import spawn_seed

_log = get_logger("inference.agent")


@dataclass
class InferencePlan:
    """The agent's resolved plan for one query."""

    query: str
    target_domains: List[str]
    retrieval_method: str
    benchmark_name: str
    candidate_pool: int

    def describe(self) -> str:
        return (
            f"domains={self.target_domains} via {self.retrieval_method}; "
            f"verify on {self.benchmark_name!r} "
            f"(pool={self.candidate_pool})"
        )


@dataclass
class Recommendation:
    """One verified recommendation."""

    model_id: str
    model_name: str
    measured_score: float
    retrieval_score: float
    rationale: str


@dataclass
class InferenceResult:
    """Plan plus the ranked, verified recommendations."""

    plan: InferencePlan
    recommendations: List[Recommendation] = field(default_factory=list)

    def best(self) -> Optional[Recommendation]:
        return self.recommendations[0] if self.recommendations else None


class ModelInferenceAgent:
    """Automates benchmark selection, prompt generation, and model choice."""

    def __init__(
        self,
        lake: ModelLake,
        probes: Optional[ProbeSet] = None,
        engine: Optional[SearchEngine] = None,
        benchmark_docs_per_domain: int = 8,
        seed: int = 0,
    ):
        self.lake = lake
        self.engine = engine or SearchEngine(lake, probes)
        self.benchmark_docs_per_domain = benchmark_docs_per_domain
        self.seed = seed

    # -- planning -----------------------------------------------------------
    def plan(self, query: str, candidate_pool: int = 8) -> InferencePlan:
        """Resolve the query into domains, retrieval method, benchmark."""
        domains = extract_query_domains(query)
        if not domains:
            raise QueryError(
                f"could not map query {query!r} to any lake domain; "
                "try naming the topic (e.g. 'legal', 'medical')"
            )
        return InferencePlan(
            query=query,
            target_domains=domains,
            retrieval_method="hybrid",
            benchmark_name=f"task-bench[{','.join(domains)}]",
            candidate_pool=candidate_pool,
        )

    def _build_benchmark(self, plan: InferencePlan) -> Benchmark:
        """Generate the task-targeted benchmark ("relevant prompts").

        The data is freshly sampled (seed derived from the query), so
        models cannot have memorized it and cards cannot anticipate it.
        """
        seed = spawn_seed(self.seed, f"inference:{plan.query}")
        dataset = make_domain_dataset(
            plan.target_domains,
            docs_per_domain=self.benchmark_docs_per_domain,
            seq_len=24,
            seed=seed,
            name=plan.benchmark_name,
        )
        return Benchmark(plan.benchmark_name, dataset, metric="accuracy")

    # -- execution ---------------------------------------------------------
    def recommend(self, query: str, k: int = 3, candidate_pool: int = 8) -> InferenceResult:
        """Full pipeline: plan, retrieve, benchmark, verify, explain."""
        if k <= 0:
            raise ConfigError(f"k must be positive, got {k}")
        obs_metrics.inc(INFERENCE_REQUESTS)
        with trace("inference.recommend", query=query, k=k, pool=candidate_pool):
            plan = self.plan(query, candidate_pool=candidate_pool)
            with trace("inference.build_benchmark", name=plan.benchmark_name):
                benchmark = self._build_benchmark(plan)

            hits = self.engine.search(
                query, k=candidate_pool, method=plan.retrieval_method
            )
            result = InferenceResult(plan=plan)
            scored = self._verify_candidates(hits, plan, benchmark)
        scored.sort(key=lambda r: (-r.measured_score, -r.retrieval_score, r.model_id))
        result.recommendations = scored[:k]
        _log.debug(
            "recommend.completed",
            query=query,
            candidates=len(scored),
            returned=len(result.recommendations),
        )
        return result

    def _verify_candidates(self, hits, plan, benchmark) -> List[Recommendation]:
        """Run every retrieved candidate on the fresh probe batch."""
        scored: List[Recommendation] = []
        for hit in hits:
            record = self.lake.get_record(hit.model_id)
            model = self.lake.get_model(hit.model_id, force=True)
            with trace(
                "inference.verify",
                model=record.name,
                probes=len(benchmark.dataset.tokens),
            ):
                if hasattr(model, "predict"):
                    measured = score_model(model, benchmark)
                    metric_label = "accuracy"
                else:
                    # Language models: mean per-token likelihood on the bench.
                    from repro.lake.generator import _lm_likelihoods

                    measured = float(
                        _lm_likelihoods(model, benchmark.dataset.tokens).mean()
                    )
                    metric_label = "mean token likelihood"
            obs_metrics.inc(INFERENCE_CANDIDATES_VERIFIED)
            claimed = record.card.metrics.get(
                f"acc_{plan.target_domains[0]}"
            )
            claim_note = (
                f"card claims {claimed:.2f}" if claimed is not None
                else "card makes no metric claim"
            )
            rationale = (
                f"measured {metric_label} {measured:.2f} on fresh "
                f"{'/'.join(plan.target_domains)} benchmark; {claim_note}; "
                f"retrieval score {hit.score:.2f}"
            )
            scored.append(Recommendation(
                model_id=hit.model_id,
                model_name=record.name,
                measured_score=measured,
                retrieval_score=hit.score,
                rationale=rationale,
            ))
        return scored
