"""Model versioning: version graphs, recovery from weights, edge labels."""

from repro.core.versioning.graph import VersionGraph
from repro.core.versioning.distance import (
    behavioral_distance,
    model_distance,
    per_layer_distances,
    states_aligned,
    weight_cosine_distance,
    weight_l2_distance,
)
from repro.core.versioning.classify import classify_transform, looks_like_merge
from repro.core.versioning.recovery import (
    RecoveryConfig,
    RecoveryResult,
    recover_version_graph,
)

__all__ = [
    "VersionGraph",
    "behavioral_distance", "model_distance", "per_layer_distances",
    "states_aligned", "weight_cosine_distance", "weight_l2_distance",
    "classify_transform", "looks_like_merge",
    "RecoveryConfig", "RecoveryResult", "recover_version_graph",
]
