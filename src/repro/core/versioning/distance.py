"""Model distances for version analysis.

Weight-space distances are only defined for parameter-aligned models;
heterogeneous pairs fall back to behavioral distance, mirroring the
paper's viewpoint fallbacks (use intrinsics when available, extrinsics
otherwise).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.index.embedders import BehavioralEmbedder
from repro.nn.module import Module


def states_aligned(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]) -> bool:
    """True if two state dicts have identical names and shapes."""
    if set(a) != set(b):
        return False
    return all(a[name].shape == b[name].shape for name in a)


def weight_l2_distance(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]) -> float:
    """Euclidean distance between aligned parameter vectors."""
    total = 0.0
    for name in a:
        diff = a[name] - b[name]
        total += float((diff * diff).sum())
    return float(np.sqrt(total))


def weight_cosine_distance(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]) -> float:
    """1 - cosine similarity between aligned parameter vectors."""
    dot = 0.0
    norm_a = 0.0
    norm_b = 0.0
    for name in a:
        va, vb = a[name].ravel(), b[name].ravel()
        dot += float(va @ vb)
        norm_a += float(va @ va)
        norm_b += float(vb @ vb)
    denominator = np.sqrt(norm_a) * np.sqrt(norm_b)
    if denominator < 1e-12:
        return 1.0
    return 1.0 - dot / denominator


def per_layer_distances(
    a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]
) -> Dict[str, float]:
    """L2 distance per shared parameter tensor."""
    return {
        name: float(np.linalg.norm(a[name] - b[name]))
        for name in sorted(set(a) & set(b))
        if a[name].shape == b[name].shape
    }


def behavioral_distance(
    model_a: Module, model_b: Module, embedder: BehavioralEmbedder
) -> float:
    """1 - cosine similarity of competence profiles (any architectures)."""
    ea = embedder.embed(model_a)
    eb = embedder.embed(model_b)
    return float(1.0 - ea @ eb)


def model_distance(
    model_a: Module,
    model_b: Module,
    embedder: Optional[BehavioralEmbedder] = None,
) -> float:
    """Weight distance when aligned; behavioral distance otherwise."""
    state_a, state_b = model_a.state_dict(), model_b.state_dict()
    if states_aligned(state_a, state_b):
        return weight_l2_distance(state_a, state_b)
    if embedder is None:
        raise ValueError(
            "models are not weight-aligned; pass a BehavioralEmbedder fallback"
        )
    return behavioral_distance(model_a, model_b, embedder)
