"""Version-graph recovery from weights (MoTHer-style, Horwitz et al.).

When history is missing or hidden, reconstruct "who came from whom"
using only intrinsics:

1. Cluster models by parameter alignment (same names and shapes).
2. Within a cluster, compute pairwise weight distances.
3. Orient candidate edges with direction heuristics (fine-tuning raises
   weight kurtosis; pruning raises sparsity; quantization snaps weights
   to a grid — each is irreversible, so the "more processed" model is
   the child).
4. Solve a minimum-spanning-arborescence over the candidate graph with
   a virtual root whose edge cost acts as the "is a root" threshold —
   clusters therefore decompose into a *forest*, not one forced tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np
from scipy import stats

from repro.core.versioning.classify import classify_transform, looks_like_merge
from repro.core.versioning.distance import states_aligned, weight_l2_distance
from repro.core.versioning.graph import VersionGraph
from repro.lake.lake import ModelLake

_VIRTUAL_ROOT = "__root__"


@dataclass
class RecoveryConfig:
    """Tuning knobs for weight-based version recovery."""

    #: Virtual-root edge cost per node, as a fraction of that node's
    #: median distance to its cluster.  Lower values favor forests (more
    #: roots); higher values force larger trees.  Calibrated on dev lakes.
    root_cost_scale: float = 1.0
    #: Weight of the direction-heuristic penalty (0 disables orientation).
    direction_penalty: float = 0.5
    #: Detect two-parent merges as a post-pass.
    detect_merges: bool = True
    #: Label recovered edges with classify_transform.
    classify_edges: bool = True
    #: Optional extrinsic fallback: probes used to behaviorally attach
    #: models that weight analysis left as roots (distillation students
    #: share no weights with their teachers, but mimic their outputs).
    #: None disables the fallback.
    behavioral_probes: Optional[object] = None
    #: Minimum output-distribution cosine similarity for a behavioral edge.
    behavioral_threshold: float = 0.85


def _weight_kurtosis(state: Dict[str, np.ndarray]) -> float:
    """Kurtosis of the pooled weight distribution (MoTHer's direction cue)."""
    flat = np.concatenate([arr.ravel() for arr in state.values()])
    return float(stats.kurtosis(flat))


def _sparsity(state: Dict[str, np.ndarray]) -> float:
    flat = np.concatenate([arr.ravel() for arr in state.values() if arr.ndim >= 2])
    if flat.size == 0:
        return 0.0
    return float((flat == 0).mean())


def _processedness(state: Dict[str, np.ndarray]) -> Tuple[float, float]:
    """(sparsity, kurtosis): monotone-increasing along release chains."""
    return (_sparsity(state), _weight_kurtosis(state))


def _direction_penalty(
    parent_proc: Tuple[float, float], child_proc: Tuple[float, float]
) -> float:
    """0 when the heuristics agree parent -> child, up to 1 otherwise."""
    penalty = 0.0
    # Sparsity is near-conclusive: pruning only ever adds zeros.
    if parent_proc[0] > child_proc[0] + 1e-9:
        penalty += 0.7
    # Kurtosis rises under fine-tuning (heavy-tailed updates).
    if parent_proc[1] > child_proc[1] + 1e-9:
        penalty += 0.3
    return penalty


@dataclass
class RecoveryResult:
    """Recovered graph plus diagnostics."""

    graph: VersionGraph
    clusters: List[List[str]] = field(default_factory=list)
    merge_edges: List[Tuple[str, str, str]] = field(default_factory=list)
    #: (parent, child, similarity) edges added by the behavioral fallback.
    behavioral_edges: List[Tuple[str, str, float]] = field(default_factory=list)


def recover_version_graph(
    lake: ModelLake,
    model_ids: Optional[Sequence[str]] = None,
    config: Optional[RecoveryConfig] = None,
) -> RecoveryResult:
    """Reconstruct a version forest for ``model_ids`` from weights alone.

    Never consults recorded history — this is the blind baseline that
    recorded/hybrid approaches are compared against (benchmark E2).
    """
    config = config or RecoveryConfig()
    ids = list(model_ids) if model_ids is not None else lake.model_ids()
    states = {mid: lake.get_model(mid, force=True).state_dict() for mid in ids}

    # 1. Cluster by parameter alignment.
    clusters: List[List[str]] = []
    for mid in ids:
        placed = False
        for cluster in clusters:
            if states_aligned(states[cluster[0]], states[mid]):
                cluster.append(mid)
                placed = True
                break
        if not placed:
            clusters.append([mid])

    graph = VersionGraph()
    for mid in ids:
        graph.add_model(mid)
    result = RecoveryResult(graph=graph, clusters=clusters)

    for cluster in clusters:
        if len(cluster) < 2:
            continue
        _recover_cluster(cluster, states, graph, config)

    if config.detect_merges:
        _detect_merges(ids, states, graph, result)
    if config.behavioral_probes is not None:
        _behavioral_fallback(lake, ids, graph, result, config)
    return result


def _behavioral_fallback(
    lake: ModelLake,
    ids: Sequence[str],
    graph: VersionGraph,
    result: "RecoveryResult",
    config: RecoveryConfig,
) -> None:
    """Attach weight-orphans by output-distribution similarity.

    For every model the weight pass left parentless, find the
    behaviorally most similar *earlier* model (upload order is always
    known in a hub).  An edge is added only above the similarity
    threshold, labeled ``behavioral`` with the similarity as confidence.
    Distillation students typically attach to their teacher or to a
    sibling student — either lands them in the correct lineage tree.
    """
    from repro.index.embedders import OutputEmbedder

    embedder = OutputEmbedder(config.behavioral_probes)
    vectors: Dict[str, np.ndarray] = {}
    for mid in ids:
        model = lake.get_model(mid, force=True)
        if hasattr(model, "predict_proba"):
            vectors[mid] = embedder.embed(model)
    created = {mid: lake.get_record(mid).created_at for mid in ids}
    # The globally earliest model is assumed original (something must be).
    earliest = min(vectors, key=lambda m: created[m], default=None)
    for mid in sorted(vectors, key=lambda m: created[m]):
        if mid == earliest or graph.parents(mid):
            continue
        candidates = [
            (float(vectors[mid] @ vectors[other]), other)
            for other in vectors
            if other != mid and created[other] < created[mid]
        ]
        if not candidates:
            continue
        similarity, parent = max(candidates)
        if similarity < config.behavioral_threshold:
            continue
        graph.add_edge(parent, mid, confidence=similarity)
        graph._graph[parent][mid]["kind"] = "behavioral"
        result.behavioral_edges.append((parent, mid, similarity))


def _recover_cluster(
    cluster: List[str],
    states: Dict[str, Dict[str, np.ndarray]],
    graph: VersionGraph,
    config: RecoveryConfig,
) -> None:
    distances: Dict[Tuple[str, str], float] = {}
    for i, a in enumerate(cluster):
        for b in cluster[i + 1 :]:
            distances[(a, b)] = weight_l2_distance(states[a], states[b])
    processed = {mid: _processedness(states[mid]) for mid in cluster}

    # Per-node virtual-root cost: proportional to the node's median
    # distance to the rest of the cluster.  The medoid (a foundation is
    # the hub of its derivation star) gets the cheapest root edge, so it
    # is elected root; satellites attach to their nearest neighbor.
    def _distances_from(mid: str) -> List[float]:
        return [
            dist for (a, b), dist in distances.items() if mid in (a, b)
        ]

    candidate = nx.DiGraph()
    for mid in cluster:
        median_distance = float(np.median(_distances_from(mid))) or 1.0
        root_cost = max(median_distance * config.root_cost_scale, 1e-9)
        candidate.add_edge(_VIRTUAL_ROOT, mid, weight=root_cost)
    for (a, b), dist in distances.items():
        penalty_ab = _direction_penalty(processed[a], processed[b])
        penalty_ba = _direction_penalty(processed[b], processed[a])
        candidate.add_edge(
            a, b, weight=dist * (1.0 + config.direction_penalty * penalty_ab)
        )
        candidate.add_edge(
            b, a, weight=dist * (1.0 + config.direction_penalty * penalty_ba)
        )

    arborescence = nx.minimum_spanning_arborescence(candidate, attr="weight")
    for parent, child in arborescence.edges():
        if parent == _VIRTUAL_ROOT:
            continue
        dist = distances.get((parent, child)) or distances.get((child, parent)) or 0.0
        confidence = 1.0 / (1.0 + dist)
        transform = None
        if config.classify_edges:
            kind = classify_transform(states[parent], states[child])
            graph.add_edge(parent, child, transform=None, confidence=confidence)
            # Annotate kind directly (no TransformRecord for recovered edges).
            graph._graph[parent][child]["kind"] = kind
        else:
            graph.add_edge(parent, child, transform=transform, confidence=confidence)


def _detect_merges(
    ids: Sequence[str],
    states: Dict[str, Dict[str, np.ndarray]],
    graph: VersionGraph,
    result: RecoveryResult,
) -> None:
    """Post-pass: find children that are convex combinations of two others."""
    for child in ids:
        child_state = states[child]
        candidates = [
            other for other in ids
            if other != child and states_aligned(child_state, states[other])
        ]
        for i, a in enumerate(candidates):
            found = False
            for b in candidates[i + 1 :]:
                alpha = looks_like_merge(child_state, states[a], states[b])
                if alpha is None or not 0.05 < alpha < 0.95:
                    continue
                # Rewire: child's parents become both merge sources.
                for parent in list(graph.parents(child)):
                    graph._graph.remove_edge(parent, child)
                graph.add_edge(a, child, confidence=0.9)
                graph._graph[a][child]["kind"] = "merge"
                graph.add_edge(b, child, confidence=0.9)
                graph._graph[b][child]["kind"] = "merge"
                result.merge_edges.append((a, b, child))
                found = True
                break
            if found:
                break
