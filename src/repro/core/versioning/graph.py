"""Version graphs: directed model-derivation graphs with labeled edges.

§3: "construct a directed Model Graph T, where a directed edge between
models indicates that one model is a version of the other. The edges
can describe the transformation."
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.errors import ModelNotFoundError
from repro.lake.lake import ModelLake
from repro.transforms.base import TransformRecord


class VersionGraph:
    """A DAG of model-version relationships.

    Nodes are model ids; an edge ``parent -> child`` says the child was
    derived from the parent, annotated with the transform (when known)
    and a confidence (1.0 for recorded history, <1 for recovered edges).
    """

    def __init__(self) -> None:
        self._graph = nx.DiGraph()

    # -- construction ------------------------------------------------------
    def add_model(self, model_id: str, **attrs) -> None:
        self._graph.add_node(model_id, **attrs)

    def add_edge(
        self,
        parent_id: str,
        child_id: str,
        transform: Optional[TransformRecord] = None,
        confidence: float = 1.0,
    ) -> None:
        self._graph.add_node(parent_id)
        self._graph.add_node(child_id)
        self._graph.add_edge(
            parent_id, child_id,
            kind=transform.kind if transform is not None else None,
            transform=transform,
            confidence=confidence,
        )

    @classmethod
    def from_lake_history(cls, lake: ModelLake) -> "VersionGraph":
        """Build the graph from *public* recorded history only.

        Models with hidden or missing history appear as isolated nodes —
        the gap that :mod:`repro.core.versioning.recovery` fills.
        """
        graph = cls()
        for record in lake:
            graph.add_model(record.model_id, name=record.name)
            if not lake.has_public_history(record.model_id):
                continue
            history = lake.get_history(record.model_id)
            for parent in history.parent_ids:
                if parent in lake:
                    graph.add_edge(parent, record.model_id, history.transform)
        return graph

    # -- queries -------------------------------------------------------------
    def __contains__(self, model_id: str) -> bool:
        return model_id in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self._graph.number_of_edges()

    def nodes(self) -> List[str]:
        return list(self._graph.nodes)

    def edges(self) -> List[Tuple[str, str, dict]]:
        return [(u, v, dict(d)) for u, v, d in self._graph.edges(data=True)]

    def edge_set(self) -> Set[Tuple[str, str]]:
        return set(self._graph.edges())

    def parents(self, model_id: str) -> List[str]:
        self._require(model_id)
        return list(self._graph.predecessors(model_id))

    def children(self, model_id: str) -> List[str]:
        self._require(model_id)
        return list(self._graph.successors(model_id))

    def ancestors(self, model_id: str) -> Set[str]:
        self._require(model_id)
        return set(nx.ancestors(self._graph, model_id))

    def descendants(self, model_id: str) -> Set[str]:
        self._require(model_id)
        return set(nx.descendants(self._graph, model_id))

    def roots(self) -> List[str]:
        return [n for n in self._graph.nodes if self._graph.in_degree(n) == 0]

    def root_of(self, model_id: str) -> str:
        """The foundation at the top of this model's lineage.

        For multi-parent lineages, follows the first parent (primary
        base), matching hub "base model" semantics.
        """
        current = model_id
        self._require(current)
        seen = {current}
        while True:
            parents = self.parents(current)
            if not parents:
                return current
            current = sorted(parents)[0]
            if current in seen:  # defensive: cycles should not happen
                return current
            seen.add(current)

    def lineage_path(self, ancestor: str, descendant: str) -> Optional[List[str]]:
        self._require(ancestor)
        self._require(descendant)
        try:
            return nx.shortest_path(self._graph, ancestor, descendant)
        except nx.NetworkXNoPath:
            return None

    def transform_between(self, parent: str, child: str) -> Optional[TransformRecord]:
        data = self._graph.get_edge_data(parent, child)
        return data.get("transform") if data else None

    def is_version_of(self, first: str, second: str) -> bool:
        """True if the two models share any lineage (either direction)."""
        self._require(first)
        self._require(second)
        undirected = self._graph.to_undirected(as_view=True)
        return nx.has_path(undirected, first, second)

    def to_dot(self, names: Optional[Dict[str, str]] = None) -> str:
        """Graphviz dot rendering (edge labels = transform kinds)."""
        lines = ["digraph versions {", "  rankdir=TB;"]
        for node in self._graph.nodes:
            label = (names or {}).get(node, node[:12])
            lines.append(f'  "{node}" [label="{label}"];')
        for u, v, data in self._graph.edges(data=True):
            kind = data.get("kind") or "?"
            conf = data.get("confidence", 1.0)
            lines.append(f'  "{u}" -> "{v}" [label="{kind} ({conf:.2f})"];')
        lines.append("}")
        return "\n".join(lines)

    def _require(self, model_id: str) -> None:
        if model_id not in self._graph:
            raise ModelNotFoundError(model_id)
