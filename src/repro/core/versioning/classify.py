"""Transform-kind classification from weight deltas.

Given a (parent, child) pair, infer *how* the child was derived — the
edge label of the version graph — from the statistical signature the
transformation left in weight space:

* ``quantize`` — child weights sit on a small uniform value grid,
* ``prune``    — child zeros form a strict superset of parent zeros,
* ``edit``     — exactly one matrix changed, by a rank-one delta,
* ``lora``     — matrix deltas are low-rank, embeddings untouched,
* ``finetune`` — dense, broad delta (the default adaptation signature),
* ``identity`` — weights are (numerically) unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.transforms.base import weight_delta

#: Numeric tolerance for "unchanged" parameters.
_ZERO_TOL = 1e-10


def _changed_matrices(
    parent: Dict[str, np.ndarray], child: Dict[str, np.ndarray]
) -> List[Tuple[str, np.ndarray]]:
    deltas = weight_delta(parent, child)
    return [
        (name, delta)
        for name, delta in sorted(deltas.items())
        if delta.ndim == 2 and np.abs(delta).max() > _ZERO_TOL
    ]


def _is_quantized(child: Dict[str, np.ndarray], max_levels: int = 300) -> bool:
    """True if large tensors take few distinct, uniformly spaced values."""
    grid_votes = 0
    checked = 0
    for arr in child.values():
        if arr.size < 64:
            continue
        checked += 1
        values = np.unique(np.round(arr, 12))
        if len(values) > max_levels or len(values) < 2:
            continue
        gaps = np.diff(values)
        gaps = gaps[gaps > 1e-12]
        if len(gaps) == 0:
            continue
        if gaps.max() / gaps.min() < 1.5 or np.allclose(
            gaps / gaps.min(), np.round(gaps / gaps.min()), atol=0.05
        ):
            grid_votes += 1
    return checked > 0 and grid_votes >= max(1, checked // 2)


def _sparsity(state: Dict[str, np.ndarray]) -> float:
    total = 0
    zeros = 0
    for arr in state.values():
        if arr.ndim < 2:
            continue
        total += arr.size
        zeros += int((arr == 0).sum())
    return zeros / total if total else 0.0


def _prune_superset(parent: Dict[str, np.ndarray], child: Dict[str, np.ndarray]) -> bool:
    """Child zeros include parent zeros, and surviving weights are equal."""
    any_new_zero = False
    for name in parent:
        if name not in child or parent[name].shape != child[name].shape:
            return False
        if parent[name].ndim < 2:
            continue
        p, c = parent[name], child[name]
        child_zero = c == 0
        parent_zero = p == 0
        if (parent_zero & ~child_zero).any():
            return False
        survivors = ~child_zero
        if not np.allclose(p[survivors], c[survivors], atol=1e-12):
            return False
        if (child_zero & ~parent_zero).any():
            any_new_zero = True
    return any_new_zero


def _matrix_rank(delta: np.ndarray) -> int:
    scale = np.abs(delta).max()
    if scale < _ZERO_TOL:
        return 0
    return int(np.linalg.matrix_rank(delta, tol=1e-8 * scale * max(delta.shape)))


def classify_transform(
    parent_state: Dict[str, np.ndarray],
    child_state: Dict[str, np.ndarray],
    lora_rank_threshold: int = 4,
) -> str:
    """Best-guess transform kind for an aligned (parent, child) pair.

    Returns one of ``identity, quantize, prune, edit, lora, finetune,
    unknown``.  ``unknown`` means the states are not parameter-aligned.
    """
    if set(parent_state) != set(child_state) or any(
        parent_state[n].shape != child_state[n].shape for n in parent_state
    ):
        return "unknown"

    deltas = weight_delta(parent_state, child_state)
    max_change = max((np.abs(d).max() for d in deltas.values()), default=0.0)
    if max_change <= _ZERO_TOL:
        return "identity"
    if _prune_superset(parent_state, child_state):
        return "prune"
    if _is_quantized(child_state) and not _is_quantized(parent_state):
        return "quantize"

    changed = _changed_matrices(parent_state, child_state)
    changed_vectors = [
        name for name, delta in sorted(deltas.items())
        if delta.ndim < 2 and np.abs(delta).max() > _ZERO_TOL
    ]
    if changed:
        ranks = [_matrix_rank(delta) for _, delta in changed]
        embedding_changed = any("emb" in name for name, _ in changed)
        if len(changed) == 1 and ranks[0] == 1 and not changed_vectors:
            return "edit"
        if (
            all(r <= lora_rank_threshold for r in ranks)
            and all(min(d.shape) > lora_rank_threshold for _, d in changed)
            and not embedding_changed
        ):
            return "lora"
    return "finetune"


def looks_like_merge(
    child_state: Dict[str, np.ndarray],
    parent_a: Dict[str, np.ndarray],
    parent_b: Dict[str, np.ndarray],
    tolerance: float = 1e-6,
) -> Optional[float]:
    """If child = alpha*a + (1-alpha)*b, return alpha; else None.

    Solves for alpha by least squares over all aligned parameters and
    checks the residual.
    """
    if set(child_state) != set(parent_a) or set(child_state) != set(parent_b):
        return None
    numerator = 0.0
    denominator = 0.0
    for name in child_state:
        if parent_a[name].shape != child_state[name].shape:
            return None
        diff_ab = (parent_a[name] - parent_b[name]).ravel()
        diff_cb = (child_state[name] - parent_b[name]).ravel()
        numerator += float(diff_ab @ diff_cb)
        denominator += float(diff_ab @ diff_ab)
    if denominator < 1e-12:
        return None
    alpha = numerator / denominator
    residual = 0.0
    scale = 0.0
    for name in child_state:
        predicted = alpha * parent_a[name] + (1 - alpha) * parent_b[name]
        residual += float(((child_state[name] - predicted) ** 2).sum())
        scale += float((child_state[name] ** 2).sum())
    if residual / max(scale, 1e-12) < tolerance:
        return float(alpha)
    return None
