"""Documentation generation and verification for model cards."""

from repro.core.docgen.generator import CardGenerator, GenerationEvidence
from repro.core.docgen.verify import CardIssue, CardVerifier

__all__ = ["CardGenerator", "GenerationEvidence", "CardIssue", "CardVerifier"]
