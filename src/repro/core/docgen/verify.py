"""Model-card verification: flag claims contradicted by measurement.

§4: "there remains a critical gap in the verification of model cards.
There is a danger that people could intentionally misinform model
users" (PoisonGPT).  The verifier checks each card claim against
observable evidence and emits typed issues — the lake-side defense.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.docgen.generator import CardGenerator
from repro.lake.lake import ModelLake


@dataclass
class CardIssue:
    """One discrepancy between a card claim and measured evidence."""

    model_id: str
    field: str
    claimed: str
    measured: str
    severity: str  # "warning" | "contradiction"

    def describe(self) -> str:
        return (
            f"[{self.severity}] {self.model_id[:12]}.{self.field}: "
            f"card says {self.claimed!r}, measurement says {self.measured!r}"
        )


class CardVerifier:
    """Checks card claims against behavioral and intrinsic evidence."""

    def __init__(self, generator: CardGenerator, competence_floor: float = 0.5):
        self.generator = generator
        self.competence_floor = competence_floor

    def verify(self, model_id: str) -> List[CardIssue]:
        """All detectable issues with one model's card."""
        lake: ModelLake = self.generator.lake
        card = lake.get_record(model_id).card
        evidence = self.generator.gather_evidence(model_id)
        issues: List[CardIssue] = []

        # 1. Claimed domains the model is measurably bad at.  A warning,
        # not a contradiction: "trained on X" documents history, and a
        # model can truthfully have trained on X yet forgotten it.
        for domain in card.training_domains:
            competence = evidence.domain_competence.get(domain)
            if competence is not None and competence < self.competence_floor:
                issues.append(CardIssue(
                    model_id=model_id,
                    field="training_domains",
                    claimed=domain,
                    measured=f"competence {competence:.2f} < {self.competence_floor}",
                    severity="warning",
                ))

        # 2. Claimed base model that weight analysis cannot corroborate.
        if card.base_model:
            claimed_ids = {r.model_id for r in lake.find_by_name(card.base_model)}
            if not claimed_ids:
                issues.append(CardIssue(
                    model_id=model_id,
                    field="base_model",
                    claimed=card.base_model,
                    measured="no such model in the lake",
                    severity="contradiction",
                ))
            elif (
                evidence.inferred_base is not None
                and evidence.inferred_base not in claimed_ids
            ):
                inferred_name = lake.get_record(evidence.inferred_base).name
                issues.append(CardIssue(
                    model_id=model_id,
                    field="base_model",
                    claimed=card.base_model,
                    measured=f"weights closest to {inferred_name}",
                    severity="warning",
                ))

        # 3. Metric claims far from measured competence.
        for key, claimed_value in card.metrics.items():
            if not key.startswith("acc_") or key == "acc_overall":
                continue
            domain = key[len("acc_"):]
            measured = evidence.domain_competence.get(domain)
            if measured is not None and claimed_value - measured > 0.3:
                issues.append(CardIssue(
                    model_id=model_id,
                    field=f"metrics.{key}",
                    claimed=f"{claimed_value:.2f}",
                    measured=f"{measured:.2f}",
                    severity="contradiction",
                ))

        # 4. "Trained from scratch" claims on models with an obvious parent.
        if (
            card.transform_summary
            and "scratch" in card.transform_summary.lower()
            and evidence.inferred_base is not None
            and evidence.base_distance is not None
            and evidence.inferred_transform not in (None, "unknown")
        ):
            issues.append(CardIssue(
                model_id=model_id,
                field="transform_summary",
                claimed=card.transform_summary,
                measured=(
                    f"weights are a {evidence.inferred_transform} of "
                    f"{lake.get_record(evidence.inferred_base).name}"
                ),
                severity="contradiction",
            ))
        return issues

    def verify_lake(self) -> List[CardIssue]:
        """Verify every card in the lake."""
        issues: List[CardIssue] = []
        for record in self.generator.lake:
            issues.extend(self.verify(record.model_id))
        return issues
