"""Documentation generation: draft model cards from lake analysis.

§6: "upon uploading a model to the model lake, state-of-the-art
techniques for tasks like attribution, versioning, benchmarking ...
can automatically analyze and map the model's relationships ...
key sections of the model card, such as intended use and performance
metrics, can be auto-populated."

The generator consults only observable evidence — behavior on probes,
weights, the (possibly partial) version graph — never the ground truth,
so generated cards can be scored against truth in benchmark E7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.versioning.classify import classify_transform
from repro.core.versioning.distance import states_aligned, weight_l2_distance
from repro.core.versioning.graph import VersionGraph
from repro.data.datasets import TextDataset
from repro.data.domains import DOMAIN_NAMES, domain_index
from repro.data.probes import ProbeSet
from repro.index.embedders import BehavioralEmbedder
from repro.lake.card import ModelCard
from repro.lake.lake import ModelLake
from repro.nn.module import Module


@dataclass
class GenerationEvidence:
    """What the generator inferred, with the signals behind it."""

    inferred_domains: List[str]
    domain_competence: Dict[str, float]
    inferred_base: Optional[str]
    base_distance: Optional[float]
    inferred_transform: Optional[str]


class CardGenerator:
    """Drafts model cards for (possibly undocumented) lake models."""

    def __init__(
        self,
        lake: ModelLake,
        probes: ProbeSet,
        eval_dataset: Optional[TextDataset] = None,
        competence_threshold: float = 0.8,
    ):
        self.lake = lake
        self.probes = probes
        self.eval_dataset = eval_dataset
        self.competence_threshold = competence_threshold
        self.embedder = BehavioralEmbedder(probes)

    # -- evidence gathering -------------------------------------------------
    def domain_competence(self, model: Module) -> Dict[str, float]:
        """Mean probe correctness per domain (matches accuracy semantics).

        Uses argmax correctness rather than soft probability: a model
        that is right but under-confident on short probes still counts
        as competent, mirroring how benchmark accuracy is reported.
        """
        if hasattr(model, "predict_proba"):
            probabilities = model.predict_proba(self.probes.tokens)
            labels = np.array([domain_index(d) for d in self.probes.domains])
            raw = (probabilities.argmax(axis=-1) == labels).astype(np.float64)
        else:
            raw = self.embedder._lm_profile(model)
        competence: Dict[str, float] = {}
        domains = np.asarray(self.probes.domains)
        for domain in sorted(set(self.probes.domains)):
            competence[domain] = float(raw[domains == domain].mean())
        return competence

    def infer_base(self, model_id: str) -> Tuple[Optional[str], Optional[float]]:
        """Nearest aligned *earlier* model in weight space = likely base."""
        record = self.lake.get_record(model_id)
        state = self.lake.get_model(model_id, force=True).state_dict()
        best: Optional[str] = None
        best_distance = np.inf
        for other in self.lake:
            if other.model_id == model_id or other.created_at >= record.created_at:
                continue
            other_state = self.lake.get_model(other.model_id, force=True).state_dict()
            if not states_aligned(state, other_state):
                continue
            distance = weight_l2_distance(state, other_state)
            if distance < best_distance:
                best, best_distance = other.model_id, distance
        if best is None:
            return None, None
        return best, float(best_distance)

    def gather_evidence(self, model_id: str) -> GenerationEvidence:
        model = self.lake.get_model(model_id, force=True)
        competence = self.domain_competence(model)
        strong = [
            d for d, c in competence.items() if c >= self.competence_threshold
        ]
        if not strong:
            best = max(competence, key=competence.get)
            strong = [best]
        base_id, base_distance = self.infer_base(model_id)
        transform: Optional[str] = None
        if base_id is not None:
            base_state = self.lake.get_model(base_id, force=True).state_dict()
            transform = classify_transform(base_state, model.state_dict())
        return GenerationEvidence(
            inferred_domains=sorted(strong),
            domain_competence=competence,
            inferred_base=base_id,
            base_distance=base_distance,
            inferred_transform=transform,
        )

    # -- drafting -------------------------------------------------------------
    def draft_card(self, model_id: str) -> Tuple[ModelCard, GenerationEvidence]:
        """Generate a card draft plus the evidence that justifies it."""
        record = self.lake.get_record(model_id)
        evidence = self.gather_evidence(model_id)
        family = record.family
        domains = evidence.inferred_domains
        generalist = len(domains) >= max(3, len(DOMAIN_NAMES) // 2)

        if generalist:
            description = (
                f"A general-purpose {family} model; measured competence spans "
                f"{len(domains)} domains."
            )
            intended = "General domain classification across heterogeneous text."
        else:
            primary = max(domains, key=lambda d: evidence.domain_competence[d])
            description = (
                f"A {family} model specialized for {primary} text "
                f"(measured competence {evidence.domain_competence[primary]:.2f})."
            )
            intended = (
                f"Classify and analyze {primary} documents; best suited to "
                f"{' and '.join(domains)} content."
            )

        base_name = (
            self.lake.get_record(evidence.inferred_base).name
            if evidence.inferred_base is not None
            else None
        )
        transform_summary = None
        if evidence.inferred_transform and evidence.inferred_transform not in (
            "identity", "unknown",
        ):
            transform_summary = (
                f"{evidence.inferred_transform} of {base_name} "
                f"(weight distance {evidence.base_distance:.3f})"
            )

        metrics = {f"acc_{d}": c for d, c in evidence.domain_competence.items()}
        metrics["acc_overall"] = float(
            np.mean(list(evidence.domain_competence.values()))
        )
        weak = [d for d, c in evidence.domain_competence.items() if c < 0.5]
        limitations = (
            "Measured competence is weak on: " + ", ".join(sorted(weak)) + "."
            if weak else "No weak domains detected on the shared probe set."
        )
        card = ModelCard(
            model_name=record.name,
            description=description,
            intended_use=intended,
            training_data=None,  # not observable without history
            training_domains=domains,
            base_model=base_name,
            transform_summary=transform_summary,
            metrics=metrics,
            limitations=limitations,
            license=record.card.license,
            tags=[family, "classification", *domains],
        )
        return card, evidence

    def fill_missing_fields(self, model_id: str) -> ModelCard:
        """Complete an existing card: keep documented fields, fill gaps."""
        existing = self.lake.get_record(model_id).card
        draft, _ = self.draft_card(model_id)
        merged = existing.copy()
        for field_name in (
            "description", "intended_use", "base_model",
            "transform_summary", "limitations",
        ):
            if not getattr(merged, field_name):
                setattr(merged, field_name, getattr(draft, field_name))
        if not merged.training_domains:
            merged.training_domains = list(draft.training_domains)
        if not merged.metrics:
            merged.metrics = dict(draft.metrics)
        return merged
