"""Training-data attribution: which training items drove a prediction?

§3: "which training data items d in D are most influential on the
decision; in other words, which d, if they were not present in the
training data, would cause the decision to change the most?"

Three estimators, plus the exact (expensive) answer:

* :func:`grad_dot_influence` — single-checkpoint gradient similarity
  (influence-functions style first-order score, Koh & Liang flavored).
* :func:`tracin_influence` — multi-checkpoint TracIn: sums gradient
  dot-products along the training trajectory.
* :func:`input_similarity_baseline` — model-free nearest-neighbor
  baseline the learned estimators must beat.
* :func:`leave_one_out_influence` — ground truth by retraining, used to
  score the estimators in benchmark E3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.nn.models import build_model
from repro.nn.module import Module
from repro.nn.train import example_gradient, flat_gradient, per_example_losses, train_classifier


@dataclass
class AttributionResult:
    """Scores over training items for one test example (higher = more influential)."""

    scores: np.ndarray
    method: str

    def top_k(self, k: int) -> np.ndarray:
        """Indices of the k most influential training items."""
        k = min(k, len(self.scores))
        top = np.argpartition(-self.scores, k - 1)[:k]
        return top[np.argsort(-self.scores[top])]


def grad_dot_influence(
    model: Module,
    train_inputs: np.ndarray,
    train_labels: np.ndarray,
    test_input: np.ndarray,
    test_label: int,
    normalize: bool = True,
) -> AttributionResult:
    """Influence score = <grad(test), grad(train_i)> at the final model.

    ``normalize`` uses cosine similarity instead of the raw dot product,
    which reduces the dominance of high-loss outliers.
    """
    test_grad = flat_gradient(example_gradient(model, test_input, test_label))
    test_norm = np.linalg.norm(test_grad) or 1.0
    scores = np.zeros(len(train_inputs))
    for i in range(len(train_inputs)):
        grad_i = flat_gradient(
            example_gradient(model, train_inputs[i], int(train_labels[i]))
        )
        dot = float(test_grad @ grad_i)
        if normalize:
            dot /= (np.linalg.norm(grad_i) or 1.0) * test_norm
        scores[i] = dot
    return AttributionResult(scores=scores, method="grad_dot")


def tracin_influence(
    checkpoints: Sequence[Dict[str, np.ndarray]],
    checkpoint_lrs: Sequence[float],
    model_template: Module,
    train_inputs: np.ndarray,
    train_labels: np.ndarray,
    test_input: np.ndarray,
    test_label: int,
) -> AttributionResult:
    """TracIn (Pruthi et al.): sum of grad dot-products over checkpoints.

    ``model_template`` is any model with the right architecture; its
    weights are overwritten per checkpoint.
    """
    if len(checkpoints) != len(checkpoint_lrs):
        raise ConfigError(
            f"{len(checkpoints)} checkpoints but {len(checkpoint_lrs)} learning rates"
        )
    if not checkpoints:
        raise ConfigError("tracin_influence requires at least one checkpoint")
    scores = np.zeros(len(train_inputs))
    for state, lr in zip(checkpoints, checkpoint_lrs):
        model_template.load_state_dict(state)
        test_grad = flat_gradient(
            example_gradient(model_template, test_input, test_label)
        )
        for i in range(len(train_inputs)):
            grad_i = flat_gradient(
                example_gradient(model_template, train_inputs[i], int(train_labels[i]))
            )
            scores[i] += lr * float(test_grad @ grad_i)
    return AttributionResult(scores=scores, method="tracin")


def input_similarity_baseline(
    train_inputs: np.ndarray,
    test_input: np.ndarray,
) -> AttributionResult:
    """Model-free baseline: overlap similarity between raw inputs.

    For token matrices this is Jaccard overlap of token sets; for float
    features it is cosine similarity.
    """
    test = np.asarray(test_input)
    scores = np.zeros(len(train_inputs))
    if np.issubdtype(test.dtype, np.integer):
        test_set = set(int(t) for t in test.ravel() if t > 0)
        for i, row in enumerate(train_inputs):
            row_set = set(int(t) for t in np.asarray(row).ravel() if t > 0)
            union = test_set | row_set
            scores[i] = len(test_set & row_set) / len(union) if union else 0.0
    else:
        test_vec = test.ravel()
        test_norm = np.linalg.norm(test_vec) or 1.0
        matrix = np.asarray(train_inputs, dtype=float).reshape(
            len(train_inputs), -1
        )
        norms = np.linalg.norm(matrix, axis=1)
        norms[norms == 0] = 1.0
        scores = matrix @ test_vec / (norms * test_norm)
    return AttributionResult(scores=scores, method="input_similarity")


def random_baseline(num_train: int, seed: int = 0) -> AttributionResult:
    """Random scores — the floor every method must clear."""
    rng = np.random.default_rng(seed)
    return AttributionResult(scores=rng.random(num_train), method="random")


def leave_one_out_influence(
    architecture_spec: Dict,
    train_inputs: np.ndarray,
    train_labels: np.ndarray,
    test_input: np.ndarray,
    test_label: int,
    candidate_indices: Sequence[int],
    epochs: int = 6,
    lr: float = 5e-3,
    seed: int = 0,
) -> AttributionResult:
    """Exact leave-one-out influence by retraining (ground truth).

    Influence of item ``i`` = loss(test | trained without i) -
    loss(test | trained on all): positive means removing the item hurts
    the prediction, i.e. the item supported it.  Only computed for
    ``candidate_indices`` (full LOO is quadratic in practice).
    """
    def _train_without(excluded: Optional[int]) -> float:
        keep = [i for i in range(len(train_inputs)) if i != excluded]
        model = build_model(dict(architecture_spec), seed=seed)
        train_classifier(
            model, train_inputs[keep], train_labels[keep],
            epochs=epochs, lr=lr, seed=seed,
        )
        loss = per_example_losses(
            model, np.asarray(test_input)[None, ...], np.asarray([test_label])
        )
        return float(loss[0])

    full_loss = _train_without(None)
    scores = np.zeros(len(train_inputs))
    for index in candidate_indices:
        scores[index] = _train_without(int(index)) - full_loss
    return AttributionResult(scores=scores, method="leave_one_out")
