"""Representation analysis: which internal directions carry a concept?

§3: "which internal representations or internal 'concepts' within the
model are most important for a decision?"  We extract linear concept
directions from hidden activations (mean-difference, CAV-style) and
measure their causal importance by projection ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.nn.autograd import Tensor
from repro.nn.module import Module


@dataclass
class ConceptDirection:
    """A unit vector in hidden space associated with a concept label."""

    concept: str
    vector: np.ndarray
    strength: float  # separation achieved on the probe data


def extract_concept_direction(
    model: Module,
    positive_tokens: np.ndarray,
    negative_tokens: np.ndarray,
    concept: str = "concept",
) -> ConceptDirection:
    """Mean-difference concept vector in the model's pooled hidden space.

    ``model`` must expose ``embed_tokens`` (the pooled pre-head
    representation used by our classifier families).
    """
    if not hasattr(model, "embed_tokens"):
        raise ConfigError("model must expose embed_tokens for concept extraction")
    positive = model.embed_tokens(positive_tokens).data
    negative = model.embed_tokens(negative_tokens).data
    direction = positive.mean(axis=0) - negative.mean(axis=0)
    norm = np.linalg.norm(direction)
    if norm < 1e-12:
        raise ConfigError("concept direction is degenerate (identical activations)")
    unit = direction / norm
    # Separation: how well the direction splits the two activation sets.
    projections_pos = positive @ unit
    projections_neg = negative @ unit
    pooled_std = float(np.sqrt((projections_pos.var() + projections_neg.var()) / 2)) or 1.0
    strength = float((projections_pos.mean() - projections_neg.mean()) / pooled_std)
    return ConceptDirection(concept=concept, vector=unit, strength=strength)


def ablate_direction(
    model: Module,
    tokens: np.ndarray,
    direction: ConceptDirection,
) -> np.ndarray:
    """Class probabilities after projecting the concept out of the pool.

    Implements the causal test: if removing the direction flips the
    decision, the concept was important for it.
    """
    if not hasattr(model, "embed_tokens") or not hasattr(model, "head"):
        raise ConfigError("model must expose embed_tokens and head")
    pooled = model.embed_tokens(np.asarray(tokens))
    unit = direction.vector
    projected = pooled.data - np.outer(pooled.data @ unit, unit)
    logits = model.head(Tensor(projected))
    return logits.softmax(axis=-1).data


def concept_importance(
    model: Module,
    tokens: np.ndarray,
    direction: ConceptDirection,
    target_class: Optional[int] = None,
) -> float:
    """Drop in target-class probability caused by ablating the concept."""
    tokens = np.asarray(tokens)
    if tokens.ndim == 1:
        tokens = tokens[None, :]
    base = model.predict_proba(tokens)
    ablated = ablate_direction(model, tokens, direction)
    if target_class is None:
        target_class = int(base[0].argmax())
    return float((base[:, target_class] - ablated[:, target_class]).mean())
