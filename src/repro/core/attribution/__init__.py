"""Model attribution: influence, sensitivity, membership, representations."""

from repro.core.attribution.influence import (
    AttributionResult,
    grad_dot_influence,
    input_similarity_baseline,
    leave_one_out_influence,
    random_baseline,
    tracin_influence,
)
from repro.core.attribution.sensitivity import (
    TokenSensitivity,
    domain_keyword_alignment,
    gradient_saliency,
    occlusion_sensitivity,
)
from repro.core.attribution.membership import (
    MembershipResult,
    auc_score,
    calibrated_attack,
    dataset_membership_score,
    loss_threshold_attack,
)
from repro.core.attribution.representation import (
    ConceptDirection,
    ablate_direction,
    concept_importance,
    extract_concept_direction,
)

__all__ = [
    "AttributionResult", "grad_dot_influence", "input_similarity_baseline",
    "leave_one_out_influence", "random_baseline", "tracin_influence",
    "TokenSensitivity", "domain_keyword_alignment", "gradient_saliency",
    "occlusion_sensitivity",
    "MembershipResult", "auc_score", "calibrated_attack",
    "dataset_membership_score", "loss_threshold_attack",
    "ConceptDirection", "ablate_direction", "concept_importance",
    "extract_concept_direction",
]
