"""Membership inference: was item d in the training data D?

§4 frames membership inference attacks (Shokri et al.) as an
attribution tool when history is unavailable — an extrinsic test of
"was this model trained on this data".  We implement the standard
loss-threshold attack and its calibrated variant, plus AUC scoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Module
from repro.nn.train import per_example_losses


@dataclass
class MembershipResult:
    """Scores (higher = more likely member) and derived metrics."""

    scores: np.ndarray
    labels: np.ndarray  # 1 = member, 0 = non-member
    method: str

    @property
    def auc(self) -> float:
        return auc_score(self.labels, self.scores)

    def accuracy_at_best_threshold(self) -> float:
        order = np.argsort(self.scores)
        best = 0.0
        thresholds = np.concatenate([[-np.inf], self.scores[order], [np.inf]])
        for t in thresholds:
            predictions = (self.scores >= t).astype(int)
            best = max(best, float((predictions == self.labels).mean()))
        return best


def auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve (rank-based, ties handled)."""
    labels = np.asarray(labels)
    scores = np.asarray(scores)
    positives = scores[labels == 1]
    negatives = scores[labels == 0]
    if len(positives) == 0 or len(negatives) == 0:
        raise ConfigError("AUC needs both member and non-member examples")
    # Mann-Whitney U with tie correction via average ranks.
    ranks = np.argsort(np.argsort(np.concatenate([positives, negatives]))) + 1.0
    combined = np.concatenate([positives, negatives])
    order = np.argsort(combined)
    sorted_scores = combined[order]
    avg_ranks = np.empty_like(ranks)
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        avg = (i + j) / 2.0 + 1.0
        avg_ranks[order[i : j + 1]] = avg
        i = j + 1
    rank_sum = avg_ranks[: len(positives)].sum()
    u = rank_sum - len(positives) * (len(positives) + 1) / 2.0
    return float(u / (len(positives) * len(negatives)))


def loss_threshold_attack(
    model: Module,
    member_inputs: np.ndarray,
    member_labels: np.ndarray,
    nonmember_inputs: np.ndarray,
    nonmember_labels: np.ndarray,
) -> MembershipResult:
    """Score = -loss: members tend to have lower loss than non-members."""
    member_losses = per_example_losses(model, member_inputs, member_labels)
    nonmember_losses = per_example_losses(model, nonmember_inputs, nonmember_labels)
    scores = -np.concatenate([member_losses, nonmember_losses])
    labels = np.concatenate([
        np.ones(len(member_losses)), np.zeros(len(nonmember_losses))
    ])
    return MembershipResult(scores=scores, labels=labels, method="loss_threshold")


def calibrated_attack(
    model: Module,
    reference: Module,
    member_inputs: np.ndarray,
    member_labels: np.ndarray,
    nonmember_inputs: np.ndarray,
    nonmember_labels: np.ndarray,
) -> MembershipResult:
    """Difficulty-calibrated score: reference-model loss minus target loss.

    The reference model (same architecture, trained on disjoint data)
    absorbs per-example difficulty, sharpening the attack — the standard
    "shadow model" refinement.
    """
    target_member = per_example_losses(model, member_inputs, member_labels)
    target_nonmember = per_example_losses(model, nonmember_inputs, nonmember_labels)
    ref_member = per_example_losses(reference, member_inputs, member_labels)
    ref_nonmember = per_example_losses(reference, nonmember_inputs, nonmember_labels)
    scores = np.concatenate([
        ref_member - target_member, ref_nonmember - target_nonmember
    ])
    labels = np.concatenate([
        np.ones(len(target_member)), np.zeros(len(target_nonmember))
    ])
    return MembershipResult(scores=scores, labels=labels, method="calibrated")


def dataset_membership_score(
    model: Module,
    dataset_inputs: np.ndarray,
    dataset_labels: np.ndarray,
    reference_inputs: np.ndarray,
    reference_labels: np.ndarray,
) -> float:
    """Aggregate signal that a *dataset* was part of a model's training.

    Mean loss gap (reference minus candidate): strongly positive means
    the model fits the candidate dataset far better than comparable
    fresh data — evidence it trained on it.  Used by dataset-based model
    search when history is missing.
    """
    candidate = per_example_losses(model, dataset_inputs, dataset_labels)
    reference = per_example_losses(model, reference_inputs, reference_labels)
    return float(reference.mean() - candidate.mean())
