"""Sensitivity analysis on model extrinsics.

§3: "which aspects of the inputs to f_theta or p_theta are most
important in a model's prediction of a particular output?"  Two
complementary estimators over token inputs:

* occlusion — drop each token and measure the output change (black-box,
  works with extrinsics only);
* gradient saliency — gradient of the target logit w.r.t. the token's
  embedding (needs intrinsics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.nn.autograd import Tensor
from repro.nn.module import Module


@dataclass
class TokenSensitivity:
    """Per-position importance scores for one input."""

    positions: np.ndarray        # indices of scored (non-pad) positions
    scores: np.ndarray           # same length as positions
    method: str

    def top_positions(self, k: int) -> np.ndarray:
        k = min(k, len(self.positions))
        order = np.argsort(-self.scores)[:k]
        return self.positions[order]


def occlusion_sensitivity(
    model: Module,
    tokens: np.ndarray,
    target_class: Optional[int] = None,
    pad_id: int = 0,
) -> TokenSensitivity:
    """Importance of token i = drop in target probability when i is padded.

    Purely extrinsic: only requires calling the model, so it applies to
    API-only models too.
    """
    tokens = np.asarray(tokens).ravel()
    base_probs = model.predict_proba(tokens[None, :])[0]
    if target_class is None:
        target_class = int(base_probs.argmax())
    base = base_probs[target_class]
    positions = np.where(tokens != pad_id)[0]
    if len(positions) == 0:
        raise ConfigError("input contains only padding tokens")
    # Batch all occlusions in one forward pass.
    occluded = np.repeat(tokens[None, :], len(positions), axis=0)
    occluded[np.arange(len(positions)), positions] = pad_id
    probs = model.predict_proba(occluded)[:, target_class]
    scores = base - probs
    return TokenSensitivity(positions=positions, scores=scores, method="occlusion")


def gradient_saliency(
    model: Module,
    tokens: np.ndarray,
    target_class: Optional[int] = None,
    pad_id: int = 0,
) -> TokenSensitivity:
    """Importance = || d logit_target / d embedding_i || (grad-x-input).

    Requires intrinsic access (gradients through the embedding layer).
    """
    tokens = np.asarray(tokens).ravel()
    if not hasattr(model, "embedding"):
        raise ConfigError("gradient_saliency requires a model with an embedding layer")
    model.zero_grad()
    logits = model(tokens[None, :])
    if target_class is None:
        target_class = int(logits.data[0].argmax())
    logits[0, target_class].backward()
    emb_grad = model.embedding.weight.grad
    if emb_grad is None:
        raise ConfigError("no gradient reached the embedding layer")
    positions = np.where(tokens != pad_id)[0]
    scores = np.array([
        float(np.linalg.norm(emb_grad[tokens[p]])) for p in positions
    ])
    model.zero_grad()
    return TokenSensitivity(positions=positions, scores=scores, method="gradient")


def domain_keyword_alignment(
    sensitivity: TokenSensitivity,
    tokens: np.ndarray,
    keyword_ids: set,
    k: int = 5,
) -> float:
    """Fraction of the top-k sensitive tokens that are domain keywords.

    Used by benchmark E3's sanity check: a domain classifier's decisions
    should be attributed to domain content words, not function words.
    """
    tokens = np.asarray(tokens).ravel()
    top = sensitivity.top_positions(k)
    if len(top) == 0:
        return 0.0
    hits = sum(1 for p in top if int(tokens[p]) in keyword_ids)
    return hits / len(top)
