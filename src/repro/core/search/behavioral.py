"""Content-based (behavioral) model search.

The paper's core search proposal: rank models by what they *do*, not
what their cards say.  Behavioral embeddings (competence profiles over a
shared probe set) support three query shapes:

* a **task profile** — "find models good at legal text" becomes an
  indicator profile over the legal probes;
* a **model as query** (Lu et al.) — rank by similarity to a query
  model's behavior;
* a **task spec** — explicit (inputs, desired outputs) pairs scored
  extrinsically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.domains import DOMAIN_NAMES, domain_index, get_domain
from repro.data.probes import ProbeSet
from repro.errors import ConfigError
from repro.index.cache import EmbeddingCache
from repro.index.embedders import BehavioralEmbedder, l2_normalize
from repro.index.flat import FlatIndex
from repro.lake.lake import ModelLake
from repro.nn.module import Module
from repro.utils.text import simple_tokenize


@dataclass
class TaskSpec:
    """An extrinsic task: inputs plus the outputs a good model produces.

    Matches §3's "task function Q: X -> Y" formulation.
    """

    inputs: np.ndarray
    desired_labels: np.ndarray
    name: str = "task"


def task_profile_vector(probes: ProbeSet, target_domains: Sequence[str]) -> np.ndarray:
    """Indicator competence profile: 1 on probes from target domains.

    A model that is perfectly competent exactly on the target domains
    has maximal cosine similarity with this vector.
    """
    wanted = set(target_domains)
    unknown = wanted - set(DOMAIN_NAMES)
    if unknown:
        raise ConfigError(f"unknown domains in task profile: {sorted(unknown)}")
    vector = np.array([1.0 if d in wanted else 0.0 for d in probes.domains])
    if vector.sum() == 0:
        raise ConfigError("no probes cover the requested domains")
    return l2_normalize(vector)


def extract_query_domains(query_text: str) -> List[str]:
    """Map free text to the domains whose vocabulary it mentions.

    Domain names themselves and any domain content word count as
    evidence; ties are broken toward domains with more hits.
    """
    tokens = set(simple_tokenize(query_text))
    hits: Dict[str, int] = {}
    for name in DOMAIN_NAMES:
        domain = get_domain(name)
        score = 0
        if name in tokens:
            score += 3
        score += len(tokens.intersection(domain.content_words()))
        if score > 0:
            hits[name] = score
    if not hits:
        return []
    best = max(hits.values())
    return sorted([d for d, s in hits.items() if s >= max(1, best)])


class BehavioralSearcher:
    """Behavioral index over a lake with the three query shapes.

    ``index_backend`` selects the ANN structure: ``"flat"`` (exact, the
    default at laptop scale), ``"hnsw"`` (sublinear, the §5 indexer for
    large lakes), or ``"sharded"`` (one HNSW graph per weight-digest
    shard, built via the wave executor and merged deterministically —
    the out-of-core story for sharded lakes).

    Profiles are computed in one batch and fed to the index's bulk
    ``build``; a :class:`~repro.index.cache.EmbeddingCache` (keyed by
    weight-store digest) lets warm rebuilds skip model loading and
    probing entirely.
    """

    def __init__(
        self,
        lake: ModelLake,
        probes: ProbeSet,
        index_backend: str = "flat",
        cache: Optional[EmbeddingCache] = None,
        index_workers: int = 1,
    ):
        self.lake = lake
        self.probes = probes
        self.embedder = BehavioralEmbedder(probes)
        layout = getattr(lake, "storage_layout", None)
        if index_backend == "flat":
            self._index = FlatIndex()
        elif index_backend == "hnsw":
            from repro.index.hnsw import HNSWIndex

            self._index = HNSWIndex(m=8, ef_construction=64, ef_search=48, seed=0)
        elif index_backend == "sharded":
            from repro.index.sharded import ShardedIndex

            self._index = ShardedIndex(
                backend="hnsw",
                prefix_len=layout.prefix_len if layout is not None else 2,
                workers=index_workers,
                m=8, ef_construction=64, ef_search=48, seed=0,
            )
        else:
            raise ConfigError(
                f"unknown index_backend {index_backend!r}; "
                f"expected flat|hnsw|sharded"
            )
        self.index_backend = index_backend
        self._profiles: Dict[str, np.ndarray] = {}
        space = self.embedder.space_key
        ids: List[str] = []
        vectors: List[np.ndarray] = []
        digests: List[str] = []
        for record in lake:
            vector = (
                cache.get(space, record.weights_digest)
                if cache is not None else None
            )
            if vector is None:
                model = lake.get_model(record.model_id, force=True)
                vector = self.embedder.embed(model)
                if cache is not None:
                    cache.put(space, record.weights_digest, vector)
            self._profiles[record.model_id] = vector
            ids.append(record.model_id)
            vectors.append(vector)
            digests.append(record.weights_digest)
        if ids:
            if index_backend == "sharded":
                # Shard keys mirror the lake's on-disk partition, so a
                # shard's index is built from exactly the blobs that
                # live together.
                keys = [d[: self._index.prefix_len] for d in digests]
                self._index.build(ids, np.stack(vectors), keys=keys)
            else:
                self._index.build(ids, np.stack(vectors))

    @property
    def index(self):
        return self._index

    def profile_of(self, model_id: str) -> np.ndarray:
        return self._profiles[model_id]

    def search_domains(
        self, target_domains: Sequence[str], k: int = 10
    ) -> List[Tuple[str, float]]:
        """Rank models by competence on the target domains."""
        query = task_profile_vector(self.probes, target_domains)
        return self._index.query(query, k=k)

    def search_text(self, query_text: str, k: int = 10) -> List[Tuple[str, float]]:
        """Free-text query -> domain profile -> behavioral ranking."""
        domains = extract_query_domains(query_text)
        if not domains:
            return []
        return self.search_domains(domains, k=k)

    def search_text_batch(
        self, query_texts: Sequence[str], k: int = 10
    ) -> List[List[Tuple[str, float]]]:
        """Batched free-text search: one index pass for the whole batch.

        Positionally aligned with ``query_texts``.  Queries that map to
        no domains return ``[]`` exactly as :meth:`search_text` does;
        the rest are stacked into a single profile matrix and scored by
        the index's ``query_batch`` (one matrix-matrix product on the
        flat backend instead of one matrix-vector product per query).
        """
        results: List[List[Tuple[str, float]]] = [[] for _ in query_texts]
        profiles: List[np.ndarray] = []
        positions: List[int] = []
        for position, query_text in enumerate(query_texts):
            domains = extract_query_domains(query_text)
            if domains:
                profiles.append(task_profile_vector(self.probes, domains))
                positions.append(position)
        if profiles:
            batched = self._index.query_batch(np.stack(profiles), k=k)
            for position, hits in zip(positions, batched):
                results[position] = hits
        return results

    def search_by_model(
        self, query_model: Module, k: int = 10, exclude_id: Optional[str] = None
    ) -> List[Tuple[str, float]]:
        """Model-as-query related-model search (Lu et al. extended)."""
        vector = self.embedder.embed(query_model)
        results = self._index.query(vector, k=k + (1 if exclude_id else 0))
        if exclude_id is not None:
            results = [(i, s) for i, s in results if i != exclude_id][:k]
        return results

    def search_by_task(self, task: TaskSpec, k: int = 10) -> List[Tuple[str, float]]:
        """Score every model's behavior directly on an explicit task.

        This is exhaustive extrinsic evaluation (no index) — the
        reference ranking other search modes approximate.
        """
        scored: List[Tuple[str, float]] = []
        for record in self.lake:
            model = self.lake.get_model(record.model_id, force=True)
            if hasattr(model, "predict"):
                predictions = model.predict(task.inputs)
                score = float((predictions == task.desired_labels).mean())
            else:
                score = 0.0
            scored.append((record.model_id, score))
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        return scored[:k]
