"""Keyword (metadata) search over model cards: BM25.

This is "the current solution pipeline" the paper describes — search
over names and documentation — implemented properly (BM25 with an
inverted index) so it is a strong baseline.  Its failure mode is the
paper's motivation: it can only ever be as good as the cards.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.lake.lake import ModelLake
from repro.utils.text import simple_tokenize


class BM25Index:
    """Okapi BM25 over arbitrary (doc_id, text) pairs."""

    def __init__(self, k1: float = 1.5, b: float = 0.75):
        if k1 <= 0 or not 0 <= b <= 1:
            raise ConfigError(f"invalid BM25 params k1={k1}, b={b}")
        self.k1 = k1
        self.b = b
        self._postings: Dict[str, Dict[str, int]] = defaultdict(dict)
        self._doc_lengths: Dict[str, int] = {}
        self._avg_length = 0.0

    def __len__(self) -> int:
        return len(self._doc_lengths)

    def add(self, doc_id: str, text: str) -> None:
        tokens = simple_tokenize(text)
        self._doc_lengths[doc_id] = len(tokens)
        counts: Dict[str, int] = defaultdict(int)
        for token in tokens:
            counts[token] += 1
        for token, count in counts.items():
            self._postings[token][doc_id] = count
        total = sum(self._doc_lengths.values())
        self._avg_length = total / len(self._doc_lengths)

    def query(self, text: str, k: int = 10) -> List[Tuple[str, float]]:
        """Top-k (doc_id, bm25 score), best first; empty-score docs omitted."""
        if not self._doc_lengths:
            return []
        num_docs = len(self._doc_lengths)
        scores: Dict[str, float] = defaultdict(float)
        for token in simple_tokenize(text):
            posting = self._postings.get(token)
            if not posting:
                continue
            df = len(posting)
            idf = math.log(1.0 + (num_docs - df + 0.5) / (df + 0.5))
            for doc_id, tf in posting.items():
                length_norm = 1.0 - self.b + self.b * (
                    self._doc_lengths[doc_id] / max(self._avg_length, 1e-9)
                )
                scores[doc_id] += idf * tf * (self.k1 + 1) / (tf + self.k1 * length_norm)
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]


def build_card_index(lake: ModelLake) -> BM25Index:
    """BM25 index over every model card in the lake."""
    index = BM25Index()
    for record in lake:
        index.add(record.model_id, record.card.text())
    return index
