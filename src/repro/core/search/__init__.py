"""Model search: keyword, behavioral, hybrid, dataset, declarative."""

from repro.core.search.keyword import BM25Index, build_card_index
from repro.core.search.behavioral import (
    BehavioralSearcher,
    TaskSpec,
    extract_query_domains,
    task_profile_vector,
)
from repro.core.search.dataset_search import DatasetSearchHit, models_trained_on
from repro.core.search.engine import SEARCH_METHODS, SearchEngine, SearchHit
from repro.core.search.parser import (
    Condition,
    ModelQuery,
    execute_query,
    parse_query,
)

__all__ = [
    "BM25Index", "build_card_index",
    "BehavioralSearcher", "TaskSpec", "extract_query_domains",
    "task_profile_vector",
    "DatasetSearchHit", "models_trained_on",
    "SEARCH_METHODS", "SearchEngine", "SearchHit",
    "Condition", "ModelQuery", "execute_query", "parse_query",
]
