"""The model search engine: one facade over every search mode.

Figure 2's flow — a user query is mapped to a suitable indexer, the
indexer retrieves, and ranked models come back.  Modes:

* ``keyword``    — BM25 over model cards (metadata-only baseline),
* ``behavioral`` — competence-profile search (content-based),
* ``weight``     — intrinsic weight-statistic similarity,
* ``hybrid``     — score fusion of keyword and behavioral channels.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.search.behavioral import (
    BehavioralSearcher,
    TaskSpec,
    extract_query_domains,
)
from repro.core.search.dataset_search import DatasetSearchHit, models_trained_on
from repro.core.search.keyword import BM25Index, build_card_index
from repro.data.datasets import TextDataset
from repro.data.probes import ProbeSet, make_text_probes
from repro.errors import ConfigError, ModelNotFoundError
from repro.index.cache import EmbeddingCache
from repro.index.embedders import WeightStatEmbedder
from repro.index.flat import FlatIndex
from repro.index.sharded import ShardedIndex
from repro.lake.lake import ModelLake
from repro.nn.module import Module
from repro.obs import metrics as obs_metrics
from repro.obs.instrument import (
    SEARCH_ENGINE_BUILDS,
    SEARCH_LATENCY,
    SEARCH_QUERIES,
)
from repro.obs.logging import get_logger
from repro.obs.tracing import trace

_log = get_logger("search.engine")

# Instrument objects resolved once at import; registry.reset() zeroes them
# in place, so the references stay valid for the life of the process.
_queries_counter = obs_metrics.get_registry().counter(SEARCH_QUERIES)
_latency_histogram = obs_metrics.get_registry().histogram(SEARCH_LATENCY)

SEARCH_METHODS = ("keyword", "behavioral", "weight", "hybrid")


@dataclass
class SearchHit:
    """One ranked search result."""

    model_id: str
    score: float
    method: str

    def __iter__(self):
        yield self.model_id
        yield self.score


class SearchEngine:
    """Builds and queries all indexes for one lake snapshot.

    The engine indexes at construction time; re-create it after lake
    mutations (real deployments would index incrementally — see
    :mod:`repro.core.benchmarking.lifelong` for the incremental story).

    ``cache_dir`` (conventionally ``<lake>/cache/``) enables the
    persistent embedding cache: rebuilds against unchanged weights skip
    model rehydration and embedding, loading vectors by weight digest
    instead.  Pass an :class:`EmbeddingCache` via ``cache`` to share one
    across engines (``cache_dir`` is then ignored).
    """

    def __init__(
        self,
        lake: ModelLake,
        probes: Optional[ProbeSet] = None,
        hybrid_alpha: float = 0.5,
        index_backend: str = "flat",
        cache_dir: Optional[str] = None,
        cache: Optional[EmbeddingCache] = None,
        index_workers: int = 1,
    ):
        if not 0.0 <= hybrid_alpha <= 1.0:
            raise ConfigError(f"hybrid_alpha must be in [0, 1], got {hybrid_alpha}")
        self.lake = lake
        self.probes = probes or make_text_probes()
        self.hybrid_alpha = hybrid_alpha
        # On a sharded lake the embedding cache shards by the same digest
        # prefix as the weight store, so a rebuild only opens the cache
        # shards it actually touches.
        layout = getattr(lake, "storage_layout", None)
        sharded = layout is not None and layout.sharded
        if cache is None and cache_dir is not None:
            cache = EmbeddingCache(
                cache_dir,
                prefix_len=layout.prefix_len if sharded else None,
            )
        self.cache = cache
        with trace("search.engine.build", models=len(lake), backend=index_backend):
            self.keyword_index: BM25Index = build_card_index(lake)
            self.behavioral: BehavioralSearcher = BehavioralSearcher(
                lake, self.probes, index_backend=index_backend, cache=cache,
                index_workers=index_workers,
            )
            self._weight_embedder = WeightStatEmbedder()
            space = self._weight_embedder.space_key
            ids: List[str] = []
            vectors: List[np.ndarray] = []
            digests: List[str] = []
            for record in lake:
                vector = (
                    cache.get(space, record.weights_digest)
                    if cache is not None else None
                )
                if vector is None:
                    model = lake.get_model(record.model_id, force=True)
                    vector = self._weight_embedder.embed(model)
                    if cache is not None:
                        cache.put(space, record.weights_digest, vector)
                ids.append(record.model_id)
                vectors.append(vector)
                digests.append(record.weights_digest)
            if sharded:
                # Per-shard exact scans merged by (-score, id): identical
                # results to one global flat index, built shard-by-shard.
                self._weight_index = ShardedIndex(
                    backend="flat", prefix_len=layout.prefix_len,
                    workers=index_workers,
                )
                if ids:
                    keys = [d[: layout.prefix_len] for d in digests]
                    self._weight_index.build(ids, np.stack(vectors), keys=keys)
            else:
                self._weight_index = FlatIndex()
                if ids:
                    self._weight_index.build(ids, np.stack(vectors))
            if cache is not None:
                cache.flush()
        obs_metrics.inc(SEARCH_ENGINE_BUILDS)
        _log.debug("engine.built", models=len(lake), backend=index_backend)

    # ------------------------------------------------------------------
    # Text queries
    # ------------------------------------------------------------------
    def search(
        self, query_text: str, k: int = 10, method: str = "hybrid"
    ) -> List[SearchHit]:
        """Rank models for a free-text query using the chosen method."""
        if method not in SEARCH_METHODS:
            raise ConfigError(f"unknown method {method!r}; expected {SEARCH_METHODS}")
        start = time.perf_counter()
        with trace("search.query", method=method, k=k):
            if method == "keyword":
                results = self.keyword_index.query(query_text, k=k)
            elif method == "behavioral":
                results = self.behavioral.search_text(query_text, k=k)
            elif method == "weight":
                raise ConfigError(
                    "weight search needs a model as query; use related_models()"
                )
            else:
                results = self._hybrid_search(query_text, k=k)
        _queries_counter.inc()
        _latency_histogram.observe(time.perf_counter() - start)
        return [SearchHit(mid, score, method) for mid, score in results]

    def search_batch(
        self, queries: Sequence[Tuple[str, int, str]]
    ) -> List[List[SearchHit]]:
        """Rank a batch of ``(query_text, k, method)`` triples at once.

        The serve layer's micro-batcher funnels coalesced requests here:
        every behavioral lookup the batch needs (including the
        behavioral channel of each hybrid query) is grouped by effective
        k, deduplicated, and scored in one batched index pass per group,
        so N coalesced queries cost one matrix scan instead of N.
        Results align positionally with ``queries``, and each element
        matches what :meth:`search` would return for the same triple.
        """
        for _, _, method in queries:
            if method not in SEARCH_METHODS:
                raise ConfigError(
                    f"unknown method {method!r}; expected {SEARCH_METHODS}"
                )
            if method == "weight":
                raise ConfigError(
                    "weight search needs a model as query; use related_models()"
                )
        start = time.perf_counter()
        with trace("search.query_batch", size=len(queries)):
            # Unique behavioral lookups the batch needs: behavioral
            # queries at their own k, hybrid queries at their pool size.
            needed: Dict[Tuple[str, int], List[Tuple[str, float]]] = {}
            for query_text, k, method in queries:
                if method == "behavioral":
                    needed[(query_text, k)] = []
                elif method == "hybrid":
                    needed[(query_text, max(k * 5, 20))] = []
            by_k: Dict[int, List[str]] = {}
            for query_text, k_eff in needed:
                by_k.setdefault(k_eff, []).append(query_text)
            for k_eff in sorted(by_k):
                texts = by_k[k_eff]
                for query_text, hits in zip(
                    texts, self.behavioral.search_text_batch(texts, k=k_eff)
                ):
                    needed[(query_text, k_eff)] = hits
            out: List[List[SearchHit]] = []
            for query_text, k, method in queries:
                if method == "keyword":
                    results = self.keyword_index.query(query_text, k=k)
                elif method == "behavioral":
                    results = needed[(query_text, k)]
                else:
                    results = self._fuse_hybrid(
                        query_text, k, needed[(query_text, max(k * 5, 20))]
                    )
                out.append([SearchHit(mid, score, method) for mid, score in results])
        _queries_counter.inc(len(queries))
        _latency_histogram.observe(time.perf_counter() - start)
        return out

    def _hybrid_search(self, query_text: str, k: int) -> List[Tuple[str, float]]:
        """alpha * normalized-BM25 + (1 - alpha) * behavioral similarity."""
        pool = max(k * 5, 20)
        behavioral = self.behavioral.search_text(query_text, k=pool)
        return self._fuse_hybrid(query_text, k, behavioral)

    def _fuse_hybrid(
        self,
        query_text: str,
        k: int,
        behavioral_hits: Sequence[Tuple[str, float]],
    ) -> List[Tuple[str, float]]:
        """Fuse precomputed behavioral hits with a fresh BM25 channel.

        Shared by the single-query and batched paths so both fuse with
        exactly the same arithmetic and ``(-score, id)`` tie-break.
        """
        with trace("search.hybrid", k=k):
            pool = max(k * 5, 20)
            keyword = dict(self.keyword_index.query(query_text, k=pool))
            max_bm25 = max(keyword.values()) if keyword else 1.0
            behavioral = dict(behavioral_hits)
            ids = set(keyword) | set(behavioral)
            alpha = self.hybrid_alpha
            fused = {
                mid: alpha * (keyword.get(mid, 0.0) / max_bm25)
                + (1 - alpha) * behavioral.get(mid, 0.0)
                for mid in ids
            }
            ranked = sorted(fused.items(), key=lambda kv: (-kv[1], kv[0]))
            return ranked[:k]

    # ------------------------------------------------------------------
    # Structured / model / dataset queries
    # ------------------------------------------------------------------
    def search_domains(self, domains: Sequence[str], k: int = 10) -> List[SearchHit]:
        results = self.behavioral.search_domains(domains, k=k)
        return [SearchHit(mid, score, "behavioral") for mid, score in results]

    def search_by_task(self, task: TaskSpec, k: int = 10) -> List[SearchHit]:
        results = self.behavioral.search_by_task(task, k=k)
        return [SearchHit(mid, score, "task_eval") for mid, score in results]

    def related_models(
        self, model_id: str, k: int = 10, view: str = "behavioral"
    ) -> List[SearchHit]:
        """Model-as-query search from an existing lake model."""
        record = self.lake.get_record(model_id)
        model = self.lake.get_model(model_id, force=True)
        if view == "behavioral":
            results = self.behavioral.search_by_model(model, k=k, exclude_id=model_id)
        elif view == "weight":
            vector = self._weight_embedder.embed(model)
            results = [
                (mid, score)
                for mid, score in self._weight_index.query(vector, k=k + 1)
                if mid != model_id
            ][:k]
        else:
            raise ConfigError(f"unknown view {view!r}; expected behavioral|weight")
        return [SearchHit(mid, score, f"related_{view}") for mid, score in results]

    def related_to_external_model(self, model: Module, k: int = 10) -> List[SearchHit]:
        """Model-as-query where the query model is not in the lake."""
        results = self.behavioral.search_by_model(model, k=k)
        return [SearchHit(mid, score, "related_behavioral") for mid, score in results]

    def models_trained_on(
        self,
        dataset: TextDataset,
        reference: Optional[TextDataset] = None,
        include_versions: bool = True,
    ) -> List[DatasetSearchHit]:
        return models_trained_on(
            self.lake, dataset, reference=reference, include_versions=include_versions
        )

    def models_outperforming(
        self, model_id: str, metric: str, k: int = 10
    ) -> List[SearchHit]:
        """Models whose recorded ``metric`` beats the reference model's.

        Realizes the query "Find models that outperform Model X on
        Benchmark Y" over lake-recorded benchmark metrics.
        """
        reference = self.lake.get_record(model_id)
        if metric not in reference.eval_metrics:
            raise ConfigError(
                f"model {model_id!r} has no recorded metric {metric!r}"
            )
        target = reference.eval_metrics[metric]
        hits = [
            SearchHit(record.model_id, record.eval_metrics[metric], "metric")
            for record in self.lake
            if record.model_id != model_id
            and record.eval_metrics.get(metric, -np.inf) > target
        ]
        hits.sort(key=lambda h: (-h.score, h.model_id))
        return hits[:k]

    def resolve_name(self, name: str) -> str:
        """Model name -> model id (exact match required, unique)."""
        matches = self.lake.find_by_name(name)
        if not matches:
            raise ModelNotFoundError(name)
        if len(matches) > 1:
            raise ConfigError(f"model name {name!r} is ambiguous ({len(matches)} hits)")
        return matches[0].model_id
