"""Dataset-based model search: "find models trained on this dataset".

§3: straight-forward when history is recorded; "when it is not fully
explicit, we may leverage extrinsic or intrinsic clues".  We implement
both paths and let the searcher fall back per model:

* history path — compare the model's recorded dataset digest against
  the query dataset's version closure in the registry;
* extrinsic path — membership-inference signal: does the model fit the
  query dataset conspicuously better than matched fresh data?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.attribution.membership import dataset_membership_score
from repro.data.datasets import TextDataset
from repro.errors import HistoryUnavailableError
from repro.lake.lake import ModelLake


@dataclass
class DatasetSearchHit:
    """One model matched to the query dataset."""

    model_id: str
    score: float
    evidence: str  # "history" | "history-version" | "membership"


def models_trained_on(
    lake: ModelLake,
    dataset: TextDataset,
    reference: Optional[TextDataset] = None,
    include_versions: bool = True,
    membership_threshold: float = 0.15,
) -> List[DatasetSearchHit]:
    """All models plausibly trained on ``dataset`` (or a version of it).

    Models with public history are matched exactly (score 1.0) or via
    the dataset registry's version closure (score 0.9).  Models without
    usable history are scored by the membership signal when a
    ``reference`` dataset is supplied.
    """
    digest = dataset.content_digest()
    version_closure = set()
    if include_versions and digest in lake.datasets:
        version_closure = lake.datasets.versions_of(digest)

    hits: List[DatasetSearchHit] = []
    for record in lake:
        matched = False
        try:
            history = lake.get_history(record.model_id)
        except HistoryUnavailableError:
            history = None
        if history is not None and history.dataset_digest is not None:
            if history.dataset_digest == digest:
                hits.append(DatasetSearchHit(record.model_id, 1.0, "history"))
                matched = True
            elif history.dataset_digest in version_closure:
                hits.append(DatasetSearchHit(record.model_id, 0.9, "history-version"))
                matched = True
        if matched or reference is None:
            continue
        # Extrinsic fallback: membership-inference aggregate signal.
        model = lake.get_model(record.model_id, force=True)
        if not hasattr(model, "predict_proba"):
            continue
        signal = dataset_membership_score(
            model, dataset.tokens, dataset.labels,
            reference.tokens, reference.labels,
        )
        if signal > membership_threshold:
            hits.append(DatasetSearchHit(record.model_id, float(signal), "membership"))
    hits.sort(key=lambda h: (-h.score, h.model_id))
    return hits
