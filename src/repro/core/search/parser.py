"""Declarative model queries.

§6: "we aim for users to be able to write declarative queries and
retrieve a set of models ranked by their suitability" — with examples
like *"Find all models trained on this corpus of US Supreme Court
cases"* and *"Find models that outperform Model X on Benchmark Y"*.

Grammar (case-insensitive keywords)::

    query      := FIND MODELS [WHERE conditions] [USING method] [LIMIT n]
    conditions := condition (AND condition)*
    condition  := field ('=' | '~') string
                | TRAINED_ON '(' string ')'
                | OUTPERFORMS '(' string ',' string ')'
                | SIMILAR_TO '(' string ')'
    field      := TASK | DOMAIN | FAMILY | TAG | NAME
    method     := KEYWORD | BEHAVIORAL | HYBRID

Examples::

    FIND MODELS WHERE task ~ 'summarize legal documents' LIMIT 5
    FIND MODELS WHERE domain = 'medical' AND family = 'text_classifier'
    FIND MODELS WHERE OUTPERFORMS('foundation-0', 'acc_legal')
    FIND MODELS WHERE TRAINED_ON('multidomain-corpus-v0') USING KEYWORD
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.search.engine import SearchEngine, SearchHit
from repro.errors import QueryError

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<string>'[^']*')|(?P<word>[A-Za-z_][A-Za-z0-9_\-]*)"
    r"|(?P<number>\d+)|(?P<symbol>[=~(),]))"
)

_FIELDS = {"task", "domain", "family", "tag", "name"}
_FUNCS = {"trained_on", "outperforms", "similar_to"}
_METHODS = {"keyword", "behavioral", "hybrid"}


@dataclass
class Condition:
    """One WHERE clause."""

    kind: str                 # "field" | "trained_on" | "outperforms" | "similar_to"
    field: Optional[str] = None
    op: Optional[str] = None
    args: Tuple[str, ...] = ()


@dataclass
class ModelQuery:
    """Parsed query ready for planning."""

    conditions: List[Condition] = field(default_factory=list)
    method: str = "hybrid"
    limit: int = 10


class _TokenStream:
    def __init__(self, text: str):
        self.tokens: List[Tuple[str, str]] = []
        position = 0
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if match is None:
                if text[position:].strip():
                    raise QueryError(f"cannot tokenize query at: {text[position:]!r}")
                break
            position = match.end()
            for group in ("string", "word", "number", "symbol"):
                value = match.group(group)
                if value is not None:
                    self.tokens.append((group, value))
                    break
        self.position = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self.position += 1
        return token

    def expect_word(self, word: str) -> None:
        kind, value = self.next()
        if kind != "word" or value.lower() != word:
            raise QueryError(f"expected {word.upper()!r}, got {value!r}")

    def expect_symbol(self, symbol: str) -> None:
        kind, value = self.next()
        if kind != "symbol" or value != symbol:
            raise QueryError(f"expected {symbol!r}, got {value!r}")

    def expect_string(self) -> str:
        kind, value = self.next()
        if kind != "string":
            raise QueryError(f"expected a quoted string, got {value!r}")
        return value[1:-1]


def parse_query(text: str) -> ModelQuery:
    """Parse the declarative language into a :class:`ModelQuery`."""
    stream = _TokenStream(text)
    stream.expect_word("find")
    stream.expect_word("models")
    query = ModelQuery()

    token = stream.peek()
    if token is not None and token[1].lower() == "where":
        stream.next()
        query.conditions.append(_parse_condition(stream))
        while True:
            token = stream.peek()
            if token is None or token[1].lower() != "and":
                break
            stream.next()
            query.conditions.append(_parse_condition(stream))

    token = stream.peek()
    if token is not None and token[1].lower() == "using":
        stream.next()
        kind, value = stream.next()
        method = value.lower()
        if method not in _METHODS:
            raise QueryError(f"unknown method {value!r}; expected {sorted(_METHODS)}")
        query.method = method

    token = stream.peek()
    if token is not None and token[1].lower() == "limit":
        stream.next()
        kind, value = stream.next()
        if kind != "number":
            raise QueryError(f"LIMIT expects a number, got {value!r}")
        query.limit = int(value)

    if stream.peek() is not None:
        raise QueryError(f"trailing tokens after query: {stream.peek()[1]!r}")
    if query.limit <= 0:
        raise QueryError(f"LIMIT must be positive, got {query.limit}")
    return query


def _parse_condition(stream: _TokenStream) -> Condition:
    kind, value = stream.next()
    word = value.lower()
    if word in _FUNCS:
        stream.expect_symbol("(")
        first = stream.expect_string()
        args = [first]
        if word == "outperforms":
            stream.expect_symbol(",")
            args.append(stream.expect_string())
        stream.expect_symbol(")")
        return Condition(kind=word, args=tuple(args))
    if word in _FIELDS:
        op_kind, op_value = stream.next()
        if op_kind != "symbol" or op_value not in ("=", "~"):
            raise QueryError(f"expected = or ~ after {word!r}, got {op_value!r}")
        literal = stream.expect_string()
        return Condition(kind="field", field=word, op=op_value, args=(literal,))
    raise QueryError(f"unknown condition start: {value!r}")


def execute_query(engine: SearchEngine, text: str) -> List[SearchHit]:
    """Parse and run a declarative query against a search engine.

    Planning: "semantic" conditions (task/domain, trained_on,
    outperforms, similar_to) produce a ranking; structured conditions
    (family/tag/name equality) filter it.  If only structured
    conditions are present, candidates come from the whole lake ranked
    by overall recorded accuracy.
    """
    query = parse_query(text)
    lake = engine.lake

    ranking: Optional[List[SearchHit]] = None
    filters: List[Condition] = []
    pool = max(query.limit * 5, 25)

    for condition in query.conditions:
        if condition.kind == "trained_on":
            datasets = lake.datasets.find_by_name(condition.args[0])
            if not datasets:
                raise QueryError(f"unknown dataset name {condition.args[0]!r}")
            hits = engine.models_trained_on(datasets[0])
            ranking = _merge(ranking, [
                SearchHit(h.model_id, h.score, "trained_on") for h in hits
            ])
        elif condition.kind == "outperforms":
            model_id = engine.resolve_name(condition.args[0])
            ranking = _merge(
                ranking,
                engine.models_outperforming(model_id, condition.args[1], k=pool),
            )
        elif condition.kind == "similar_to":
            model_id = engine.resolve_name(condition.args[0])
            ranking = _merge(ranking, engine.related_models(model_id, k=pool))
        elif condition.kind == "field" and condition.field in ("task", "domain"):
            ranking = _merge(
                ranking, engine.search(condition.args[0], k=pool, method=query.method)
            )
        else:
            filters.append(condition)

    if ranking is None:
        ranking = [
            SearchHit(r.model_id, r.eval_metrics.get("acc_overall", 0.0), "catalog")
            for r in lake
        ]
        ranking.sort(key=lambda h: (-h.score, h.model_id))

    for condition in filters:
        ranking = [h for h in ranking if _matches(lake, h.model_id, condition)]
    return ranking[: query.limit]


def _merge(
    current: Optional[List[SearchHit]], new: List[SearchHit]
) -> List[SearchHit]:
    """Intersect rankings (AND semantics), summing scores."""
    if current is None:
        return list(new)
    new_scores = {h.model_id: h.score for h in new}
    merged = [
        SearchHit(h.model_id, h.score + new_scores[h.model_id], h.method)
        for h in current
        if h.model_id in new_scores
    ]
    merged.sort(key=lambda h: (-h.score, h.model_id))
    return merged


def _matches(lake, model_id: str, condition: Condition) -> bool:
    record = lake.get_record(model_id)
    value = condition.args[0].lower()
    if condition.field == "family":
        actual = record.family.lower()
    elif condition.field == "name":
        actual = record.name.lower()
    elif condition.field == "tag":
        return any(value == t.lower() for t in record.tags) or (
            condition.op == "~" and any(value in t.lower() for t in record.tags)
        )
    else:
        return True
    if condition.op == "=":
        return actual == value
    return value in actual
