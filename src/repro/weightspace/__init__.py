"""Weight-space modeling: features, meta-models, linear connectivity."""

from repro.weightspace.features import (
    delta_features,
    global_weight_features,
    model_weight_features,
    spectral_features,
)
from repro.weightspace.metamodel import (
    MetaDataset,
    WeightSpaceModel,
    build_meta_dataset,
    cross_validated_accuracy,
)
from repro.weightspace.linearity import (
    InterpolationResult,
    interpolate_losses,
    linearity_gap,
)

__all__ = [
    "delta_features", "global_weight_features", "model_weight_features",
    "spectral_features",
    "MetaDataset", "WeightSpaceModel", "build_meta_dataset",
    "cross_validated_accuracy",
    "InterpolationResult", "interpolate_losses", "linearity_gap",
]
