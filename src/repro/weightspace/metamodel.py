"""Meta-models: neural networks trained on other models' weights.

The weight-space model of §5: an MLP (built on our own substrate —
models all the way down) that reads weight features of lake models and
predicts properties: training-domain specialty, transform kind,
architecture family.  Benchmark E6 measures these predictions against
lake ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.nn.models import MLPClassifier
from repro.nn.train import evaluate_accuracy, train_classifier
from repro.weightspace.features import model_weight_features


@dataclass
class MetaDataset:
    """Feature matrix + labels over a population of models."""

    features: np.ndarray
    labels: np.ndarray
    label_names: List[str]
    model_ids: List[str]

    def __len__(self) -> int:
        return len(self.features)


def build_meta_dataset(
    states: Dict[str, Dict[str, np.ndarray]],
    label_of: Dict[str, str],
) -> MetaDataset:
    """Extract weight features and encode string labels.

    ``states`` maps model_id -> state dict; ``label_of`` maps model_id
    to its ground-truth property value.  Models missing a label are
    skipped.
    """
    ids = [mid for mid in states if mid in label_of]
    if not ids:
        raise ConfigError("no labelled models to build a meta dataset from")
    label_names = sorted({label_of[mid] for mid in ids})
    label_index = {name: i for i, name in enumerate(label_names)}
    features = np.stack([model_weight_features(states[mid]) for mid in ids])
    labels = np.array([label_index[label_of[mid]] for mid in ids], dtype=np.int64)
    return MetaDataset(
        features=features, labels=labels, label_names=label_names, model_ids=ids
    )


class WeightSpaceModel:
    """An MLP over weight features predicting a model property."""

    def __init__(self, hidden: Tuple[int, ...] = (32,), seed: int = 0):
        self.hidden = hidden
        self.seed = seed
        self._classifier: Optional[MLPClassifier] = None
        self._label_names: List[str] = []
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def fit(
        self,
        dataset: MetaDataset,
        epochs: int = 60,
        lr: float = 5e-3,
    ) -> "WeightSpaceModel":
        """Train on a meta dataset (features standardized internally)."""
        self._label_names = list(dataset.label_names)
        self._mean = dataset.features.mean(axis=0)
        self._std = dataset.features.std(axis=0)
        self._std[self._std < 1e-9] = 1.0
        standardized = (dataset.features - self._mean) / self._std
        self._classifier = MLPClassifier(
            in_features=standardized.shape[1],
            num_classes=len(self._label_names),
            hidden=self.hidden,
            seed=self.seed,
        )
        train_classifier(
            self._classifier, standardized, dataset.labels,
            epochs=epochs, lr=lr, seed=self.seed,
        )
        return self

    def _require_fit(self) -> MLPClassifier:
        if self._classifier is None:
            raise ConfigError("WeightSpaceModel is not fitted yet")
        return self._classifier

    def predict(self, features: np.ndarray) -> List[str]:
        """Predicted property values for raw (unstandardized) features."""
        classifier = self._require_fit()
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        standardized = (features - self._mean) / self._std
        indices = classifier.predict(standardized)
        return [self._label_names[i] for i in indices]

    def predict_state(self, state: Dict[str, np.ndarray]) -> str:
        return self.predict(model_weight_features(state))[0]

    def accuracy(self, dataset: MetaDataset) -> float:
        classifier = self._require_fit()
        standardized = (dataset.features - self._mean) / self._std
        return evaluate_accuracy(classifier, standardized, dataset.labels)


def cross_validated_accuracy(
    dataset: MetaDataset,
    folds: int = 4,
    hidden: Tuple[int, ...] = (32,),
    epochs: int = 60,
    seed: int = 0,
) -> float:
    """k-fold CV accuracy of a weight-space model on a meta dataset."""
    if folds < 2 or folds > len(dataset):
        raise ConfigError(f"folds must be in [2, {len(dataset)}], got {folds}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    fold_indices = np.array_split(order, folds)
    accuracies = []
    for i, test_idx in enumerate(fold_indices):
        train_idx = np.concatenate([f for j, f in enumerate(fold_indices) if j != i])
        train_set = MetaDataset(
            features=dataset.features[train_idx],
            labels=dataset.labels[train_idx],
            label_names=dataset.label_names,
            model_ids=[dataset.model_ids[j] for j in train_idx],
        )
        model = WeightSpaceModel(hidden=hidden, seed=seed + i).fit(
            train_set, epochs=epochs
        )
        standardized = (dataset.features[test_idx] - model._mean) / model._std
        predictions = model._require_fit().predict(standardized)
        accuracies.append(float((predictions == dataset.labels[test_idx]).mean()))
    return float(np.mean(accuracies))
