"""Weight-space feature extraction for hyper-representation learning.

§5 Weight-Space Modeling: "a neural network is trained to process
weights of other models."  The meta-model's inputs are these
permutation-robust per-model feature vectors: global weight statistics,
per-tensor spectral summaries, and delta statistics against a reference
(useful for transform-type prediction).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Module


def global_weight_features(state: Dict[str, np.ndarray]) -> np.ndarray:
    """18 permutation-invariant statistics of the pooled weight vector."""
    flat = np.concatenate([arr.ravel() for arr in state.values()])
    abs_flat = np.abs(flat)
    quantiles = np.quantile(flat, [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99])
    centered = flat - flat.mean()
    variance = float(centered.var()) or 1e-12
    features = [
        flat.mean(),
        flat.std(),
        abs_flat.mean(),
        abs_flat.max(),
        float((flat == 0).mean()),                     # sparsity
        float((centered**3).mean() / variance**1.5),   # skewness
        float((centered**4).mean() / variance**2),     # kurtosis
        float(np.log1p(flat.size)),
        float(len(state)),
        float(np.median(abs_flat)),
        float(len(np.unique(np.round(flat[:4096], 10)))) / min(flat.size, 4096),
    ]
    return np.concatenate([quantiles, features])


def spectral_features(state: Dict[str, np.ndarray], top_k: int = 5) -> np.ndarray:
    """Aggregated singular-value spectra across weight matrices.

    Sorted-singular-value shares are invariant to row/column permutation
    — the symmetry weight-space models must respect (Navon et al.).
    """
    shares: List[np.ndarray] = []
    effective_ranks: List[float] = []
    for arr in state.values():
        if arr.ndim != 2 or min(arr.shape) < 2:
            continue
        singular = np.linalg.svd(arr, compute_uv=False)
        total = singular.sum() + 1e-12
        share = np.zeros(top_k)
        top = singular[:top_k] / total
        share[: len(top)] = top
        shares.append(share)
        p = singular / total
        entropy = -(p * np.log(p + 1e-12)).sum()
        effective_ranks.append(float(np.exp(entropy)) / len(singular))
    if not shares:
        return np.zeros(top_k + 2)
    return np.concatenate([
        np.mean(shares, axis=0),
        [float(np.mean(effective_ranks)), float(np.std(effective_ranks))],
    ])


def model_weight_features(model_or_state) -> np.ndarray:
    """Full feature vector for one model (global + spectral)."""
    state = (
        model_or_state.state_dict()
        if isinstance(model_or_state, Module)
        else model_or_state
    )
    return np.concatenate([global_weight_features(state), spectral_features(state)])


def delta_features(
    parent_state: Dict[str, np.ndarray], child_state: Dict[str, np.ndarray]
) -> np.ndarray:
    """Features of the weight *difference* (for transform-kind prediction)."""
    shared = [
        name for name in parent_state
        if name in child_state and parent_state[name].shape == child_state[name].shape
    ]
    if not shared:
        raise ConfigError("no aligned parameters between parent and child")
    deltas = {name: child_state[name] - parent_state[name] for name in shared}
    matrix_ranks: List[float] = []
    changed_fraction: List[float] = []
    for name, delta in deltas.items():
        if delta.ndim != 2:
            continue
        scale = np.abs(delta).max()
        changed_fraction.append(float((np.abs(delta) > 1e-12).mean()))
        if scale < 1e-12:
            matrix_ranks.append(0.0)
            continue
        rank = np.linalg.matrix_rank(delta, tol=1e-8 * scale * max(delta.shape))
        matrix_ranks.append(float(rank) / min(delta.shape))
    return np.concatenate([
        global_weight_features(deltas),
        [
            float(np.mean(matrix_ranks)) if matrix_ranks else 0.0,
            float(np.max(matrix_ranks)) if matrix_ranks else 0.0,
            float(np.mean(changed_fraction)) if changed_fraction else 0.0,
        ],
    ])


FEATURE_DIM = 18 + 7  # global (18) + spectral (top_k + 2 with default top_k=5)
