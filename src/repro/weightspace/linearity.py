"""Cross-task linearity analysis (Zhou et al., ICML 2024).

§5 cites the finding that fine-tuned models of a shared base are
connected by low-loss linear paths in weight space.  We measure loss
along the interpolation between two models: related fine-tunes show a
flat (low-barrier) path; unrelated models show a high barrier.  This is
both a versioning signal and a sanity check on the lake's geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.versioning.distance import states_aligned
from repro.data.datasets import TextDataset
from repro.errors import IncompatibleModelsError
from repro.nn.models import build_model
from repro.nn.module import Module
from repro.nn.train import per_example_losses


@dataclass
class InterpolationResult:
    """Loss along the linear path theta(t) = (1-t) a + t b."""

    ts: np.ndarray
    losses: np.ndarray

    @property
    def barrier(self) -> float:
        """Max loss above the endpoint-interpolation baseline.

        0 means perfectly linear connectivity; large values mean the
        models live in different basins.
        """
        baseline = np.linspace(self.losses[0], self.losses[-1], len(self.losses))
        return float(np.max(self.losses - baseline))

    @property
    def max_loss(self) -> float:
        return float(self.losses.max())


def interpolate_losses(
    model_a: Module,
    model_b: Module,
    dataset: TextDataset,
    num_points: int = 9,
) -> InterpolationResult:
    """Evaluate mean loss at evenly spaced points along the weight line."""
    state_a = model_a.state_dict()
    state_b = model_b.state_dict()
    if not states_aligned(state_a, state_b):
        raise IncompatibleModelsError(
            "linear interpolation needs parameter-aligned models"
        )
    probe = build_model(model_a.architecture_spec())
    ts = np.linspace(0.0, 1.0, num_points)
    losses = np.zeros(num_points)
    # theta(t) = a + t * (b - a): hoist the per-parameter delta so each
    # interpolation point costs one scaled add, not two scales and an
    # add over every tensor.  The loop itself stays — each point needs
    # a forward pass of the probe model, which dominates.
    delta = {name: state_b[name] - state_a[name] for name in state_a}
    for i, t in enumerate(ts.tolist()):  # repro: noqa[python-loop-over-array]
        mixed = {name: state_a[name] + t * delta[name] for name in state_a}
        probe.load_state_dict(mixed)
        losses[i] = float(
            per_example_losses(probe, dataset.tokens, dataset.labels).mean()
        )
    return InterpolationResult(ts=ts, losses=losses)


def linearity_gap(
    sibling_a: Module,
    sibling_b: Module,
    unrelated: Module,
    dataset: TextDataset,
    num_points: int = 9,
) -> Dict[str, float]:
    """Barriers for a sibling pair vs an unrelated pair.

    Expected shape (Zhou et al.): sibling barrier << unrelated barrier.
    """
    sibling = interpolate_losses(sibling_a, sibling_b, dataset, num_points)
    other = interpolate_losses(sibling_a, unrelated, dataset, num_points)
    return {
        "sibling_barrier": sibling.barrier,
        "unrelated_barrier": other.barrier,
        "gap": other.barrier - sibling.barrier,
    }
