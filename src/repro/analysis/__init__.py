"""Static analysis: AST-based enforcement of the repo's invariants.

The lake's guarantees — bit-reproducible generation, pickle-safe pool
tasks, structured observability — are source-level properties, so this
package checks them at the source level, before any test runs:

* :mod:`repro.analysis.core` — :class:`Finding`, :class:`Rule`, the
  pluggable rule registry;
* :mod:`repro.analysis.rules` — the built-in determinism, pool-safety,
  obs-convention, and API-hygiene rules;
* :mod:`repro.analysis.pragmas` — ``# repro: noqa[rule]`` line pragmas;
* :mod:`repro.analysis.baseline` — ``.repro-lint.json``, the justified-
  exception ledger;
* :mod:`repro.analysis.cache` — per-file result cache keyed on content
  hash and rule-set fingerprint;
* :mod:`repro.analysis.graph` — the whole-program view: import/call
  graphs, the ``.repro-arch.toml`` layer contract, interprocedural
  rules, and the dependency-aware incremental cache;
* :mod:`repro.analysis.runner` / :mod:`repro.analysis.report` — the
  sweep and its text/JSON rendering, surfaced as ``repro lint`` and
  ``repro graph``.
"""

from repro.analysis.baseline import Baseline, BaselineEntry, load_baseline
from repro.analysis.cache import FindingsCache
from repro.analysis.core import (
    FileContext,
    Finding,
    Rule,
    all_rules,
    get_rule,
    register,
    rule_names,
    rules_fingerprint,
)
from repro.analysis.report import render_json, render_text
from repro.analysis.runner import (
    LintConfig,
    LintResult,
    collect_sources,
    known_rule_names,
    lint_source,
    run_lint,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "FileContext",
    "Finding",
    "FindingsCache",
    "LintConfig",
    "LintResult",
    "Rule",
    "all_rules",
    "collect_sources",
    "get_rule",
    "known_rule_names",
    "lint_source",
    "load_baseline",
    "register",
    "render_json",
    "render_text",
    "rule_names",
    "rules_fingerprint",
    "run_lint",
]
