"""The lint runner: walk files, run rules, suppress, summarize.

Per file the pipeline is: content hash -> cache probe -> (parse + run
every applicable rule) -> pragma filter -> cache store.  Baseline
suppression happens once at the end, over the aggregate, so editing
``.repro-lint.json`` re-ranks results without invalidating the cache.

The runner is instrumented like every other subsystem: a ``lint.run``
span wraps the sweep, per-file work runs under ``lint.file`` spans, and
the registry counters (files, cache hits/misses, findings) land in the
same metrics snapshot the CLI persists.
"""

from __future__ import annotations

import ast
import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.baseline import (
    BaselineEntry,
    DEFAULT_BASELINE_NAME,
    load_baseline,
)
from repro.analysis.cache import DEFAULT_CACHE_NAME, FindingsCache, content_digest
from repro.analysis.core import (
    FileContext,
    Finding,
    all_rules,
    rules_fingerprint,
)
from repro.analysis.pragmas import apply_pragmas
from repro.errors import ConfigError
from repro.obs import metrics as obs_metrics
from repro.obs.instrument import (
    LINT_CACHE_HITS,
    LINT_CACHE_MISSES,
    LINT_FILES,
    LINT_FINDINGS,
    LINT_RUN_SECONDS,
)
from repro.obs.logging import get_logger
from repro.obs.tracing import trace

__all__ = ["LintConfig", "LintResult", "run_lint", "lint_source"]

_log = get_logger("analysis.runner")

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


@dataclass
class LintConfig:
    """One lint invocation's inputs."""

    paths: Sequence[str]
    root: str = "."
    baseline_path: Optional[str] = None  # default: <root>/.repro-lint.json
    cache_path: Optional[str] = None  # default: <root>/.repro-lint-cache.json
    use_cache: bool = True

    def resolved_root(self) -> str:
        return os.path.abspath(self.root)

    def resolved_baseline(self) -> str:
        return self.baseline_path or os.path.join(
            self.resolved_root(), DEFAULT_BASELINE_NAME
        )

    def resolved_cache(self) -> Optional[str]:
        if not self.use_cache:
            return None
        return self.cache_path or os.path.join(
            self.resolved_root(), DEFAULT_CACHE_NAME
        )


@dataclass
class LintResult:
    """Everything a reporter needs about one sweep."""

    findings: List[Finding] = field(default_factory=list)
    baseline_suppressed: List[Finding] = field(default_factory=list)
    unused_baseline: List[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_seconds: float = 0.0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def exit_code(self, strict: bool = False) -> int:
        """0 clean; 1 violations.  Strict fails on warnings and stale
        baseline entries too, so CI catches both new findings and
        fixed-but-still-listed ones."""
        if self.errors:
            return 1
        if strict and (self.findings or self.unused_baseline):
            return 1
        return 0


def _iter_python_files(root: str, paths: Sequence[str]) -> List[str]:
    """Absolute paths of every ``.py`` under ``paths`` (files or trees)."""
    collected: List[str] = []
    for raw in paths:
        target = raw if os.path.isabs(raw) else os.path.join(root, raw)
        if os.path.isfile(target):
            collected.append(os.path.abspath(target))
            continue
        if not os.path.isdir(target):
            raise ConfigError(f"lint path does not exist: {raw}")
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    collected.append(
                        os.path.abspath(os.path.join(dirpath, filename))
                    )
    # De-duplicate while preserving deterministic order.
    return sorted(dict.fromkeys(collected))


def lint_source(source: str, rel_path: str) -> List[Finding]:
    """Lint one in-memory file; the unit the runner (and tests) build on.

    Returns post-pragma findings sorted by position.  A syntax error
    becomes a single ``syntax-error`` finding rather than an exception,
    so one broken file cannot hide the rest of the sweep.
    """
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as error:
        return [
            Finding(
                path=rel_path,
                line=error.lineno or 1,
                col=error.offset or 0,
                rule="syntax-error",
                message=f"file does not parse: {error.msg}",
            )
        ]
    ctx = FileContext(rel_path=rel_path, source=source, tree=tree)
    raw: List[Finding] = []
    for rule in all_rules():
        if rule.applies_to(ctx):
            raw.extend(rule.check(ctx))
    kept, _suppressed = apply_pragmas(raw, source)
    return sorted(kept)


def run_lint(config: LintConfig) -> LintResult:
    """Lint every file under ``config.paths``; apply cache and baseline."""
    start = time.perf_counter()
    root = config.resolved_root()
    baseline = load_baseline(config.resolved_baseline())
    cache = FindingsCache(config.resolved_cache(), rules_fingerprint())
    result = LintResult()
    aggregate: List[Finding] = []
    with trace("lint.run", root=root, paths=len(config.paths)):
        for abs_path in _iter_python_files(root, config.paths):
            rel_path = os.path.relpath(abs_path, root).replace(os.sep, "/")
            with open(abs_path, encoding="utf-8") as handle:
                source = handle.read()
            digest = content_digest(source)
            findings = cache.get(rel_path, digest)
            if findings is None:
                with trace("lint.file", path=rel_path):
                    findings = lint_source(source, rel_path)
                cache.put(rel_path, digest, findings)
            aggregate.extend(findings)
            result.files_scanned += 1
        cache.save()
    kept, suppressed, unused = baseline.apply(sorted(aggregate))
    result.findings = kept
    result.baseline_suppressed = suppressed
    result.unused_baseline = unused
    result.cache_hits = cache.hits
    result.cache_misses = cache.misses
    result.elapsed_seconds = time.perf_counter() - start
    obs_metrics.inc(LINT_FILES, result.files_scanned)
    obs_metrics.inc(LINT_CACHE_HITS, cache.hits)
    obs_metrics.inc(LINT_CACHE_MISSES, cache.misses)
    obs_metrics.inc(LINT_FINDINGS, len(kept))
    obs_metrics.observe(LINT_RUN_SECONDS, result.elapsed_seconds)
    _log.info(
        "lint.completed",
        files=result.files_scanned,
        findings=len(kept),
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        seconds=round(result.elapsed_seconds, 4),
    )
    return result
