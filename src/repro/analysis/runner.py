"""The lint runner: walk files, run rules, suppress, summarize.

Per file the pipeline is: content hash -> cache probe -> (parse + run
every applicable rule) -> pragma filter -> cache store.  With graph
analysis enabled (``--graph``, implied by ``--strict``) a second phase
assembles the whole-program view and runs the interprocedural rules
through their own dependency-aware cache.  Baseline suppression and
``--select``/``--ignore`` scoping happen once at the end, over the
aggregate, so editing ``.repro-lint.json`` or narrowing a CI run
re-ranks results without invalidating either cache.

The runner is instrumented like every other subsystem: a ``lint.run``
span wraps the sweep, per-file work runs under ``lint.file`` spans, the
graph phase under a ``lint.graph`` span, and the registry counters
(files, cache hits/misses, findings, graph sizes) land in the same
metrics snapshot the CLI persists.
"""

from __future__ import annotations

import ast
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    DEFAULT_BASELINE_NAME,
    is_todo_reason,
    load_baseline,
    save_baseline,
    updated_entries,
)
from repro.analysis.cache import DEFAULT_CACHE_NAME, FindingsCache, content_digest
from repro.analysis.core import (
    FileContext,
    Finding,
    all_rules,
    rule_names,
    rules_fingerprint,
)
from repro.analysis.dataflow import (
    DEFAULT_DATAFLOW_CACHE_NAME,
    DataflowCache,
    analyze_dataflow,
    dataflow_rule_names,
)
from repro.analysis.graph import (
    DEFAULT_CONTRACT_NAME,
    DEFAULT_GRAPH_CACHE_NAME,
    GraphCache,
    ProjectGraph,
    analyze_project,
    build_project,
    graph_rule_names,
    load_contract,
)
from repro.analysis.perf import (
    DEFAULT_PERF_CACHE_NAME,
    PerfCache,
    analyze_perf,
    perf_rule_names,
)
from repro.analysis.pragmas import apply_pragmas
from repro.errors import ConfigError
from repro.obs import metrics as obs_metrics
from repro.obs.instrument import (
    DATAFLOW_CACHE_HITS,
    DATAFLOW_CACHE_MISSES,
    DATAFLOW_FILES_REANALYZED,
    DATAFLOW_FINDINGS,
    DATAFLOW_FUNCTIONS,
    DATAFLOW_MODULES,
    DATAFLOW_RUN_SECONDS,
    GRAPH_BUILD_SECONDS,
    GRAPH_CACHE_HITS,
    GRAPH_CACHE_MISSES,
    GRAPH_EDGES,
    GRAPH_FILES_REANALYZED,
    GRAPH_FINDINGS,
    GRAPH_MODULES,
    LINT_CACHE_HITS,
    LINT_CACHE_MISSES,
    LINT_FILES,
    LINT_FINDINGS,
    LINT_RUN_SECONDS,
    PERF_CACHE_HITS,
    PERF_CACHE_MISSES,
    PERF_FILES_REANALYZED,
    PERF_FINDINGS,
    PERF_FUNCTIONS,
    PERF_MODULES,
    PERF_RUN_SECONDS,
)
from repro.obs.logging import get_logger
from repro.obs.tracing import trace

__all__ = [
    "LintConfig",
    "LintResult",
    "run_lint",
    "lint_source",
    "known_rule_names",
    "collect_sources",
]

_log = get_logger("analysis.runner")

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


def known_rule_names() -> List[str]:
    """Every rule id usable in pragmas, baselines, and filters."""
    return sorted(
        set(rule_names())
        | set(graph_rule_names())
        | set(dataflow_rule_names())
        | set(perf_rule_names())
        | {"syntax-error"}
    )


@dataclass
class LintConfig:
    """One lint invocation's inputs."""

    paths: Sequence[str]
    root: str = "."
    baseline_path: Optional[str] = None  # default: <root>/.repro-lint.json
    cache_path: Optional[str] = None  # default: <root>/.repro-lint-cache.json
    use_cache: bool = True
    graph: bool = False  # run whole-program rules too
    dataflow: bool = False  # run the CFG/taint rule pack too
    perf: bool = False  # run the cost-model perf rule pack too
    arch_path: Optional[str] = None  # default: <root>/.repro-arch.toml
    graph_cache_path: Optional[str] = None  # default: <root>/.repro-graph-cache.json
    dataflow_cache_path: Optional[str] = None  # default: <root>/.repro-dataflow-cache.json
    perf_cache_path: Optional[str] = None  # default: <root>/.repro-perf-cache.json
    select: Optional[Sequence[str]] = None  # keep only these rules
    ignore: Sequence[str] = ()  # drop these rules
    #: Rewrite the baseline ledger in place: drop entries stale for this
    #: run's active phases, add TODO-reason entries for new findings.
    baseline_update: bool = False

    def resolved_root(self) -> str:
        return os.path.abspath(self.root)

    def resolved_baseline(self) -> str:
        return self.baseline_path or os.path.join(
            self.resolved_root(), DEFAULT_BASELINE_NAME
        )

    def resolved_cache(self) -> Optional[str]:
        if not self.use_cache:
            return None
        return self.cache_path or os.path.join(
            self.resolved_root(), DEFAULT_CACHE_NAME
        )

    def resolved_arch(self) -> str:
        return self.arch_path or os.path.join(
            self.resolved_root(), DEFAULT_CONTRACT_NAME
        )

    def resolved_graph_cache(self) -> Optional[str]:
        if not self.use_cache:
            return None
        return self.graph_cache_path or os.path.join(
            self.resolved_root(), DEFAULT_GRAPH_CACHE_NAME
        )

    def resolved_dataflow_cache(self) -> Optional[str]:
        if not self.use_cache:
            return None
        return self.dataflow_cache_path or os.path.join(
            self.resolved_root(), DEFAULT_DATAFLOW_CACHE_NAME
        )

    def resolved_perf_cache(self) -> Optional[str]:
        if not self.use_cache:
            return None
        return self.perf_cache_path or os.path.join(
            self.resolved_root(), DEFAULT_PERF_CACHE_NAME
        )

    def rule_filter(self) -> "RuleFilter":
        return RuleFilter(self.select, self.ignore)


class RuleFilter:
    """``--select`` / ``--ignore`` scoping, validated against known rules."""

    def __init__(
        self,
        select: Optional[Sequence[str]] = None,
        ignore: Sequence[str] = (),
    ):
        known = set(known_rule_names())
        self.select = frozenset(select) if select is not None else None
        self.ignore = frozenset(ignore)
        unknown = ((self.select or frozenset()) | self.ignore) - known
        if unknown:
            raise ConfigError(
                f"unknown rule name(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})"
            )

    def active(self, rule: str) -> bool:
        if self.select is not None and rule not in self.select:
            return False
        return rule not in self.ignore

    @property
    def is_noop(self) -> bool:
        return self.select is None and not self.ignore


@dataclass
class LintResult:
    """Everything a reporter needs about one sweep."""

    findings: List[Finding] = field(default_factory=list)
    baseline_suppressed: List[Finding] = field(default_factory=list)
    unused_baseline: List[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_seconds: float = 0.0
    # -- graph phase (zeros when the phase did not run) ---------------
    graph_enabled: bool = False
    graph_modules: int = 0
    graph_edges: int = 0
    graph_cycles: int = 0
    graph_files_reanalyzed: int = 0
    graph_cache_hits: int = 0
    graph_cache_misses: int = 0
    graph_seconds: float = 0.0
    graph_fingerprint: str = ""
    # -- dataflow phase (zeros when the phase did not run) ------------
    dataflow_enabled: bool = False
    dataflow_modules: int = 0
    dataflow_functions: int = 0
    dataflow_files_reanalyzed: int = 0
    dataflow_cache_hits: int = 0
    dataflow_cache_misses: int = 0
    dataflow_seconds: float = 0.0
    dataflow_fingerprint: str = ""
    # -- perf phase (zeros when the phase did not run) ----------------
    perf_enabled: bool = False
    perf_modules: int = 0
    perf_functions: int = 0
    perf_files_reanalyzed: int = 0
    perf_cache_hits: int = 0
    perf_cache_misses: int = 0
    perf_seconds: float = 0.0
    perf_fingerprint: str = ""
    #: Baseline entries that matched findings but whose reason is still
    #: the ``--baseline-update`` placeholder — tracked debt, unjustified.
    todo_baseline: List[BaselineEntry] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def exit_code(self, strict: bool = False) -> int:
        """0 clean; 1 violations.  Strict fails on warnings, stale
        baseline entries, and TODO-placeholder baseline reasons too, so
        CI catches new findings, fixed-but-still-listed ones, and
        suppressions nobody has justified yet."""
        if self.errors:
            return 1
        if strict and (
            self.findings or self.unused_baseline or self.todo_baseline
        ):
            return 1
        return 0


def _iter_python_files(root: str, paths: Sequence[str]) -> List[str]:
    """Absolute paths of every ``.py`` under ``paths`` (files or trees)."""
    collected: List[str] = []
    for raw in paths:
        target = raw if os.path.isabs(raw) else os.path.join(root, raw)
        if os.path.isfile(target):
            collected.append(os.path.abspath(target))
            continue
        if not os.path.isdir(target):
            raise ConfigError(f"lint path does not exist: {raw}")
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    collected.append(
                        os.path.abspath(os.path.join(dirpath, filename))
                    )
    # De-duplicate while preserving deterministic order.
    return sorted(dict.fromkeys(collected))


def collect_sources(
    root: str, paths: Sequence[str]
) -> Dict[str, Tuple[str, str]]:
    """rel_path -> (source, content_digest) for every file in the sweep."""
    sources: Dict[str, Tuple[str, str]] = {}
    for abs_path in _iter_python_files(root, paths):
        rel_path = os.path.relpath(abs_path, root).replace(os.sep, "/")
        with open(abs_path, encoding="utf-8") as handle:
            source = handle.read()
        sources[rel_path] = (source, content_digest(source))
    return sources


def lint_source(source: str, rel_path: str) -> List[Finding]:
    """Lint one in-memory file; the unit the runner (and tests) build on.

    Returns post-pragma findings sorted by position.  A syntax error
    becomes a single ``syntax-error`` finding rather than an exception,
    so one broken file cannot hide the rest of the sweep.
    """
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as error:
        return [
            Finding(
                path=rel_path,
                line=error.lineno or 1,
                col=error.offset or 0,
                rule="syntax-error",
                message=f"file does not parse: {error.msg}",
            )
        ]
    ctx = FileContext(rel_path=rel_path, source=source, tree=tree)
    raw: List[Finding] = []
    for rule in all_rules():
        if rule.applies_to(ctx):
            raw.extend(rule.check(ctx))
    kept, _suppressed = apply_pragmas(raw, source)
    return sorted(kept)


def _run_graph_phase(
    config: LintConfig,
    sources: Dict[str, Tuple[str, str]],
    result: LintResult,
    project: "ProjectGraph",
    cache: GraphCache,
) -> List[Finding]:
    """Whole-program phase: run the interprocedural graph rules."""
    contract = project.contract
    started = time.perf_counter()
    with trace("lint.graph", files=len(sources)):
        report = analyze_project(sources, contract, cache, project=project)
    result.graph_enabled = True
    result.graph_modules = report.modules
    result.graph_edges = report.all_edges
    result.graph_cycles = report.cycles
    result.graph_files_reanalyzed = report.files_reanalyzed
    result.graph_cache_hits = report.cache_hits
    result.graph_cache_misses = report.cache_misses
    result.graph_seconds = time.perf_counter() - started
    result.graph_fingerprint = report.fingerprint
    obs_metrics.inc(GRAPH_MODULES, report.modules)
    obs_metrics.inc(GRAPH_EDGES, report.all_edges)
    obs_metrics.inc(GRAPH_FILES_REANALYZED, report.files_reanalyzed)
    obs_metrics.inc(GRAPH_CACHE_HITS, report.cache_hits)
    obs_metrics.inc(GRAPH_CACHE_MISSES, report.cache_misses)
    obs_metrics.inc(GRAPH_FINDINGS, len(report.findings))
    obs_metrics.observe(GRAPH_BUILD_SECONDS, result.graph_seconds)
    return report.findings


def _run_dataflow_phase(
    config: LintConfig,
    sources: Dict[str, Tuple[str, str]],
    result: LintResult,
    project: "ProjectGraph",
) -> List[Finding]:
    """CFG/taint phase: run the dataflow rule pack incrementally."""
    cache = DataflowCache(config.resolved_dataflow_cache())
    started = time.perf_counter()
    with trace("lint.dataflow", files=len(sources)):
        report = analyze_dataflow(sources, project, cache)
        cache.save()
    result.dataflow_enabled = True
    result.dataflow_modules = report.modules
    result.dataflow_functions = report.functions_analyzed
    result.dataflow_files_reanalyzed = report.files_reanalyzed
    result.dataflow_cache_hits = report.cache_hits
    result.dataflow_cache_misses = report.cache_misses
    result.dataflow_seconds = time.perf_counter() - started
    result.dataflow_fingerprint = report.fingerprint
    obs_metrics.inc(DATAFLOW_MODULES, report.modules)
    obs_metrics.inc(DATAFLOW_FUNCTIONS, report.functions_analyzed)
    obs_metrics.inc(DATAFLOW_FILES_REANALYZED, report.files_reanalyzed)
    obs_metrics.inc(DATAFLOW_CACHE_HITS, report.cache_hits)
    obs_metrics.inc(DATAFLOW_CACHE_MISSES, report.cache_misses)
    obs_metrics.inc(DATAFLOW_FINDINGS, len(report.findings))
    obs_metrics.observe(DATAFLOW_RUN_SECONDS, result.dataflow_seconds)
    return report.findings


def _run_perf_phase(
    config: LintConfig,
    sources: Dict[str, Tuple[str, str]],
    result: LintResult,
    project: "ProjectGraph",
) -> List[Finding]:
    """Cost-model phase: run the perf rule pack incrementally."""
    cache = PerfCache(config.resolved_perf_cache())
    started = time.perf_counter()
    with trace("lint.perf", files=len(sources)):
        report = analyze_perf(sources, project, cache)
        cache.save()
    result.perf_enabled = True
    result.perf_modules = report.modules
    result.perf_functions = report.functions_analyzed
    result.perf_files_reanalyzed = report.files_reanalyzed
    result.perf_cache_hits = report.cache_hits
    result.perf_cache_misses = report.cache_misses
    result.perf_seconds = time.perf_counter() - started
    result.perf_fingerprint = report.fingerprint
    obs_metrics.inc(PERF_MODULES, report.modules)
    obs_metrics.inc(PERF_FUNCTIONS, report.functions_analyzed)
    obs_metrics.inc(PERF_FILES_REANALYZED, report.files_reanalyzed)
    obs_metrics.inc(PERF_CACHE_HITS, report.cache_hits)
    obs_metrics.inc(PERF_CACHE_MISSES, report.cache_misses)
    obs_metrics.inc(PERF_FINDINGS, len(report.findings))
    obs_metrics.observe(PERF_RUN_SECONDS, result.perf_seconds)
    return report.findings


def run_lint(config: LintConfig) -> LintResult:
    """Lint every file under ``config.paths``; apply caches and baseline."""
    start = time.perf_counter()
    root = config.resolved_root()
    rule_filter = config.rule_filter()
    baseline = load_baseline(config.resolved_baseline())
    cache = FindingsCache(config.resolved_cache(), rules_fingerprint())
    result = LintResult()
    aggregate: List[Finding] = []
    with trace("lint.run", root=root, paths=len(config.paths)):
        sources = collect_sources(root, config.paths)
        for rel_path, (source, digest) in sources.items():
            findings = cache.get(rel_path, digest)
            if findings is None:
                with trace("lint.file", path=rel_path):
                    findings = lint_source(source, rel_path)
                cache.put(rel_path, digest, findings)
            aggregate.extend(findings)
            result.files_scanned += 1
        cache.save()
        if config.graph or config.dataflow or config.perf:
            # The whole-program phases read the same built project;
            # assemble it once (extraction goes through the graph cache).
            graph_cache = GraphCache(config.resolved_graph_cache())
            contract = load_contract(config.resolved_arch())
            project = build_project(sources, contract, graph_cache)
            if config.graph:
                aggregate.extend(
                    _run_graph_phase(
                        config, sources, result, project, graph_cache
                    )
                )
            if config.dataflow:
                aggregate.extend(
                    _run_dataflow_phase(config, sources, result, project)
                )
            if config.perf:
                aggregate.extend(
                    _run_perf_phase(config, sources, result, project)
                )
            graph_cache.save()
    if not rule_filter.is_noop:
        aggregate = [f for f in aggregate if rule_filter.active(f.rule)]
    # Baseline-exempt rules bypass the suppression ledger entirely:
    # their findings always surface, and a ledger entry naming one can
    # never match (it will show up as stale under --strict).
    exempt_rules = {
        rule.name for rule in all_rules() if rule.baseline_exempt
    }
    aggregate = sorted(aggregate)
    exempt = [f for f in aggregate if f.rule in exempt_rules]
    nonexempt = [f for f in aggregate if f.rule not in exempt_rules]
    # Entries for rules outside the filter — or whose whole phase was
    # skipped this run — never had a chance to match; reporting them as
    # stale (or dropping them on --baseline-update) would be wrong.
    skipped_rules: set = set()
    if not config.graph:
        skipped_rules |= set(graph_rule_names())
    if not config.dataflow:
        skipped_rules |= set(dataflow_rule_names())
    if not config.perf:
        skipped_rules |= set(perf_rule_names())

    def _actionable(entries: List[BaselineEntry]) -> List[BaselineEntry]:
        return [
            entry
            for entry in entries
            if rule_filter.active(entry.rule)
            and entry.rule not in skipped_rules
        ]

    kept, suppressed, unused = baseline.apply(nonexempt)
    unused = _actionable(unused)
    if config.baseline_update:
        # Rewrite the ledger: stale (actionable) entries out, fresh
        # findings in with a TODO reason --strict still rejects.  Then
        # re-apply so the result reflects the ledger now on disk.
        entries = updated_entries(baseline, unused, kept)
        save_baseline(config.resolved_baseline(), entries)
        baseline = Baseline(entries)
        kept, suppressed, unused = baseline.apply(nonexempt)
        unused = _actionable(unused)
    kept = sorted(kept + exempt)
    matched = _actionable(
        [entry for entry in baseline.entries if entry not in set(unused)]
    )
    result.todo_baseline = sorted(
        (entry for entry in matched if is_todo_reason(entry.reason)),
        key=lambda e: (e.rule, e.path),
    )
    result.findings = kept
    result.baseline_suppressed = suppressed
    result.unused_baseline = unused
    result.cache_hits = cache.hits
    result.cache_misses = cache.misses
    result.elapsed_seconds = time.perf_counter() - start
    obs_metrics.inc(LINT_FILES, result.files_scanned)
    obs_metrics.inc(LINT_CACHE_HITS, cache.hits)
    obs_metrics.inc(LINT_CACHE_MISSES, cache.misses)
    obs_metrics.inc(LINT_FINDINGS, len(kept))
    obs_metrics.observe(LINT_RUN_SECONDS, result.elapsed_seconds)
    _log.info(
        "lint.completed",
        files=result.files_scanned,
        findings=len(kept),
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        graph=result.graph_enabled,
        graph_reanalyzed=result.graph_files_reanalyzed,
        dataflow=result.dataflow_enabled,
        dataflow_reanalyzed=result.dataflow_files_reanalyzed,
        perf=result.perf_enabled,
        perf_reanalyzed=result.perf_files_reanalyzed,
        seconds=round(result.elapsed_seconds, 4),
    )
    return result
