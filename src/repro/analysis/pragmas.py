"""In-source suppression pragmas: ``# repro: noqa[rule-a,rule-b]``.

A pragma suppresses findings on its own line.  The bare form
``# repro: noqa`` suppresses every rule on that line; the bracketed form
suppresses only the named rules — one or several, comma-separated, with
optional spaces (``noqa[rule-a, rule-b]``).  Several pragmas may share a
line; their rule sets union, and a bare pragma anywhere on the line wins
outright.  Pragmas live in the file content, so the per-file result
cache (keyed on a content hash) stays correct: the cache stores
post-pragma findings, and editing a pragma re-lints the file.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Finding

__all__ = ["pragma_lines", "apply_pragmas"]

#: ``# repro: noqa`` or ``# repro: noqa[rule-one, rule-two]``
_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\- ]+)\])?"
)

#: Sentinel meaning "all rules suppressed on this line".
ALL_RULES = "*"


def pragma_lines(source: str) -> Dict[int, Set[str]]:
    """Map of 1-based line number -> set of suppressed rule names.

    A bare ``noqa`` maps to ``{ALL_RULES}``.
    """
    pragmas: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        rules: Set[str] = set()
        for match in _PRAGMA_RE.finditer(line):
            spec: Optional[str] = match.group("rules")
            if spec is None:
                rules = {ALL_RULES}
                break
            rules.update(
                name.strip() for name in spec.split(",") if name.strip()
            )
        if rules:
            pragmas[lineno] = rules
    return pragmas


def apply_pragmas(
    findings: Sequence[Finding], source: str
) -> Tuple[List[Finding], int]:
    """Drop findings whose line carries a matching pragma.

    Returns ``(kept, suppressed_count)``.
    """
    pragmas = pragma_lines(source)
    if not pragmas:
        return list(findings), 0
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        rules = pragmas.get(finding.line)
        if rules is not None and (ALL_RULES in rules or finding.rule in rules):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed
