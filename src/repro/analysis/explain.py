"""``repro lint --explain [RULE]``: what a rule means and how it looks.

Pulls one rule from whichever registry owns it — per-file, graph,
dataflow, or perf — and renders its description, severity, scope, and a
minimal positive/negative example pair.  The examples are real sources
(the explain tests execute the per-file ones through
:func:`lint_source` and the pack ones through their engines), so the
documentation cannot drift from the rules it describes.  With no RULE,
:func:`explain_index` lists every rule grouped by pack.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.core import all_rules
from repro.analysis.dataflow.rules import all_dataflow_rules
from repro.analysis.graph.rules import all_graph_rules
from repro.analysis.perf.rules import all_perf_rules

__all__ = ["explain_rule", "explain_index", "explainable_rules", "rule_record"]

#: How the syntax-error pseudo-rule (emitted by the runner, not a
#: registry) is documented.
_SYNTAX_ERROR = {
    "name": "syntax-error",
    "kind": "per-file",
    "severity": "error",
    "description": (
        "the file does not parse; every other rule is skipped for it so "
        "one broken file cannot hide the rest of the sweep"
    ),
    "example_positive": "def broken(:\n    pass\n",
    "example_negative": "def fine():\n    pass\n",
}


def rule_record(name: str) -> Optional[dict]:
    """Uniform metadata for one rule, or ``None`` if unknown."""
    if name == _SYNTAX_ERROR["name"]:
        return dict(_SYNTAX_ERROR)
    for rule in all_rules():
        if rule.name == name:
            return {
                "name": rule.name,
                "kind": "per-file",
                "severity": rule.severity,
                "description": rule.description,
                "example_positive": rule.example_positive,
                "example_negative": rule.example_negative,
            }
    for rule in all_graph_rules():
        if rule.name == name:
            return {
                "name": rule.name,
                "kind": f"graph ({rule.scope} scope)",
                "severity": rule.severity,
                "description": rule.description,
                "example_positive": rule.example_positive,
                "example_negative": rule.example_negative,
            }
    for rule in all_dataflow_rules():
        if rule.name == name:
            return {
                "name": rule.name,
                "kind": "dataflow",
                "severity": rule.severity,
                "description": rule.description,
                "example_positive": rule.example_positive,
                "example_negative": rule.example_negative,
            }
    for rule in all_perf_rules():
        if rule.name == name:
            return {
                "name": rule.name,
                "kind": "perf",
                "severity": rule.severity,
                "description": rule.description,
                "example_positive": rule.example_positive,
                "example_negative": rule.example_negative,
            }
    return None


def explainable_rules() -> List[str]:
    names = {_SYNTAX_ERROR["name"]}
    names.update(rule.name for rule in all_rules())
    names.update(rule.name for rule in all_graph_rules())
    names.update(rule.name for rule in all_dataflow_rules())
    names.update(rule.name for rule in all_perf_rules())
    return sorted(names)


def _one_liner(description: str) -> str:
    """First sentence of a rule description, for the index listing."""
    text = " ".join(str(description).split())
    for stop in (". ", "; "):
        cut = text.find(stop)
        if cut != -1:
            return text[: cut + 1].rstrip("; ")
    return text


def explain_index() -> str:
    """Every rule grouped by pack, one line each — the no-RULE listing."""
    packs: List[Tuple[str, List[Tuple[str, str]]]] = [
        (
            "per-file (ast)",
            [(r.name, r.description) for r in all_rules()]
            + [(str(_SYNTAX_ERROR["name"]), str(_SYNTAX_ERROR["description"]))],
        ),
        ("graph", [(r.name, r.description) for r in all_graph_rules()]),
        ("dataflow", [(r.name, r.description) for r in all_dataflow_rules()]),
        ("perf", [(r.name, r.description) for r in all_perf_rules()]),
    ]
    lines: List[str] = []
    for pack, rules in packs:
        lines.append(f"{pack}:")
        for name, description in sorted(rules):
            lines.append(f"  {name:28s} {_one_liner(description)}")
        lines.append("")
    lines.append("Run `repro lint --explain RULE` for details and examples.")
    return "\n".join(lines)


def _indent(block: str) -> str:
    return "\n".join(f"    {line}" for line in block.rstrip("\n").split("\n"))


def explain_rule(name: str) -> Optional[str]:
    """Human-readable explanation of one rule, or ``None`` if unknown."""
    record = rule_record(name)
    if record is None:
        return None
    lines = [
        f"{record['name']}  [{record['kind']}, severity: {record['severity']}]",
        "",
        str(record["description"]),
    ]
    if record["example_positive"]:
        lines += ["", "Flags:", _indent(str(record["example_positive"]))]
    if record["example_negative"]:
        lines += ["", "Passes:", _indent(str(record["example_negative"]))]
    lines += [
        "",
        f"Suppress one finding with `# repro: noqa[{record['name']}]` on "
        "the reported line, or add a baseline entry with a reason.",
    ]
    return "\n".join(lines)
