"""Interprocedural rules evaluated over the whole-program graphs.

Unlike per-file rules (:mod:`repro.analysis.rules`), these see the
assembled :class:`~repro.analysis.graph.project.ProjectGraph`.  They
come in two scopes:

* **module scope** — a module's findings depend only on its forward
  import closure (its own imports, the contract, and everything it can
  transitively reach).  These cache per file under a dependency digest.
* **project scope** — ``dead-symbol`` needs every file's references, so
  it caches under one global fingerprint instead.

Rule names share the namespace of the per-file rules: pragmas,
``--select``/``--ignore``, and the baseline ledger treat both kinds
uniformly.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.analysis.core import Finding

__all__ = [
    "GraphRule",
    "register_graph_rule",
    "all_graph_rules",
    "graph_rule_names",
    "graph_rules_fingerprint",
]

#: Identifiers that are alive by convention even with zero references.
_IMPLICITLY_ALIVE = {"main"}


class GraphRule:
    """Base for one whole-program invariant."""

    name: str = ""
    description: str = ""
    severity: str = "error"
    version: int = 1
    scope: str = "module"  # "module" | "project"
    #: Minimal sources for ``repro lint --explain``.
    example_positive: str = ""
    example_negative: str = ""

    def check_module(self, project, module: str) -> Iterator[Finding]:
        """Module-scope findings; must only read the module's forward
        closure (that is what the dependency cache fingerprints)."""
        return iter(())

    def check_project(self, project) -> Iterator[Finding]:
        """Project-scope findings (``scope == "project"`` only)."""
        return iter(())

    def finding(
        self, rel_path: str, lineno: int, message: str
    ) -> Finding:
        return Finding(
            path=rel_path,
            line=lineno,
            col=0,
            rule=self.name,
            message=message,
            severity=self.severity,
        )


_GRAPH_REGISTRY: Dict[str, GraphRule] = {}


def register_graph_rule(cls: type) -> type:
    instance = cls()
    if not instance.name:
        raise ValueError(f"graph rule class {cls.__name__} has no name")
    if instance.name in _GRAPH_REGISTRY:
        raise ValueError(f"duplicate graph rule name: {instance.name}")
    _GRAPH_REGISTRY[instance.name] = instance
    return cls


def all_graph_rules() -> List[GraphRule]:
    return [_GRAPH_REGISTRY[name] for name in sorted(_GRAPH_REGISTRY)]


def graph_rule_names() -> List[str]:
    return sorted(_GRAPH_REGISTRY)


def graph_rules_fingerprint() -> str:
    from repro.utils.hashing import stable_hash

    payload = [
        (rule.name, rule.version, rule.severity, rule.scope)
        for rule in all_graph_rules()
    ]
    return stable_hash(payload)


@register_graph_rule
class ImportCycle(GraphRule):
    """A top-level import cycle is an ImportError held together by luck.

    Function-body imports are exempt: a lazy import is the sanctioned
    way to break a cycle (the rule-registry pattern depends on it).
    """

    name = "import-cycle"
    description = "module participates in a top-level import cycle"
    version = 1
    example_positive = (
        "# pkg/a.py\n"
        "from pkg.b import helper\n"
        "# pkg/b.py\n"
        "from pkg.a import other  # completes the cycle\n"
    )
    example_negative = (
        "# pkg/a.py\n"
        "def late():\n"
        "    from pkg.b import helper  # lazy import breaks the cycle\n"
        "    return helper()\n"
    )

    def check_module(self, project, module: str) -> Iterator[Finding]:
        graph = project.imports
        scc = graph.scc_of(module)
        members = sorted(scc)
        self_loop = len(members) == 1 and module in graph.edges[module]
        if len(members) == 1 and not self_loop:
            return
        rel_path = graph.modules[module]
        if self_loop:
            yield self.finding(
                rel_path,
                graph.edge_line(module, module),
                f"module {module} imports itself at top level",
            )
            return
        # Anchor the finding on this module's first edge into the cycle.
        peers = [m for m in members if m != module]
        target = next(
            (m for m in peers if m in graph.edges[module]), peers[0]
        )
        chain = " -> ".join(members + [members[0]])
        yield self.finding(
            rel_path,
            graph.edge_line(module, target),
            f"top-level import cycle: {chain}; break it with a "
            "function-body import or an extracted module",
        )


@register_graph_rule
class LayeringViolation(GraphRule):
    """Imports must respect the declared layer contract (lazy ones too)."""

    name = "layering-violation"
    description = "import edge breaks the .repro-arch.toml layer contract"
    version = 1
    example_positive = (
        "# src/repro/utils/paths.py — utils is the bottom layer\n"
        "from repro.lake.store import WeightStore  # imports upward\n"
    )
    example_negative = (
        "# src/repro/lake/store.py — lake may reach down into utils\n"
        "from repro.utils.hashing import stable_hash\n"
    )

    def check_module(self, project, module: str) -> Iterator[Finding]:
        contract = project.contract
        if contract is None:
            return
        graph = project.imports
        rel_path = graph.modules[module]
        for imported, lineno, _top_level in graph.iter_import_edges(module):
            reason = contract.violation(module, imported)
            if reason is not None:
                yield self.finding(
                    rel_path,
                    lineno,
                    f"{module} imports {imported}: {reason}",
                )


@register_graph_rule
class PoolTaskClosure(GraphRule):
    """Pool-submitted callables must be clean across module boundaries.

    The per-file ``pool-task`` rule sees lambdas and nested defs at the
    submission site; this rule follows the reference into its defining
    module — a task imported from elsewhere must resolve to a genuine
    module-level function (not a module-level lambda), and nothing the
    task transitively calls may mutate module state via ``global``
    (workers would each mutate their own copy and the writes are lost).
    Initializers are exempt from the global check: installing worker
    state is their documented job.
    """

    name = "pool-task-closure"
    description = (
        "WaveExecutor task resolves to unpicklable or worker-unsafe code"
    )
    version = 1
    example_positive = (
        "# tasks.py\n"
        "SEEN = set()\n"
        "def train(spec):\n"
        "    global SEEN\n"
        "    SEEN = SEEN | {spec.name}  # lost in pooled workers\n"
        "# driver.py\n"
        "from tasks import train\n"
        "def run(pool, specs):\n"
        "    pool.run_wave(train, specs)\n"
    )
    example_negative = (
        "# tasks.py\n"
        "def train(spec):\n"
        "    return spec.name  # results flow back via the wave\n"
        "# driver.py\n"
        "from tasks import train\n"
        "def run(pool, specs):\n"
        "    pool.run_wave(train, specs)\n"
    )

    def check_module(self, project, module: str) -> Iterator[Finding]:
        calls = project.calls
        graph = project.imports
        rel_path = graph.modules[module]
        facts = graph.facts[rel_path]
        for kind, target, lineno in facts.pool_tasks:
            owner = graph.resolve(target)
            if owner is not None and owner != target:
                owner_facts = graph.facts[graph.modules[owner]]
                symbol = target[len(owner) + 1:]
                kinds = {
                    name: sym_kind
                    for name, sym_kind, _line, _dec in owner_facts.symbols
                }
                if kinds.get(symbol) == "lambda":
                    yield self.finding(
                        rel_path,
                        lineno,
                        f"pool {kind} {target} resolves to a module-level "
                        f"lambda in {owner}; lambdas cannot be pickled",
                    )
                    continue
            if kind != "run_wave":
                continue
            resolved = calls.resolve_callable(module, target)
            if resolved is None:
                continue  # unresolvable: stay conservative
            for reached in sorted(calls.reachable(resolved) | {resolved}):
                _mod, reached_fn = calls.functions[reached]
                if reached_fn.uses_global:
                    yield self.finding(
                        rel_path,
                        lineno,
                        f"pool task {target} transitively reaches {reached}, "
                        "which mutates module state via 'global'; pooled "
                        "workers lose these writes relative to inline mode",
                    )


@register_graph_rule
class DeadSymbol(GraphRule):
    """Public API nobody references is documentation that lies.

    A top-level public function or class defined under a source root is
    dead when no file references its name (as a load, an attribute, or
    an import) and no *other* module exports it.  A module's own
    ``__all__`` does not keep a symbol alive — exported-but-unused is
    exactly the rot this rule exists to catch.  Decorated definitions
    are exempt: a decorator like ``@register`` is a reference with
    side effects.
    """

    name = "dead-symbol"
    description = "public top-level symbol is never referenced"
    version = 1
    scope = "project"
    example_positive = (
        "# src/repro/util_extras.py\n"
        "def forgotten_helper():  # nothing imports or calls it\n"
        "    return 42\n"
    )
    example_negative = (
        "# src/repro/util_extras.py\n"
        "def used_helper():\n"
        "    return 42\n"
        "# src/repro/consumer.py\n"
        "from repro.util_extras import used_helper\n"
    )

    def check_project(self, project) -> Iterator[Finding]:
        graph = project.imports
        referenced: Dict[str, int] = {}
        exported_by: Dict[str, List[str]] = {}
        for module, rel_path in graph.modules.items():
            facts = graph.facts[rel_path]
            for name in facts.refs:
                referenced[name] = referenced.get(name, 0) + 1
            for name in facts.exports:
                exported_by.setdefault(name, []).append(module)
        for module in sorted(graph.modules):
            rel_path = graph.modules[module]
            if not any(
                rel_path.startswith(root.rstrip("/") + "/")
                for root in project.source_roots
            ):
                continue
            facts = graph.facts[rel_path]
            for name, kind, lineno, decorated in facts.symbols:
                if kind == "lambda" or decorated:
                    continue
                if name.startswith("_") or name in _IMPLICITLY_ALIVE:
                    continue
                if referenced.get(name, 0) > 0:
                    continue
                if any(m != module for m in exported_by.get(name, [])):
                    continue
                yield self.finding(
                    rel_path,
                    lineno,
                    f"public {kind} {name!r} is never referenced and no "
                    "other module exports it; delete it or add it to a "
                    "consumer",
                )
