"""Export the project graph for humans and tooling.

``repro graph --json`` emits a stable document (sorted keys, sorted
edges, no timestamps) that CI archives next to test results; the bench
smoke reads the same document to learn each module's reverse-import
closure.  ``repro graph --dot`` renders Graphviz source with one
cluster per contract layer and dashed edges for lazy imports.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.analysis.graph.project import ProjectGraph

__all__ = ["graph_to_dict", "render_graph_json", "render_graph_dot"]

_EXPORT_VERSION = 1


def graph_to_dict(
    project: ProjectGraph, closures: bool = False
) -> Dict[str, object]:
    graph = project.imports
    layers = graph.topological_layers()
    layer_index = {
        module: depth
        for depth, members in enumerate(layers)
        for module in members
    }
    modules: List[Dict[str, object]] = []
    for module in sorted(graph.modules):
        contract_layer: Optional[str] = None
        if project.contract is not None:
            layer = project.contract.layer_of(module)
            contract_layer = layer.name if layer is not None else None
        entry: Dict[str, object] = {
            "name": module,
            "path": graph.modules[module],
            "depth": layer_index[module],
            "contract_layer": contract_layer,
            "imports": sorted(graph.edges[module]),
            "lazy_imports": sorted(
                graph.all_edges[module] - graph.edges[module]
            ),
        }
        if closures:
            entry["reverse_closure"] = sorted(graph.reverse_closure(module))
        modules.append(entry)
    return {
        "version": _EXPORT_VERSION,
        "fingerprint": graph.fingerprint(),
        "module_count": len(graph.modules),
        "edge_count": sum(len(targets) for targets in graph.all_edges.values()),
        "cycles": graph.cycles(),
        "layers": layers,
        "modules": modules,
    }


def render_graph_json(project: ProjectGraph, closures: bool = False) -> str:
    return json.dumps(
        graph_to_dict(project, closures=closures), indent=2, sort_keys=True
    )


def _dot_id(module: str) -> str:
    return '"' + module.replace('"', "") + '"'


def render_graph_dot(project: ProjectGraph) -> str:
    """Graphviz source: layer clusters, solid top-level / dashed lazy edges."""
    graph = project.imports
    lines = [
        "digraph repro_imports {",
        "  rankdir=BT;",
        '  node [shape=box, fontsize=10, fontname="Helvetica"];',
    ]
    clustered: Dict[str, List[str]] = {}
    loose: List[str] = []
    for module in sorted(graph.modules):
        layer = (
            project.contract.layer_of(module)
            if project.contract is not None
            else None
        )
        if layer is None:
            loose.append(module)
        else:
            clustered.setdefault(layer.name, []).append(module)
    for position, layer_name in enumerate(sorted(clustered)):
        lines.append(f"  subgraph cluster_{position} {{")
        lines.append(f'    label="{layer_name}";')
        lines.append("    style=rounded;")
        for module in clustered[layer_name]:
            lines.append(f"    {_dot_id(module)};")
        lines.append("  }")
    for module in loose:
        lines.append(f"  {_dot_id(module)};")
    for module in sorted(graph.modules):
        for target in sorted(graph.edges[module]):
            lines.append(f"  {_dot_id(module)} -> {_dot_id(target)};")
        for target in sorted(graph.all_edges[module] - graph.edges[module]):
            lines.append(
                f"  {_dot_id(module)} -> {_dot_id(target)} [style=dashed];"
            )
    lines.append("}")
    return "\n".join(lines) + "\n"
