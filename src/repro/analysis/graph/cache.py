"""Dependency-aware cache for whole-program analysis.

Two tiers, one JSON file (``.repro-graph-cache.json``):

* **extractions** — :class:`~repro.analysis.graph.extract.ModuleFacts`
  per file, keyed on the file's content digest.  A warm graph build
  re-parses only edited files; graph assembly runs on cached facts.
* **module findings** — post-pragma graph findings per file, keyed on a
  *dependency digest*: the content digests of the file's whole forward
  import closure plus the contract and graph-rule fingerprints.  Editing
  a file therefore invalidates exactly itself and its reverse-import
  closure — every module whose forward closure contains the edit —
  while the rest of the tree replays from cache.
* **project findings** — the global-scope rules (``dead-symbol``) keyed
  on one fingerprint over every file digest, since any edit anywhere can
  change what is referenced.

Written atomically like the per-file findings cache; an unwritable
cache degrades to a slower lint, never a failed one.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional

from repro.analysis.core import Finding
from repro.analysis.graph.extract import EXTRACT_VERSION, ModuleFacts

__all__ = ["GraphCache", "DEFAULT_GRAPH_CACHE_NAME"]

DEFAULT_GRAPH_CACHE_NAME = ".repro-graph-cache.json"
_FORMAT_VERSION = 1


class GraphCache:
    """Load-once, save-once; ``path=None`` disables persistence."""

    def __init__(self, path: Optional[str]):
        self.path = path
        self.extraction_hits = 0
        self.extraction_misses = 0
        self.module_hits = 0
        self.module_misses = 0
        self._dirty = False
        self._extractions: Dict[str, Dict[str, object]] = {}
        self._module_findings: Dict[str, Dict[str, object]] = {}
        self._project_findings: Dict[str, object] = {}
        if path is not None:
            self._load(path)

    def _load(self, path: str) -> None:
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, ValueError):
            return
        if (
            payload.get("version") != _FORMAT_VERSION
            or payload.get("extract_version") != EXTRACT_VERSION
        ):
            return
        extractions = payload.get("extractions", {})
        module_findings = payload.get("module_findings", {})
        project_findings = payload.get("project_findings", {})
        if isinstance(extractions, dict):
            self._extractions = extractions
        if isinstance(module_findings, dict):
            self._module_findings = module_findings
        if isinstance(project_findings, dict):
            self._project_findings = project_findings

    # -- extractions ---------------------------------------------------
    def get_extraction(
        self, rel_path: str, digest: str
    ) -> Optional[ModuleFacts]:
        entry = self._extractions.get(rel_path)
        if entry is None or entry.get("digest") != digest:
            self.extraction_misses += 1
            return None
        self.extraction_hits += 1
        return ModuleFacts.from_dict(entry["facts"])  # type: ignore[arg-type]

    def put_extraction(
        self, rel_path: str, digest: str, facts: ModuleFacts
    ) -> None:
        self._extractions[rel_path] = {
            "digest": digest,
            "facts": facts.to_dict(),
        }
        self._dirty = True

    # -- module-scope findings -----------------------------------------
    def get_module_findings(
        self, rel_path: str, dep_digest: str
    ) -> Optional[List[Finding]]:
        entry = self._module_findings.get(rel_path)
        if entry is None or entry.get("dep_digest") != dep_digest:
            self.module_misses += 1
            return None
        self.module_hits += 1
        return [Finding.from_dict(raw) for raw in entry.get("findings", [])]  # type: ignore[union-attr]

    def put_module_findings(
        self, rel_path: str, dep_digest: str, findings: List[Finding]
    ) -> None:
        self._module_findings[rel_path] = {
            "dep_digest": dep_digest,
            "findings": [finding.to_dict() for finding in findings],
        }
        self._dirty = True

    # -- project-scope findings ----------------------------------------
    def get_project_findings(self, key: str) -> Optional[List[Finding]]:
        if self._project_findings.get("key") != key:
            return None
        return [
            Finding.from_dict(raw)
            for raw in self._project_findings.get("findings", [])  # type: ignore[union-attr]
        ]

    def put_project_findings(self, key: str, findings: List[Finding]) -> None:
        self._project_findings = {
            "key": key,
            "findings": [finding.to_dict() for finding in findings],
        }
        self._dirty = True

    # -- housekeeping --------------------------------------------------
    def prune(self, live_paths) -> None:
        """Drop entries for files that no longer exist in the sweep."""
        live = set(live_paths)
        for table in (self._extractions, self._module_findings):
            for stale in [rel for rel in table if rel not in live]:
                del table[stale]
                self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload = {
            "version": _FORMAT_VERSION,
            "extract_version": EXTRACT_VERSION,
            "extractions": self._extractions,
            "module_findings": self._module_findings,
            "project_findings": self._project_findings,
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        descriptor, tmp_path = tempfile.mkstemp(
            prefix=".repro-graph-cache.", dir=directory
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
            os.replace(tmp_path, self.path)
        except OSError:
            # An unwritable cache must not fail the lint.
            try:
                os.unlink(tmp_path)
            except OSError:  # repro: noqa[swallowed-exception]
                pass
        else:
            self._dirty = False
