"""The project import graph: modules, edges, cycles, layers, closures.

Nodes are every linted file's dotted module name; edges point at the
*deepest project module* an import statement resolves to (``from
repro.lake import LakeSpec`` is an edge to ``repro.lake``; ``import
repro.lake.store`` is an edge to ``repro.lake.store``; external imports
resolve to nothing and contribute no edge).

Two edge sets are kept:

* ``edges`` — top-level imports, executed at import time.  Cycle
  detection and topological layering run on these: a cycle here is a
  real ``ImportError`` waiting on statement reordering.
* ``all_edges`` — top-level plus function-body (lazy) imports.  Layer
  contracts and dependency closures use these: a lazily imported module
  still shapes behavior, so it still counts as a dependency.

Layers come from Kahn-style leveling of the strongly-connected-component
condensation: layer 0 depends on nothing, and every module's layer is
strictly greater than the layers of everything it imports (modules in
one cycle share a layer).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.analysis.graph.extract import ModuleFacts
from repro.utils.hashing import stable_hash

__all__ = ["ImportGraph"]


class ImportGraph:
    def __init__(self, facts: Dict[str, ModuleFacts]):
        """``facts`` maps rel_path -> :class:`ModuleFacts`."""
        self.facts = facts
        #: dotted module name -> rel_path (first wins on collision)
        self.modules: Dict[str, str] = {}
        for rel_path in sorted(facts):
            module = facts[rel_path].module
            self.modules.setdefault(module, rel_path)
        self._known = set(self.modules)
        self.edges: Dict[str, Set[str]] = {m: set() for m in self.modules}
        self.all_edges: Dict[str, Set[str]] = {m: set() for m in self.modules}
        #: (importer, imported) -> lineno of the first statement creating it
        self.edge_lines: Dict[Tuple[str, str], int] = {}
        for rel_path in sorted(facts):
            file_facts = facts[rel_path]
            module = file_facts.module
            if self.modules[module] != rel_path:
                continue  # duplicate module name; first file wins
            for target, lineno in file_facts.top_imports:
                self._add_edge(module, target, lineno, top_level=True)
            for target, lineno in file_facts.lazy_imports:
                self._add_edge(module, target, lineno, top_level=False)
        self._sccs: Optional[List[FrozenSet[str]]] = None
        self._scc_of: Optional[Dict[str, FrozenSet[str]]] = None
        self._layers: Optional[List[List[str]]] = None
        self._forward: Dict[str, FrozenSet[str]] = {}

    # -- construction --------------------------------------------------
    def resolve(self, target: str) -> Optional[str]:
        """Deepest known project module that is a dotted prefix of ``target``."""
        parts = target.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self._known:
                return candidate
        return None

    def _add_edge(
        self, module: str, target: str, lineno: int, top_level: bool
    ) -> None:
        resolved = self.resolve(target)
        if resolved is None:
            return
        if resolved != module:
            self.all_edges[module].add(resolved)
            if top_level:
                self.edges[module].add(resolved)
            self.edge_lines.setdefault((module, resolved), lineno)
        elif top_level and target == module:
            # `import pkg.mod` from inside pkg/mod.py: a true self-import.
            self.edges[module].add(resolved)
            self.all_edges[module].add(resolved)
            self.edge_lines.setdefault((module, resolved), lineno)

    # -- cycles --------------------------------------------------------
    def sccs(self) -> List[FrozenSet[str]]:
        """Strongly connected components of the top-level graph (iterative
        Tarjan, reverse-topological order)."""
        if self._sccs is not None:
            return self._sccs
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        result: List[FrozenSet[str]] = []
        counter = 0
        for root in sorted(self.modules):
            if root in index:
                continue
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, child_index = work[-1]
                if child_index == 0:
                    index[node] = lowlink[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                children = sorted(self.edges[node])
                recursed = False
                for position in range(child_index, len(children)):
                    child = children[position]
                    if child not in index:
                        work[-1] = (node, position + 1)
                        work.append((child, 0))
                        recursed = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if recursed:
                    continue
                work.pop()
                if lowlink[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    result.append(frozenset(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        self._sccs = result
        self._scc_of = {m: scc for scc in result for m in scc}
        return result

    def scc_of(self, module: str) -> FrozenSet[str]:
        self.sccs()
        assert self._scc_of is not None
        return self._scc_of[module]

    def cycles(self) -> List[List[str]]:
        """Sorted member lists of every nontrivial cycle (incl. self-loops)."""
        found: List[List[str]] = []
        for scc in self.sccs():
            members = sorted(scc)
            if len(members) > 1 or members[0] in self.edges[members[0]]:
                found.append(members)
        return sorted(found)

    # -- layers --------------------------------------------------------
    def topological_layers(self) -> List[List[str]]:
        """Modules grouped by dependency depth over top-level edges.

        ``layers[0]`` imports nothing in the project; every module sits
        exactly one layer above its deepest dependency.  Cycle members
        share a layer.  Concatenated bottom-up, the layers are a valid
        linearization: every import points to the same or a lower layer
        (strictly lower across distinct SCCs).
        """
        if self._layers is not None:
            return self._layers
        sccs = self.sccs()  # Tarjan emits reverse-topological order
        scc_depth: Dict[FrozenSet[str], int] = {}
        for scc in sccs:
            depth = 0
            for member in scc:
                for dep in self.edges[member]:
                    dep_scc = self.scc_of(dep)
                    if dep_scc is not scc:
                        depth = max(depth, scc_depth[dep_scc] + 1)
            scc_depth[scc] = depth
        layers: Dict[int, List[str]] = {}
        for scc, depth in scc_depth.items():
            layers.setdefault(depth, []).extend(scc)
        self._layers = [
            sorted(layers[depth]) for depth in sorted(layers)
        ]
        return self._layers

    # -- closures ------------------------------------------------------
    def forward_closure(self, module: str) -> FrozenSet[str]:
        """``module`` plus everything it transitively imports (all edges)."""
        cached = self._forward.get(module)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        pending = [module]
        while pending:
            node = pending.pop()
            if node in seen:
                continue
            seen.add(node)
            pending.extend(self.all_edges.get(node, ()))
        closure = frozenset(seen)
        self._forward[module] = closure
        return closure

    def reverse_closure(self, module: str) -> FrozenSet[str]:
        """``module`` plus everything that transitively imports it."""
        reverse: Dict[str, Set[str]] = {m: set() for m in self.modules}
        for importer, targets in self.all_edges.items():
            for target in targets:
                reverse.setdefault(target, set()).add(importer)
        seen: Set[str] = set()
        pending = [module]
        while pending:
            node = pending.pop()
            if node in seen:
                continue
            seen.add(node)
            pending.extend(reverse.get(node, ()))
        return frozenset(seen)

    # -- identity ------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable digest of the graph topology (both edge kinds)."""
        payload = {
            "modules": sorted(self.modules),
            "top": sorted(
                (a, b) for a, targets in self.edges.items() for b in targets
            ),
            "all": sorted(
                (a, b) for a, targets in self.all_edges.items() for b in targets
            ),
        }
        return stable_hash(payload)

    def edge_line(self, importer: str, imported: str) -> int:
        return self.edge_lines.get((importer, imported), 1)

    def iter_import_edges(
        self, module: str
    ) -> Iterable[Tuple[str, int, bool]]:
        """(imported, lineno, is_top_level) for every project edge of a module."""
        for target in sorted(self.all_edges.get(module, ())):
            yield (
                target,
                self.edge_line(module, target),
                target in self.edges.get(module, ()),
            )
