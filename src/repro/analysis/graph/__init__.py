"""Whole-program analysis: import graph, call graph, layer contract.

Per-file AST rules (:mod:`repro.analysis.rules`) cannot see an unseeded
RNG reached *through* a helper, or ``repro.analysis`` quietly importing
``repro.lake``.  This subpackage supplies the missing view: every linted
file is distilled into :class:`~repro.analysis.graph.extract.ModuleFacts`,
assembled into an :class:`~repro.analysis.graph.imports.ImportGraph`
and a conservative :class:`~repro.analysis.graph.callgraph.CallGraph`,
checked against the declared layer contract (``.repro-arch.toml``), and
evaluated by interprocedural rules — all cached so a one-file edit
re-analyzes only the file plus its reverse-import closure.
"""

from repro.analysis.graph.cache import DEFAULT_GRAPH_CACHE_NAME, GraphCache
from repro.analysis.graph.callgraph import CallGraph
from repro.analysis.graph.contract import (
    DEFAULT_CONTRACT_NAME,
    LayerContract,
    load_contract,
)
from repro.analysis.graph.export import (
    graph_to_dict,
    render_graph_dot,
    render_graph_json,
)
from repro.analysis.graph.extract import (
    ModuleFacts,
    extract_facts,
    module_name_for,
)
from repro.analysis.graph.imports import ImportGraph
from repro.analysis.graph.project import (
    GraphReport,
    ProjectGraph,
    analyze_project,
    build_project,
)
from repro.analysis.graph.rules import (
    GraphRule,
    all_graph_rules,
    graph_rule_names,
    graph_rules_fingerprint,
    register_graph_rule,
)

__all__ = [
    "CallGraph",
    "DEFAULT_CONTRACT_NAME",
    "DEFAULT_GRAPH_CACHE_NAME",
    "GraphCache",
    "GraphReport",
    "GraphRule",
    "ImportGraph",
    "LayerContract",
    "ModuleFacts",
    "ProjectGraph",
    "all_graph_rules",
    "analyze_project",
    "build_project",
    "extract_facts",
    "graph_rule_names",
    "graph_rules_fingerprint",
    "graph_to_dict",
    "load_contract",
    "module_name_for",
    "register_graph_rule",
    "render_graph_dot",
    "render_graph_json",
]
