"""Assembly and incremental evaluation of the whole-program view.

:class:`ProjectGraph` bundles what every graph rule reads: the import
graph, the call graph, and the layer contract.  :func:`analyze_project`
drives one incremental evaluation — extraction (cached per content
digest), graph assembly (always, it is cheap pure-Python over facts),
then rule evaluation cached per dependency digest so that an edit
re-analyzes only the edited file plus its reverse-import closure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import Finding
from repro.analysis.graph.cache import GraphCache
from repro.analysis.graph.callgraph import CallGraph
from repro.analysis.graph.contract import LayerContract
from repro.analysis.graph.extract import ModuleFacts, extract_facts
from repro.analysis.graph.imports import ImportGraph
from repro.analysis.graph.rules import (
    all_graph_rules,
    graph_rules_fingerprint,
)
from repro.analysis.pragmas import apply_pragmas
from repro.utils.hashing import stable_hash

__all__ = ["ProjectGraph", "GraphReport", "build_project", "analyze_project"]


class ProjectGraph:
    """Everything a graph rule may inspect."""

    def __init__(
        self,
        facts: Dict[str, ModuleFacts],
        contract: Optional[LayerContract],
        source_roots: Tuple[str, ...] = ("src",),
    ):
        self.imports = ImportGraph(facts)
        self.calls = CallGraph(self.imports)
        self.contract = contract
        self.source_roots = source_roots


@dataclass
class GraphReport:
    """One incremental whole-program evaluation."""

    findings: List[Finding] = field(default_factory=list)
    modules: int = 0
    top_edges: int = 0
    all_edges: int = 0
    cycles: int = 0
    files_reanalyzed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    fingerprint: str = ""


def build_project(
    files: Dict[str, Tuple[str, str]],
    contract: Optional[LayerContract],
    cache: Optional[GraphCache] = None,
) -> ProjectGraph:
    """Extract facts (through ``cache`` when given) and assemble graphs.

    ``files`` maps rel_path -> (source, content_digest).
    """
    source_roots = contract.source_roots if contract is not None else ("src",)
    facts: Dict[str, ModuleFacts] = {}
    for rel_path in sorted(files):
        source, digest = files[rel_path]
        file_facts = (
            cache.get_extraction(rel_path, digest) if cache is not None else None
        )
        if file_facts is None:
            file_facts = extract_facts(rel_path, source, source_roots)
            if cache is not None:
                cache.put_extraction(rel_path, digest, file_facts)
        facts[rel_path] = file_facts
    return ProjectGraph(facts, contract, source_roots)


def _dependency_digest(
    project: ProjectGraph,
    module: str,
    digests: Dict[str, str],
    contract_digest: str,
    rules_fp: str,
) -> str:
    """Fingerprint of everything a module's module-scope findings read."""
    graph = project.imports
    closure_files = sorted(
        (graph.modules[dep], digests[graph.modules[dep]])
        for dep in graph.forward_closure(module)
        if graph.modules[dep] in digests
    )
    return stable_hash(
        {"deps": closure_files, "contract": contract_digest, "rules": rules_fp}
    )


def analyze_project(
    files: Dict[str, Tuple[str, str]],
    contract: Optional[LayerContract],
    cache: GraphCache,
    project: Optional[ProjectGraph] = None,
) -> GraphReport:
    """Run every graph rule incrementally over ``files``.

    Returns post-pragma, pre-baseline findings plus cache accounting:
    ``files_reanalyzed`` counts the modules whose rule evaluation could
    not be replayed from cache — after a one-file edit that is exactly
    the file plus its reverse-import closure.  A prebuilt ``project``
    (shared with the dataflow phase) skips re-assembly.
    """
    if project is None:
        project = build_project(files, contract, cache)
    graph = project.imports
    cache.prune(files)
    report = GraphReport(
        modules=len(graph.modules),
        top_edges=sum(len(targets) for targets in graph.edges.values()),
        all_edges=sum(len(targets) for targets in graph.all_edges.values()),
        cycles=len(graph.cycles()),
        fingerprint=graph.fingerprint(),
    )
    digests = {rel_path: digest for rel_path, (_s, digest) in files.items()}
    contract_digest = contract.digest() if contract is not None else "none"
    rules_fp = graph_rules_fingerprint()
    module_rules = [rule for rule in all_graph_rules() if rule.scope == "module"]
    project_rules = [
        rule for rule in all_graph_rules() if rule.scope == "project"
    ]
    aggregate: List[Finding] = []
    for module in sorted(graph.modules):
        rel_path = graph.modules[module]
        dep_digest = _dependency_digest(
            project, module, digests, contract_digest, rules_fp
        )
        findings = cache.get_module_findings(rel_path, dep_digest)
        if findings is None:
            report.files_reanalyzed += 1
            raw: List[Finding] = []
            for rule in module_rules:
                raw.extend(rule.check_module(project, module))
            findings, _suppressed = apply_pragmas(
                sorted(raw), files[rel_path][0]
            )
            cache.put_module_findings(rel_path, dep_digest, findings)
        aggregate.extend(findings)
    project_key = stable_hash(
        {
            "files": sorted(digests.items()),
            "contract": contract_digest,
            "rules": rules_fp,
        }
    )
    project_findings = cache.get_project_findings(project_key)
    if project_findings is None:
        raw = []
        for rule in project_rules:
            raw.extend(rule.check_project(project))
        by_file: Dict[str, List[Finding]] = {}
        for finding in raw:
            by_file.setdefault(finding.path, []).append(finding)
        project_findings = []
        for rel_path, file_findings in sorted(by_file.items()):
            kept, _suppressed = apply_pragmas(
                sorted(file_findings), files[rel_path][0]
            )
            project_findings.extend(kept)
        cache.put_project_findings(project_key, project_findings)
    aggregate.extend(project_findings)
    report.findings = sorted(aggregate)
    report.cache_hits = cache.module_hits
    report.cache_misses = cache.module_misses
    return report
