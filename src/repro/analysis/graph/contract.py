"""The declared architecture contract: ``.repro-arch.toml``.

The contract names the project's layers bottom-up and the linter
enforces them: a module may import its own layer and anything below,
unless its layer declares ``may-import`` (an explicit allow-list of
other layers — the tooling layer uses this to see only the foundation).
``[[forbid]]`` entries add edge-level bans that hold regardless of
layering, with a written reason that surfaces in the finding.

Modules are matched to layers by longest dotted-prefix: the pattern
``repro`` catches the root package while ``repro.lake`` still claims
everything beneath it.  Unmatched modules (tests, benchmarks) are
unconstrained.

A missing contract file disables layering enforcement rather than
failing the run — the contract is opt-in per repository.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.utils.hashing import stable_hash

__all__ = [
    "Layer",
    "ForbidRule",
    "LayerContract",
    "load_contract",
    "DEFAULT_CONTRACT_NAME",
]

DEFAULT_CONTRACT_NAME = ".repro-arch.toml"
_FORMAT_VERSION = 1


def _prefix_match(pattern: str, module: str) -> bool:
    return module == pattern or module.startswith(pattern + ".")


@dataclass(frozen=True)
class Layer:
    name: str
    modules: Tuple[str, ...]
    may_import: Optional[Tuple[str, ...]] = None  # layer names; None = default


@dataclass(frozen=True)
class ForbidRule:
    source: str  # module prefix
    target: str  # module prefix
    reason: str

    def matches(self, importer: str, imported: str) -> bool:
        return _prefix_match(self.source, importer) and _prefix_match(
            self.target, imported
        )


@dataclass
class LayerContract:
    layers: List[Layer] = field(default_factory=list)  # bottom-up
    forbids: List[ForbidRule] = field(default_factory=list)
    source_roots: Tuple[str, ...] = ("src",)

    def __post_init__(self) -> None:
        self._index: Dict[str, int] = {
            layer.name: position for position, layer in enumerate(self.layers)
        }
        for layer in self.layers:
            for allowed in layer.may_import or ():
                if allowed not in self._index:
                    raise ConfigError(
                        f"layer {layer.name!r} may-import unknown layer "
                        f"{allowed!r}"
                    )

    def layer_of(self, module: str) -> Optional[Layer]:
        """Longest-prefix layer owning ``module``, or ``None``."""
        best: Optional[Layer] = None
        best_length = -1
        for layer in self.layers:
            for pattern in layer.modules:
                if _prefix_match(pattern, module) and len(pattern) > best_length:
                    best = layer
                    best_length = len(pattern)
        return best

    def violation(self, importer: str, imported: str) -> Optional[str]:
        """Reason the edge breaks the contract, or ``None`` if allowed."""
        for rule in self.forbids:
            if rule.matches(importer, imported):
                return (
                    f"forbidden import {rule.source} -> {rule.target}: "
                    f"{rule.reason}"
                )
        source_layer = self.layer_of(importer)
        target_layer = self.layer_of(imported)
        if source_layer is None or target_layer is None:
            return None
        if source_layer.name == target_layer.name:
            return None
        if source_layer.may_import is not None:
            if target_layer.name in source_layer.may_import:
                return None
            allowed = ", ".join(source_layer.may_import) or "nothing"
            return (
                f"layer {source_layer.name!r} may import only [{allowed}], "
                f"not layer {target_layer.name!r}"
            )
        if self._index[target_layer.name] <= self._index[source_layer.name]:
            return None
        return (
            f"layer {source_layer.name!r} sits below layer "
            f"{target_layer.name!r} and may not import upward"
        )

    def digest(self) -> str:
        """Stable digest; keys the dependency-aware findings cache."""
        payload = {
            "layers": [
                (layer.name, list(layer.modules), list(layer.may_import or ()))
                for layer in self.layers
            ],
            "forbids": [
                (rule.source, rule.target, rule.reason)
                for rule in self.forbids
            ],
            "roots": list(self.source_roots),
        }
        return stable_hash(payload)


def load_contract(path: str) -> Optional[LayerContract]:
    """Parse a contract file; ``None`` when the file does not exist."""
    try:
        with open(path, "rb") as handle:
            payload = tomllib.load(handle)
    except FileNotFoundError:
        return None
    except (OSError, tomllib.TOMLDecodeError) as error:
        raise ConfigError(f"unreadable contract {path}: {error}") from error
    if payload.get("version") != _FORMAT_VERSION:
        raise ConfigError(
            f"contract {path} has unsupported version "
            f"{payload.get('version')!r}"
        )
    project = payload.get("project", {})
    roots = tuple(project.get("source-roots", ["src"]))
    layers: List[Layer] = []
    for raw in payload.get("layers", []):
        name = raw.get("name")
        modules = raw.get("modules")
        if not name or not modules:
            raise ConfigError(
                f"contract {path}: every [[layers]] entry needs a name "
                "and a non-empty modules list"
            )
        may_import = raw.get("may-import")
        layers.append(
            Layer(
                name=str(name),
                modules=tuple(str(m) for m in modules),
                may_import=(
                    tuple(str(l) for l in may_import)
                    if may_import is not None
                    else None
                ),
            )
        )
    forbids: List[ForbidRule] = []
    for raw in payload.get("forbid", []):
        missing = {"from", "to", "reason"} - set(raw)
        if missing:
            raise ConfigError(
                f"contract {path}: [[forbid]] entry {raw!r} is missing "
                f"{sorted(missing)}"
            )
        if not str(raw["reason"]).strip():
            raise ConfigError(
                f"contract {path}: forbid {raw['from']} -> {raw['to']} "
                "needs a non-empty reason"
            )
        forbids.append(
            ForbidRule(
                source=str(raw["from"]),
                target=str(raw["to"]),
                reason=str(raw["reason"]),
            )
        )
    return LayerContract(layers=layers, forbids=forbids, source_roots=roots)
