"""A conservative project call graph over extracted function facts.

Nodes are fully-qualified functions (``repro.lake.store.WeightStore.put``).
Resolution is deliberately modest — this feeds lint rules, where a false
edge produces a false finding — and layered:

1. a canonical dotted call target that names a known function resolves
   exactly (``repro.utils.hashing.stable_hash``), including targets
   spelled through an imported module or class
   (``hashing.stable_hash``, ``WeightStore.put``);
2. a bare name resolves within the caller's own module;
3. ``self.method()`` resolves to a method of the caller's own class;
4. an ``obj.attr()`` call resolves only when exactly one function in the
   caller's *import closure* (plus its own module) bears that method
   name — ambiguity yields no edge rather than a guessed one.

Restricting attribute-heuristic targets to the import closure keeps
every reachability query inside the caller's forward dependency cone,
which is exactly the set the dependency-aware cache fingerprints; the
cache can therefore never serve a stale interprocedural verdict.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.graph.extract import FunctionFacts
from repro.analysis.graph.imports import ImportGraph

__all__ = ["CallGraph"]


class CallGraph:
    def __init__(self, graph: ImportGraph):
        self.graph = graph
        #: "module.qualname" -> (module, FunctionFacts)
        self.functions: Dict[str, Tuple[str, FunctionFacts]] = {}
        #: method/function bare name -> fq names carrying it
        self._by_name: Dict[str, List[str]] = {}
        #: module -> {class -> {method -> fq}}
        self._methods: Dict[str, Dict[str, Dict[str, str]]] = {}
        for module, rel_path in sorted(graph.modules.items()):
            facts = graph.facts[rel_path]
            for fn in facts.functions:
                fq = f"{module}.{fn.qualname}"
                self.functions[fq] = (module, fn)
                bare = fn.qualname.rsplit(".", 1)[-1]
                self._by_name.setdefault(bare, []).append(fq)
                if "." in fn.qualname:
                    class_name, method = fn.qualname.rsplit(".", 1)
                    self._methods.setdefault(module, {}).setdefault(
                        class_name, {}
                    )[method] = fq
        self._edges: Dict[str, Tuple[str, ...]] = {}

    # -- resolution ----------------------------------------------------
    def _resolve_dotted(self, module: str, target: str) -> Optional[str]:
        """Resolve one canonical dotted call target from ``module``."""
        if target in self.functions:
            return target
        # Module-local bare name or Class.method chain.
        local = f"{module}.{target}"
        if local in self.functions:
            return local
        # Imported class method: resolve the deepest module prefix, then
        # treat the remainder as qualname within it.
        owner = self.graph.resolve(target)
        if owner is not None and owner != target:
            remainder = target[len(owner) + 1:]
            candidate = f"{owner}.{remainder}"
            if candidate in self.functions:
                return candidate
        return None

    def _resolve_attr(self, module: str, name: str) -> Optional[str]:
        """Unique-name heuristic, scoped to the caller's import closure."""
        candidates = self._by_name.get(name)
        if not candidates:
            return None
        closure = self.graph.forward_closure(module)
        scoped = [
            fq for fq in candidates if self.functions[fq][0] in closure
        ]
        if len(scoped) == 1:
            return scoped[0]
        return None

    def callees(self, fq: str) -> Tuple[str, ...]:
        cached = self._edges.get(fq)
        if cached is not None:
            return cached
        module, fn = self.functions[fq]
        resolved: Set[str] = set()
        for target in fn.calls:
            callee = self._resolve_dotted(module, target)
            if callee is not None:
                resolved.add(callee)
        if "." in fn.qualname:
            class_name = fn.qualname.rsplit(".", 1)[0]
            class_methods = self._methods.get(module, {}).get(class_name, {})
            for method in fn.self_calls:
                callee = class_methods.get(method)
                if callee is not None:
                    resolved.add(callee)
        for name in fn.attr_calls:
            callee = self._resolve_attr(module, name)
            if callee is not None:
                resolved.add(callee)
        edges = tuple(sorted(resolved - {fq}))
        self._edges[fq] = edges
        return edges

    # -- queries -------------------------------------------------------
    def resolve_callable(self, module: str, target: str) -> Optional[str]:
        """Public entry: resolve a dotted callable reference from a module."""
        return self._resolve_dotted(module, target)

    def reachable(self, fq: str) -> FrozenSet[str]:
        """Every function transitively callable from ``fq`` (exclusive)."""
        seen: Set[str] = set()
        pending = list(self.callees(fq))
        while pending:
            node = pending.pop()
            if node in seen or node == fq:
                continue
            seen.add(node)
            pending.extend(self.callees(node))
        return frozenset(seen)

    def paths_to(self, root: str, target: str, limit: int = 6) -> List[str]:
        """One shortest call chain ``root -> ... -> target`` (BFS)."""
        if root == target:
            return [root]
        parents: Dict[str, str] = {}
        frontier = [root]
        seen = {root}
        depth = 0
        while frontier and depth < limit:
            next_frontier: List[str] = []
            for node in frontier:
                for callee in self.callees(node):
                    if callee in seen:
                        continue
                    seen.add(callee)
                    parents[callee] = node
                    if callee == target:
                        chain = [target]
                        while chain[-1] != root:
                            chain.append(parents[chain[-1]])
                        return list(reversed(chain))
                    next_frontier.append(callee)
            frontier = next_frontier
            depth += 1
        return []

    def digest_roots(self) -> Iterator[str]:
        """Functions that compute digests/ids, in stable order."""
        for fq in sorted(self.functions):
            if self.functions[fq][1].is_digest:
                yield fq
