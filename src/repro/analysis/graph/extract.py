"""Per-file fact extraction for whole-program analysis.

The graph layer never re-walks an AST twice: each file is distilled once
into a :class:`ModuleFacts` — imports split into *top-level* (executed
at import time) and *lazy* (inside a function body), top-level symbol
definitions, every identifier the file references, per-function call
targets and purity hazards, and pool-submission sites.  Facts are plain
JSON-serializable data, which is what lets :mod:`repro.analysis.graph.cache`
persist them keyed on the file's content digest: a warm graph build
parses only the files that actually changed.

The top-level / lazy split carries real semantics downstream:

* **cycle detection** uses top-level edges only — a function-body import
  is the sanctioned way to break an import cycle (the registry pattern
  in ``repro.analysis.core`` depends on it);
* **layering enforcement** uses both — ``repro.analysis`` lazily
  importing ``repro.lake`` would still be a contract violation.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import ImportMap
from repro.analysis.rules.determinism import _NONDETERMINISTIC_CALLS

__all__ = ["FunctionFacts", "ModuleFacts", "extract_facts", "module_name_for", "EXTRACT_VERSION"]

#: Bump whenever extraction output changes shape or meaning; guards the
#: on-disk extraction cache.
EXTRACT_VERSION = 1

#: ``random`` / ``numpy.random`` attributes that configure rather than
#: draw randomness (mirrors the per-file determinism rule).
_SAFE_RANDOM_ATTRS = {
    "seed", "Random", "default_rng", "SeedSequence", "RandomState",
    "Generator", "getstate", "setstate",
}
_RANDOM_PREFIXES = ("random.", "numpy.random.")

_DIGEST_NAME_RE = re.compile(
    r"digest|fingerprint|checksum|stable_hash|content_hash|make_id|model_id",
    re.IGNORECASE,
)


def _is_impure_call(qualified: str) -> bool:
    """Nondeterministic call: wall clock, uuid, or unseeded RNG draw."""
    if qualified in _NONDETERMINISTIC_CALLS:
        return True
    for prefix in _RANDOM_PREFIXES:
        if qualified.startswith(prefix):
            attr = qualified[len(prefix):].split(".")[0]
            return attr not in _SAFE_RANDOM_ATTRS
    return False


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


@dataclass
class FunctionFacts:
    """One top-level function or method, summarized for the call graph."""

    qualname: str  # "func" or "Class.method", module-relative
    lineno: int
    is_digest: bool = False  # name matches digest pattern or calls hashlib
    uses_global: bool = False  # contains a `global` statement
    calls: List[str] = field(default_factory=list)  # canonical dotted targets
    attr_calls: List[str] = field(default_factory=list)  # bare obj.attr() names
    self_calls: List[str] = field(default_factory=list)  # self.method() names
    impure: List[Tuple[str, int]] = field(default_factory=list)
    unordered: List[int] = field(default_factory=list)  # set-iteration linenos

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "lineno": self.lineno,
            "is_digest": self.is_digest,
            "uses_global": self.uses_global,
            "calls": self.calls,
            "attr_calls": self.attr_calls,
            "self_calls": self.self_calls,
            "impure": [list(pair) for pair in self.impure],
            "unordered": self.unordered,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "FunctionFacts":
        return cls(
            qualname=str(raw["qualname"]),
            lineno=int(raw["lineno"]),  # type: ignore[arg-type]
            is_digest=bool(raw["is_digest"]),
            uses_global=bool(raw["uses_global"]),
            calls=list(raw.get("calls", [])),  # type: ignore[arg-type]
            attr_calls=list(raw.get("attr_calls", [])),  # type: ignore[arg-type]
            self_calls=list(raw.get("self_calls", [])),  # type: ignore[arg-type]
            impure=[(str(q), int(n)) for q, n in raw.get("impure", [])],  # type: ignore[union-attr]
            unordered=[int(n) for n in raw.get("unordered", [])],  # type: ignore[union-attr]
        )


@dataclass
class ModuleFacts:
    """Everything the graph layer knows about one file."""

    module: str  # dotted module name derived from the path
    rel_path: str
    top_imports: List[Tuple[str, int]] = field(default_factory=list)
    lazy_imports: List[Tuple[str, int]] = field(default_factory=list)
    #: (name, kind, lineno, decorated); kind: "function" | "class" | "lambda"
    symbols: List[Tuple[str, str, int, bool]] = field(default_factory=list)
    exports: List[str] = field(default_factory=list)  # names in __all__
    refs: List[str] = field(default_factory=list)  # every referenced identifier
    functions: List[FunctionFacts] = field(default_factory=list)
    #: (kind, target, lineno); kind: "run_wave" | "initializer"; target is
    #: the canonical dotted name of a Name argument (lambdas and bound
    #: methods are the per-file pool-task rule's problem, not ours).
    pool_tasks: List[Tuple[str, str, int]] = field(default_factory=list)
    parse_error: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "module": self.module,
            "rel_path": self.rel_path,
            "top_imports": [list(pair) for pair in self.top_imports],
            "lazy_imports": [list(pair) for pair in self.lazy_imports],
            "symbols": [list(sym) for sym in self.symbols],
            "exports": self.exports,
            "refs": self.refs,
            "functions": [fn.to_dict() for fn in self.functions],
            "pool_tasks": [list(task) for task in self.pool_tasks],
            "parse_error": self.parse_error,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "ModuleFacts":
        return cls(
            module=str(raw["module"]),
            rel_path=str(raw["rel_path"]),
            top_imports=[(str(t), int(n)) for t, n in raw.get("top_imports", [])],  # type: ignore[union-attr]
            lazy_imports=[(str(t), int(n)) for t, n in raw.get("lazy_imports", [])],  # type: ignore[union-attr]
            symbols=[
                (str(n), str(k), int(l), bool(d))
                for n, k, l, d in raw.get("symbols", [])  # type: ignore[union-attr]
            ],
            exports=list(raw.get("exports", [])),  # type: ignore[arg-type]
            refs=list(raw.get("refs", [])),  # type: ignore[arg-type]
            functions=[
                FunctionFacts.from_dict(f) for f in raw.get("functions", [])  # type: ignore[union-attr]
            ],
            pool_tasks=[
                (str(k), str(t), int(l))
                for k, t, l in raw.get("pool_tasks", [])  # type: ignore[union-attr]
            ],
            parse_error=bool(raw.get("parse_error", False)),
        )


def module_name_for(rel_path: str, source_roots: Tuple[str, ...] = ("src",)) -> str:
    """Dotted module name of a repo-relative posix path.

    ``src/repro/lake/store.py`` -> ``repro.lake.store``; a package
    ``__init__.py`` names the package itself.  Files outside every
    source root (tests, benchmarks) are named from their full path so
    they participate in the graph as importers.
    """
    path = rel_path
    for root in source_roots:
        prefix = root.rstrip("/") + "/"
        if path.startswith(prefix):
            path = path[len(prefix):]
            break
    if path.endswith(".py"):
        path = path[:-3]
    dotted = path.replace("/", ".")
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


class _FactsVisitor(ast.NodeVisitor):
    def __init__(self, facts: ModuleFacts, imports: ImportMap):
        self.facts = facts
        self.imports = imports
        self.depth = 0  # function nesting depth; >0 means lazy context
        self.current: Optional[FunctionFacts] = None
        self.class_stack: List[str] = []
        self._refs: set = set()

    # -- imports -------------------------------------------------------
    def _record_import(self, target: str, lineno: int) -> None:
        bucket = (
            self.facts.lazy_imports if self.depth else self.facts.top_imports
        )
        bucket.append((target, lineno))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._record_import(alias.name, node.lineno)
            self._refs.add(alias.asname or alias.name.split(".")[0])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    self._record_import(node.module, node.lineno)
                else:
                    self._record_import(
                        f"{node.module}.{alias.name}", node.lineno
                    )
                    self._refs.add(alias.name)

    # -- symbols and references ----------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if self.depth == 0 and not self.class_stack:
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "__all__" and isinstance(
                    node.value, (ast.List, ast.Tuple)
                ):
                    for elt in node.value.elts:
                        if isinstance(elt, ast.Constant) and isinstance(
                            elt.value, str
                        ):
                            self.facts.exports.append(elt.value)
                elif isinstance(node.value, ast.Lambda):
                    self.facts.symbols.append(
                        (target.id, "lambda", node.lineno, False)
                    )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._refs.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self._refs.add(node.attr)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        if self.current is not None:
            self.current.uses_global = True

    # -- function and class scopes -------------------------------------
    def _visit_def(self, node) -> None:
        decorated = bool(node.decorator_list)
        if self.depth == 0:
            kind = "function"
            if not self.class_stack:
                self.facts.symbols.append(
                    (node.name, kind, node.lineno, decorated)
                )
            qualname = ".".join(self.class_stack + [node.name])
            outer = self.current
            # Decorators and argument defaults run at definition time,
            # outside the function body.
            for decorator in node.decorator_list:
                self.visit(decorator)
            self.visit(node.args)
            self.current = FunctionFacts(qualname=qualname, lineno=node.lineno)
            if _DIGEST_NAME_RE.search(node.name):
                self.current.is_digest = True
            self.facts.functions.append(self.current)
            self.depth += 1
            for child in node.body:
                self.visit(child)
            self.depth -= 1
            self.current = outer
        else:
            # Nested defs stay part of the enclosing function's body:
            # their calls and hazards belong to the closure we analyze.
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.depth == 0 and not self.class_stack:
            self.facts.symbols.append(
                (node.name, "class", node.lineno, bool(node.decorator_list))
            )
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    # -- calls ---------------------------------------------------------
    def _pool_target(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return self.imports.resolve(expr.id) or expr.id
        return None  # lambdas / attributes: the per-file rule's territory

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "run_wave":
            if node.args:
                target = self._pool_target(node.args[0])
                if target is not None:
                    self.facts.pool_tasks.append(
                        ("run_wave", target, node.lineno)
                    )
        callee_name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if callee_name == "WaveExecutor":
            for keyword in node.keywords:
                if keyword.arg == "initializer":
                    target = self._pool_target(keyword.value)
                    if target is not None:
                        self.facts.pool_tasks.append(
                            ("initializer", target, node.lineno)
                        )
        if self.current is not None:
            self._record_call(node)
        self.generic_visit(node)

    def _record_call(self, node: ast.Call) -> None:
        fn = self.current
        assert fn is not None
        qualified = self.imports.qualified(node.func)
        if qualified is not None:
            if _is_impure_call(qualified):
                fn.impure.append((qualified, node.lineno))
            elif qualified == "json.dumps" and not _has_sort_keys(node):
                fn.unordered.append(node.lineno)
            else:
                fn.calls.append(qualified)
            if qualified.startswith("hashlib."):
                fn.is_digest = True
        elif isinstance(node.func, ast.Attribute):
            chain: List[str] = []
            current: ast.AST = node.func
            while isinstance(current, ast.Attribute):
                chain.append(current.attr)
                current = current.value
            if isinstance(current, ast.Name) and current.id == "self" and len(chain) == 1:
                fn.self_calls.append(chain[0])
            else:
                fn.attr_calls.append(node.func.attr)

    # -- unordered iteration -------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if self.current is not None and _is_set_expr(node.iter):
            self.current.unordered.append(node.lineno)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        if self.current is not None:
            for comp in node.generators:
                if _is_set_expr(comp.iter):
                    self.current.unordered.append(node.lineno)
        self.generic_visit(node)

    visit_GeneratorExp = _visit_comp
    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp


def _has_sort_keys(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "sort_keys":
            return not (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
            )
    return False


def extract_facts(
    rel_path: str,
    source: str,
    source_roots: Tuple[str, ...] = ("src",),
    tree: Optional[ast.Module] = None,
) -> ModuleFacts:
    """Distill one file into :class:`ModuleFacts`.

    A file that does not parse yields empty facts flagged with
    ``parse_error`` — the per-file ``syntax-error`` finding already
    reports it, and an unparseable file contributes no edges.
    """
    module = module_name_for(rel_path, source_roots)
    facts = ModuleFacts(module=module, rel_path=rel_path)
    if tree is None:
        try:
            tree = ast.parse(source, filename=rel_path)
        except SyntaxError:
            facts.parse_error = True
            return facts
    visitor = _FactsVisitor(facts, ImportMap(tree))
    visitor.visit(tree)
    facts.refs = sorted(visitor._refs)
    for fn in facts.functions:
        fn.calls = sorted(dict.fromkeys(fn.calls))
        fn.attr_calls = sorted(dict.fromkeys(fn.attr_calls))
        fn.self_calls = sorted(dict.fromkeys(fn.self_calls))
    return facts
