"""Determinism rules.

The lake's provenance story rests on bit-reproducible generation
(``generate --workers N`` == ``workers=1``), which in turn rests on
three source-level invariants:

* no global randomness drawn at import time (``unseeded-random``);
* no wall clocks or uuids feeding digest/id computations
  (``time-in-digest``);
* nothing order-unstable — unsorted sets, unsorted ``json.dumps`` —
  iterated into a hash (``unordered-digest-iteration``).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set

from repro.analysis.core import FileContext, Finding, Rule, register

__all__ = ["UnseededRandom", "TimeInDigest", "UnorderedDigestIteration"]

#: ``random`` / ``numpy.random`` attributes that are safe at module level
#: because they configure rather than draw randomness.
_SAFE_RANDOM_ATTRS = {"seed", "Random", "default_rng", "SeedSequence", "RandomState", "Generator", "getstate", "setstate"}

_RANDOM_PREFIXES = ("random.", "numpy.random.")

#: Function names that mark a digest/id computation path.
_DIGEST_NAME_RE = re.compile(
    r"digest|fingerprint|checksum|stable_hash|content_hash|make_id|model_id",
    re.IGNORECASE,
)

#: Canonical call targets that read wall clocks or mint unique ids.
_NONDETERMINISTIC_CALLS = {
    "time.time",
    "time.time_ns",
    "time.strftime",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "uuid.uuid1",
    "uuid.uuid4",
}


def _function_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield node


def _module_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Statements executed at import time (module body + class bodies)."""
    pending: List[ast.stmt] = list(tree.body)
    while pending:
        stmt = pending.pop()
        yield stmt
        if isinstance(stmt, ast.ClassDef):
            pending.extend(stmt.body)
        elif isinstance(stmt, (ast.If, ast.For, ast.While, ast.With, ast.Try)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    pending.append(child)


@register
class UnseededRandom(Rule):
    """Import-time randomness makes two processes disagree by construction."""

    name = "unseeded-random"
    description = (
        "module-level call draws from random/numpy.random; seed an explicit "
        "generator inside a function instead"
    )
    version = 1
    example_positive = (
        "import random\n"
        "JITTER = random.random()  # differs per process\n"
    )
    example_negative = (
        "import random\n"
        "def jitter(seed):\n"
        "    return random.Random(seed).random()\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        function_nodes = set()
        for scope in _function_scopes(ctx.tree):
            function_nodes.update(ast.walk(scope))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or node in function_nodes:
                continue
            qualified = ctx.imports.qualified(node.func)
            if qualified is None:
                continue
            for prefix in _RANDOM_PREFIXES:
                if qualified.startswith(prefix):
                    attr = qualified[len(prefix):].split(".")[0]
                    if attr not in _SAFE_RANDOM_ATTRS:
                        yield self.finding(
                            ctx,
                            node,
                            f"module-level call to {qualified} draws global "
                            "randomness at import time",
                        )
                    break


class _DigestVisitor(ast.NodeVisitor):
    """Collects function defs that compute digests / content ids."""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.digest_functions: List[ast.AST] = []

    def _is_digest_function(self, node: ast.AST) -> bool:
        if _DIGEST_NAME_RE.search(getattr(node, "name", "")):
            return True
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                qualified = self.ctx.imports.qualified(child.func)
                if qualified is not None and qualified.startswith("hashlib."):
                    return True
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._is_digest_function(node):
            self.digest_functions.append(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]


def _digest_functions(ctx: FileContext) -> List[ast.AST]:
    visitor = _DigestVisitor(ctx)
    visitor.visit(ctx.tree)
    return visitor.digest_functions


@register
class TimeInDigest(Rule):
    """Clocks and uuids in digest paths break digest stability."""

    name = "time-in-digest"
    description = (
        "wall-clock / uuid call inside a digest or id computation; digests "
        "must be pure functions of content"
    )
    version = 1
    example_positive = (
        "import time\n"
        "def make_id(payload):\n"
        "    return f\"{payload}-{time.time()}\"\n"
    )
    example_negative = (
        "def make_id(payload):\n"
        "    return f\"id-{payload}\"\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for function in _digest_functions(ctx):
            for node in ast.walk(function):
                if not isinstance(node, ast.Call):
                    continue
                qualified = ctx.imports.qualified(node.func)
                if qualified in _NONDETERMINISTIC_CALLS:
                    yield self.finding(
                        ctx,
                        node,
                        f"{qualified} inside digest path "
                        f"{getattr(function, 'name', '<lambda>')}(); digests "
                        "must depend only on content",
                    )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


@register
class UnorderedDigestIteration(Rule):
    """Order-unstable data feeding a hash yields run-dependent digests."""

    name = "unordered-digest-iteration"
    description = (
        "unsorted set iteration or json.dumps without sort_keys inside a "
        "digest path"
    )
    version = 1
    example_positive = (
        "def checksum(items):\n"
        "    total = 0\n"
        "    for item in set(items):\n"
        "        total = total * 31 + hash(item)\n"
        "    return total\n"
    )
    example_negative = (
        "def checksum(items):\n"
        "    total = 0\n"
        "    for item in sorted(set(items)):\n"
        "        total = total * 31 + hash(item)\n"
        "    return total\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for function in _digest_functions(ctx):
            for node in ast.walk(function):
                if isinstance(node, ast.For) and _is_set_expr(node.iter):
                    yield self.finding(
                        ctx,
                        node.iter,
                        "iteration over a set inside digest path "
                        f"{getattr(function, 'name', '<lambda>')}(); wrap in "
                        "sorted() for a stable order",
                    )
                elif isinstance(node, (ast.GeneratorExp, ast.ListComp)):
                    for comp in node.generators:
                        if _is_set_expr(comp.iter):
                            yield self.finding(
                                ctx,
                                comp.iter,
                                "comprehension over a set inside digest path "
                                f"{getattr(function, 'name', '<lambda>')}(); "
                                "wrap in sorted() for a stable order",
                            )
                elif isinstance(node, ast.Call):
                    qualified = ctx.imports.qualified(node.func)
                    if qualified == "json.dumps" and not _has_sort_keys(node):
                        yield self.finding(
                            ctx,
                            node,
                            "json.dumps without sort_keys=True inside digest "
                            f"path {getattr(function, 'name', '<lambda>')}(); "
                            "key order would leak into the digest",
                        )


def _has_sort_keys(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "sort_keys":
            value: Optional[ast.expr] = keyword.value
            return not (
                isinstance(value, ast.Constant) and value.value is False
            )
    return False
