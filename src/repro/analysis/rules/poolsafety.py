"""Pool-safety rule: tasks shipped to worker processes must pickle.

:class:`repro.parallel.WaveExecutor` pickles the task function when
``workers > 1``.  Lambdas, functions defined inside another function,
and bound methods either fail to pickle outright or drag their whole
enclosing object (a lake, a store, an open handle) across the process
boundary.  Inline mode (``workers=1``) masks all of this, which is
exactly why the invariant needs a static check: code that works in
every test can still explode — or silently serialize a gigabyte lake —
the first time someone passes ``--workers 4``.

The rule checks the task argument of ``*.run_wave(fn, ...)`` and the
``initializer=`` keyword of ``WaveExecutor(...)``:

* a ``lambda`` is flagged unconditionally;
* a name is resolved lexically — if it was bound by a nested ``def`` or
  a local ``lambda`` assignment in an enclosing function scope, it is
  flagged; module-level functions and imports pass;
* an attribute access (``self.train``, ``obj.method``) is flagged as a
  bound method.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.core import FileContext, Finding, Rule, register

__all__ = ["PoolTaskModuleLevel"]

#: name kind -> why it is unsafe (None means safe)
_UNSAFE_KINDS = {
    "nested-def": "a function defined inside another function",
    "local-lambda": "a lambda bound to a local name",
}


class _ScopeVisitor(ast.NodeVisitor):
    """Walks with a lexical scope stack, collecting pool submissions."""

    def __init__(self) -> None:
        #: stack of (scope_kind, {name: binding_kind}); scope kinds are
        #: "module" | "function" | "class".  Class scopes exist only to
        #: swallow method names — Python name lookup skips them.
        self.scopes: List[Tuple[str, Dict[str, str]]] = [("module", {})]
        #: (call node, offending expr, why) triples
        self.violations: List[Tuple[ast.Call, ast.AST, str]] = []

    # -- scope bookkeeping ---------------------------------------------
    def _bind(self, name: str, kind: str) -> None:
        self.scopes[-1][1][name] = kind

    def _lookup(self, name: str) -> Optional[str]:
        for scope_kind, names in reversed(self.scopes):
            if scope_kind == "class":
                continue  # class bodies are invisible to nested lookups
            if name in names:
                return names[name]
        return None

    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._bind(stmt.name, "module-def")
        self.generic_visit(node)

    def _visit_function(self, node: ast.AST) -> None:
        name = getattr(node, "name", None)
        if name is not None and self.scopes[-1][0] == "function":
            self._bind(name, "nested-def")
        self.scopes.append(("function", {}))
        self.generic_visit(node)
        self.scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scopes.append(("class", {}))
        self.generic_visit(node)
        self.scopes.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Lambda) and self.scopes[-1][0] == "function":
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._bind(target.id, "local-lambda")
        self.generic_visit(node)

    # -- submissions ---------------------------------------------------
    def _check_task_expr(self, call: ast.Call, expr: ast.AST) -> None:
        if isinstance(expr, ast.Lambda):
            self.violations.append(
                (call, expr, "a lambda (lambdas cannot be pickled)")
            )
        elif isinstance(expr, ast.Attribute):
            self.violations.append(
                (
                    call,
                    expr,
                    "a bound method (pickling it ships the whole instance "
                    "to the worker)",
                )
            )
        elif isinstance(expr, ast.Name):
            kind = self._lookup(expr.id)
            reason = _UNSAFE_KINDS.get(kind or "")
            if reason is not None:
                self.violations.append((call, expr, reason))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "run_wave":
            if node.args:
                self._check_task_expr(node, node.args[0])
        target = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if target == "WaveExecutor":
            for keyword in node.keywords:
                if keyword.arg == "initializer":
                    self._check_task_expr(node, keyword.value)
        self.generic_visit(node)


@register
class PoolTaskModuleLevel(Rule):
    """Tasks and initializers handed to the pool must be module-level."""

    name = "pool-task"
    description = (
        "function submitted to WaveExecutor must be a module-level function "
        "(picklable, no captured lakes/stores/handles)"
    )
    version = 1
    example_positive = (
        "def run(pool, items):\n"
        "    pool.run_wave(lambda item: item * 2, items)\n"
    )
    example_negative = (
        "def double(item):\n"
        "    return item * 2\n"
        "def run(pool, items):\n"
        "    pool.run_wave(double, items)\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        visitor = _ScopeVisitor()
        visitor.visit(ctx.tree)
        for _call, expr, why in visitor.violations:
            yield self.finding(
                ctx,
                expr,
                f"task submitted to WaveExecutor is {why}; use a "
                "module-level function",
            )
