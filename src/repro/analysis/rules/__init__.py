"""Built-in rule set.

Importing this package registers every rule (each module's classes are
decorated with :func:`repro.analysis.core.register`).  Add a rule by
dropping a module here, subclassing :class:`repro.analysis.core.Rule`,
and decorating it — the registry, CLI, cache fingerprint, pragmas, and
baseline all pick it up automatically.
"""

from repro.analysis.rules import (
    determinism,
    hygiene,
    obs,
    poolsafety,
    reliability,
)

__all__ = ["determinism", "hygiene", "obs", "poolsafety", "reliability"]
