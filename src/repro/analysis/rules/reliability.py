"""Crash-safety and memory-safety rules guarding the lake's artifacts.

* ``raw-artifact-write`` — artifact-layer modules (``repro.lake``,
  ``repro.index``) must write files through
  :mod:`repro.reliability.atomic`, never via a direct ``open(..., "w")``
  or ``numpy.savez`` to a path.  A raw write that dies mid-flight leaves
  a truncated manifest or blob that ``load_lake`` would trust; the
  atomic helpers guarantee readers only ever observe the old or the new
  bytes.  The rule is *baseline-exempt*: a grandfathered raw write is
  still a corruption bug, so the suppression ledger cannot hide it.
* ``whole-file-read`` — the same modules must not materialize whole
  artifacts just to read them: a bare ``numpy.load`` (no ``mmap_mode``)
  or a ``.read_bytes()`` call re-grows the linear resident footprint
  the out-of-core weight store exists to avoid.  Intentional
  whole-file reads (small npz shards, legacy-format loaders) carry a
  ``# repro: noqa[whole-file-read]`` pragma or a baseline entry.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule, register

__all__ = ["RawArtifactWrite", "WholeFileRead"]

#: Packages whose files land inside persisted lake directories.
_ARTIFACT_PREFIXES = ("src/repro/lake/", "src/repro/index/")

#: ``open`` mode characters that make the call a write.
_WRITE_MODE_CHARS = frozenset("wax+")

#: numpy writers that take a destination as their first argument.
_NUMPY_WRITERS = frozenset({
    "numpy.save",
    "numpy.savez",
    "numpy.savez_compressed",
})


def _open_mode(call: ast.Call) -> ast.expr | None:
    """The ``mode`` argument of an ``open()`` call, if present."""
    for keyword in call.keywords:
        if keyword.arg == "mode":
            return keyword.value
    if len(call.args) >= 2:
        return call.args[1]
    return None


def _is_write_mode(mode: ast.expr | None) -> bool:
    """True only for a *provably* writing constant mode string."""
    if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
        return False
    return bool(_WRITE_MODE_CHARS & set(mode.value))


@register
class RawArtifactWrite(Rule):
    """Artifact writes must go through ``repro.reliability.atomic``."""

    name = "raw-artifact-write"
    description = (
        "direct file write in an artifact-layer module; use "
        "repro.reliability.atomic so a crash cannot leave a truncated "
        "lake artifact"
    )
    version = 1
    baseline_exempt = True
    example_positive = (
        "import json\n"
        "def save_manifest(path, manifest):\n"
        "    with open(path, 'w') as handle:\n"
        "        handle.write(json.dumps(manifest))\n"
    )
    example_negative = (
        "from repro.reliability.atomic import atomic_write_json\n"
        "def save_manifest(path, manifest):\n"
        "    atomic_write_json(path, manifest)\n"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.rel_path.startswith(_ARTIFACT_PREFIXES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.imports.qualified(node.func)
            if qualified == "open" and _is_write_mode(_open_mode(node)):
                yield self.finding(
                    ctx,
                    node,
                    "raw open() write to a lake artifact; route it "
                    "through repro.reliability.atomic (atomic_write_bytes"
                    "/atomic_write_json) so readers never observe a "
                    "partial file",
                )
            elif qualified in _NUMPY_WRITERS:
                yield self.finding(
                    ctx,
                    node,
                    f"direct {qualified.rsplit('.', 1)[1]}() in an "
                    "artifact-layer module; use "
                    "repro.reliability.atomic.atomic_write_npz for "
                    "crash-safe archives",
                )


@register
class WholeFileRead(Rule):
    """Artifact reads must stream or memmap, never slurp whole files."""

    name = "whole-file-read"
    description = (
        "whole-file read in an artifact-layer module; memmap or stream "
        "instead so resident memory stays flat in the lake size"
    )
    version = 1
    example_positive = (
        "import numpy\n"
        "def load_weights(path):\n"
        "    return numpy.load(path)\n"
    )
    example_negative = (
        "import numpy\n"
        "def load_weights(path):\n"
        "    return numpy.load(path, mmap_mode='r')\n"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.rel_path.startswith(_ARTIFACT_PREFIXES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.imports.qualified(node.func)
            if qualified == "numpy.load":
                has_mmap = any(
                    keyword.arg == "mmap_mode" for keyword in node.keywords
                )
                if not has_mmap:
                    yield self.finding(
                        ctx,
                        node,
                        "numpy.load without mmap_mode materializes the "
                        "whole archive; open weight bundles via "
                        "repro.utils.serialization.open_arrays_memmap (or "
                        "pass mmap_mode), and mark small intentional "
                        "reads with a noqa pragma",
                    )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "read_bytes"
            ):
                yield self.finding(
                    ctx,
                    node,
                    ".read_bytes() materializes the whole file; verify "
                    "with repro.reliability.digest.stream_digest and read "
                    "arrays through a memmap instead",
                )
