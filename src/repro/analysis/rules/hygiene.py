"""API-hygiene rules: the classic Python footguns this repo bans.

* ``mutable-default`` — a list/dict/set default argument is shared
  across every call; in a lake whose generator is re-entered per wave
  that is state leaking between models.
* ``bare-except`` — ``except:`` catches ``SystemExit`` and
  ``KeyboardInterrupt``, turning Ctrl-C into silent corruption.
* ``swallowed-exception`` — a ``pass``-only handler in library code
  hides failures; worker paths especially must surface or log errors
  (a swallowed exception inside a pool task silently drops a model).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule, register

__all__ = ["MutableDefault", "BareExcept", "SwallowedException"]

_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_FACTORIES
    )


@register
class MutableDefault(Rule):
    """Mutable default arguments are shared across calls."""

    name = "mutable-default"
    description = "mutable default argument; default to None and allocate inside"
    version = 1
    example_positive = (
        "def collect(item, bucket=[]):\n"
        "    bucket.append(item)\n"
        "    return bucket\n"
    )
    example_negative = (
        "def collect(item, bucket=None):\n"
        "    bucket = [] if bucket is None else bucket\n"
        "    bucket.append(item)\n"
        "    return bucket\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        ctx,
                        default,
                        "mutable default argument is shared across calls; "
                        "use None and allocate in the body",
                    )


@register
class BareExcept(Rule):
    """``except:`` swallows SystemExit/KeyboardInterrupt."""

    name = "bare-except"
    description = "bare except: clause; name the exception type"
    version = 1
    example_positive = (
        "def load(path):\n"
        "    try:\n"
        "        return open(path).read()\n"
        "    except:\n"
        "        return None\n"
    )
    example_negative = (
        "def load(path):\n"
        "    try:\n"
        "        return open(path).read()\n"
        "    except OSError:\n"
        "        return None\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare except: catches SystemExit and KeyboardInterrupt; "
                    "name the exception type",
                )


def _is_noop(stmt: ast.stmt) -> bool:
    if isinstance(stmt, ast.Pass):
        return True
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value is Ellipsis
    )


@register
class SwallowedException(Rule):
    """A ``pass``-only handler hides failures from operators."""

    name = "swallowed-exception"
    description = (
        "except handler whose body is only pass; log, re-raise, or use "
        "contextlib.suppress to make the intent explicit"
    )
    severity = "warning"
    version = 1
    example_positive = (
        "def cleanup(path):\n"
        "    try:\n"
        "        remove(path)\n"
        "    except OSError:\n"
        "        pass\n"
    )
    example_negative = (
        "import contextlib\n"
        "def cleanup(path):\n"
        "    with contextlib.suppress(OSError):\n"
        "        remove(path)\n"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.is_library

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and all(
                _is_noop(stmt) for stmt in node.body
            ):
                yield self.finding(
                    ctx,
                    node,
                    "exception swallowed silently; log it, re-raise, or use "
                    "contextlib.suppress at the call site",
                )
