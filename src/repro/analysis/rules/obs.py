"""Observability-convention rules.

Library output must flow through ``repro.obs`` so it is structured,
level-filtered, and capturable:

* ``no-print`` — no bare ``print()`` in library code (the CLI is the
  user-facing surface and is exempt) nor in benchmarks, where reports
  are expected to go through the harness (intentional exceptions live
  in the baseline).  Subsumes the retired ``scripts/check_no_print.py``.
* ``obs-logger`` — loggers come from :func:`repro.obs.logging.get_logger`,
  never from stdlib ``logging.getLogger``, so every record stays inside
  the ``repro`` namespace and the structured formatter.
* ``span-context`` — spans are opened with ``with trace(...)`` (or the
  ``@traced`` decorator), never constructed bare or entered manually;
  a span whose ``__exit__`` can be skipped leaks onto the thread-local
  stack and corrupts every later span's parentage.
* ``bench-result-schema`` — benchmark scripts persist results through
  the schema-versioned :mod:`repro.obs.timeseries` writer, never by
  ``json.dump``-ing ad-hoc dicts: unversioned result files cannot be
  compared across time, which defeats the perf trajectory.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule, register

__all__ = ["NoPrint", "ObsLogger", "SpanContext", "BenchResultSchema"]

_OBS_PREFIX = "src/repro/obs/"

#: Canonical names under which the span context manager is reachable.
_TRACE_TARGETS = {
    "repro.obs.trace",
    "repro.obs.tracing.trace",
}


@register
class NoPrint(Rule):
    """Bare ``print`` bypasses structured logging."""

    name = "no-print"
    description = (
        "bare print() in library/benchmark code; use repro.obs.logging "
        "(library) or the benchmark harness recorder"
    )
    version = 1
    example_positive = (
        "def save(path, payload):\n"
        "    print(f'saving {path}')\n"
    )
    example_negative = (
        "from repro.obs.logging import get_logger\n"
        "_log = get_logger('lake.save')\n"
        "def save(path, payload):\n"
        "    _log.info('saving', path=path)\n"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return (ctx.is_library and not ctx.is_cli) or ctx.is_benchmark

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "bare print() call; use repro.obs.logging so output is "
                    "structured and capturable",
                )


@register
class ObsLogger(Rule):
    """Loggers must be minted by ``repro.obs.logging.get_logger``."""

    name = "obs-logger"
    description = (
        "stdlib logging.getLogger in library code; use "
        "repro.obs.logging.get_logger so records stay structured"
    )
    version = 1
    example_positive = (
        "import logging\n"
        "_log = logging.getLogger('lake')\n"
    )
    example_negative = (
        "from repro.obs.logging import get_logger\n"
        "_log = get_logger('lake')\n"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.is_library and _OBS_PREFIX not in ctx.rel_path

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.imports.qualified(node.func)
            if qualified == "logging.getLogger":
                yield self.finding(
                    ctx,
                    node,
                    "logging.getLogger bypasses the structured repro logger; "
                    "use repro.obs.logging.get_logger",
                )


def _is_trace_call(ctx: FileContext, node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    qualified = ctx.imports.qualified(node.func)
    return qualified in _TRACE_TARGETS


@register
class SpanContext(Rule):
    """Spans must be scoped by ``with``; manual enter/exit leaks spans."""

    name = "span-context"
    description = (
        "trace(...) span used outside a with-statement; manual span "
        "lifecycles leak onto the thread-local stack"
    )
    version = 1
    example_positive = (
        "from repro.obs.tracing import trace\n"
        "def step():\n"
        "    span = trace('step')  # never exited\n"
    )
    example_negative = (
        "from repro.obs.tracing import trace\n"
        "def step():\n"
        "    with trace('step'):\n"
        "        pass\n"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Expr) and _is_trace_call(ctx, node.value):
                yield self.finding(
                    ctx,
                    node.value,
                    "trace(...) constructed but never entered; open spans "
                    "with `with trace(...):`",
                )
            elif isinstance(node, ast.Assign) and _is_trace_call(ctx, node.value):
                yield self.finding(
                    ctx,
                    node.value,
                    "trace(...) assigned instead of scoped; open spans with "
                    "`with trace(...):` so __exit__ always runs",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in {"__enter__", "__exit__"}
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"manual {node.func.attr}() call; use a with-statement "
                    "so the span (or resource) cannot leak",
                )


@register
class BenchResultSchema(Rule):
    """Benchmark results must go through the schema-versioned writer."""

    name = "bench-result-schema"
    description = (
        "benchmark dumps results with json.dump; use "
        "repro.obs.timeseries.BenchResult/append_result so the record is "
        "schema-versioned, host-stamped, and trajectory-comparable"
    )
    version = 1
    example_positive = (
        "import json\n"
        "def record(path, metrics):\n"
        "    with open(path, 'w') as handle:\n"
        "        json.dump(metrics, handle)\n"
    )
    example_negative = (
        "from repro.obs.timeseries import BenchResult, append_result\n"
        "def record(results_dir, metrics):\n"
        "    append_result(results_dir, BenchResult.create(\n"
        "        bench='demo', mode='full', metrics=metrics))\n"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.is_benchmark

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.imports.qualified(node.func)
            if qualified == "json.dump":
                yield self.finding(
                    ctx,
                    node,
                    "benchmark result written via json.dump bypasses the "
                    "BenchResult schema; record through "
                    "repro.obs.timeseries.append_result",
                )
