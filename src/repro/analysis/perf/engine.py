"""Incremental driver for the perf rule pack.

Mirrors the dataflow engine: per-module findings cached on a dependency
digest over the module's forward import closure, the perf rule-pack
fingerprint, and :data:`PERF_ENGINE_VERSION`.  The cost model's only
interprocedural fact — a callee's intrinsic loop depth — follows call
edges forward, so it never reads outside the closure the digest covers
and a one-file edit re-analyzes exactly that file plus its
reverse-import closure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.core import Finding
from repro.analysis.dataflow.model import ModelIndex
from repro.analysis.graph.project import ProjectGraph
from repro.analysis.dataflow.summaries import SummaryIndex
from repro.analysis.perf.cache import PerfCache
from repro.analysis.perf.rules import (
    PerfContext,
    all_perf_rules,
    perf_rules_fingerprint,
)
from repro.analysis.pragmas import apply_pragmas
from repro.obs.tracing import trace
from repro.utils.hashing import stable_hash

__all__ = [
    "PERF_ENGINE_VERSION",
    "PerfEngine",
    "PerfReport",
    "analyze_perf",
]

#: Bump whenever the cost model (loop detection, depth assignment,
#: growth-site extraction, interprocedural propagation) changes meaning.
PERF_ENGINE_VERSION = 1


@dataclass
class PerfReport:
    """One incremental perf evaluation."""

    findings: List[Finding] = field(default_factory=list)
    modules: int = 0
    functions_analyzed: int = 0
    files_reanalyzed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    fingerprint: str = ""


class PerfEngine:
    """Per-sweep state: models, summaries, and the perf rule pack."""

    def __init__(self, files: Dict[str, Tuple[str, str]], project: ProjectGraph):
        self.files = files
        self.project = project
        self.models = ModelIndex(files, project.source_roots)
        self.summaries = SummaryIndex(project, self.models)
        self.rules = all_perf_rules()

    def dependency_digest(self, module: str, digests: Dict[str, str]) -> str:
        graph = self.project.imports
        closure_files = sorted(
            (graph.modules[dep], digests[graph.modules[dep]])
            for dep in graph.forward_closure(module)
            if graph.modules[dep] in digests
        )
        return stable_hash(
            {
                "deps": closure_files,
                "rules": perf_rules_fingerprint(),
                "engine": PERF_ENGINE_VERSION,
            }
        )

    def check_module(self, rel_path: str) -> Tuple[List[Finding], int]:
        """Raw (pre-pragma) findings plus functions analyzed for one file."""
        module_model = self.models.model(rel_path)
        if module_model is None or module_model.parse_error:
            return [], 0
        ctx = PerfContext(
            project=self.project,
            models=self.models,
            summaries=self.summaries,
            rel_path=rel_path,
            module_model=module_model,
        )
        findings: List[Finding] = []
        for rule in self.rules:
            findings.extend(rule.check_module(ctx))
        return sorted(set(findings)), len(module_model.functions)


def analyze_perf(
    files: Dict[str, Tuple[str, str]],
    project: ProjectGraph,
    cache: PerfCache,
) -> PerfReport:
    """Run the perf rule pack incrementally over ``files``.

    ``files`` maps rel_path -> (source, content_digest); ``project`` is
    the already-built graph the lint sweep shares between phases.
    Returns post-pragma, pre-baseline findings plus cache accounting.
    """
    engine = PerfEngine(files, project)
    graph = project.imports
    cache.prune(files)
    report = PerfReport(
        modules=len(graph.modules),
        fingerprint=perf_rules_fingerprint(),
    )
    digests = {rel_path: digest for rel_path, (_s, digest) in files.items()}
    aggregate: List[Finding] = []
    for module in sorted(graph.modules):
        rel_path = graph.modules[module]
        if rel_path not in files:
            continue
        dep_digest = engine.dependency_digest(module, digests)
        findings = cache.get_module_findings(rel_path, dep_digest)
        if findings is None:
            report.files_reanalyzed += 1
            with trace("perf.module", path=rel_path):
                raw, functions = engine.check_module(rel_path)
            report.functions_analyzed += functions
            findings, _suppressed = apply_pragmas(raw, files[rel_path][0])
            cache.put_module_findings(rel_path, dep_digest, findings)
        aggregate.extend(findings)
    report.findings = sorted(aggregate)
    report.cache_hits = cache.hits
    report.cache_misses = cache.misses
    return report
