"""Profile-guided ranking of perf findings: the hotness join.

A static perf finding says "this shape is expensive *if it runs*"; the
PR-6 span profile says what actually ran.  :func:`audit_findings` joins
the two: each finding is anchored to its enclosing function (innermost
def whose line range contains the finding), the function's module and
qualname are tokenized, and every trace operation sharing a token
contributes its measured self-time to the finding's *hotness*.  Ranked
by hotness descending, the report reads top-down as "fix these first".

The join is deliberately name-based, not symbol-based: spans are named
by hand (``index.hnsw.search``, ``lake.shard.write``) while findings
live at ``src/repro/index/hnsw.py:L`` — there is no shared identifier to
key on, but the naming convention makes token overlap precise enough in
practice, and a *miss* is itself the signal: with a trace loaded, a
finding whose function never overlaps any measured span is statically
plausible but dynamically cold, and is demoted to ``info`` severity
rather than dropped — cold today is not cold forever.

Layering: this module reads :mod:`repro.obs.analyze` (foundation).  The
trajectory files live behind :mod:`repro.obs.timeseries` (compute
layer), which the analysis layer must not import — the CLI joins those.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.core import Finding
from repro.analysis.dataflow.model import ModelIndex
from repro.obs.analyze import TraceReport

__all__ = [
    "AuditEntry",
    "AuditReport",
    "audit_findings",
    "render_audit_text",
    "render_audit_json",
]

#: Path/name components too generic to anchor a join on.
_GENERIC_TOKENS = {
    "src",
    "tests",
    "benchmarks",
    "repro",
    "py",
    "main",
    "run",
    "init",
    "module",
    "core",
    "utils",
}


@dataclass
class AuditEntry:
    """One finding with its profile join attached."""

    finding: Finding
    function: str = ""  # enclosing function fq, "" at module level
    hotness: float = 0.0  # summed self-time (s) of overlapping spans
    spans: Tuple[str, ...] = ()  # operation names that contributed
    demoted: bool = False  # cold under a loaded trace


@dataclass
class AuditReport:
    """Findings ranked hottest-first, plus join accounting."""

    entries: List[AuditEntry] = field(default_factory=list)
    traced: bool = False
    span_count: int = 0
    demoted: int = 0


def _tokens(text: str) -> Set[str]:
    out: Set[str] = set()
    for sep in ("/", ".", "_", "-", ":"):
        text = text.replace(sep, " ")
    for part in text.lower().split():
        if part and part not in _GENERIC_TOKENS:
            out.add(part)
    return out


def _finding_tokens(finding: Finding, function: str) -> Set[str]:
    tokens = _tokens(finding.path)
    if function:
        tokens |= _tokens(function)
    return tokens


def _enclosing_function(
    models: ModelIndex, rel_path: str, line: int
) -> str:
    """Fq of the innermost function whose span contains ``line``."""
    model = models.model(rel_path)
    if model is None or model.parse_error:
        return ""
    best = ""
    best_size = None
    for qualname in sorted(model.functions):
        fn = model.functions[qualname]
        start = fn.node.lineno
        end = getattr(fn.node, "end_lineno", start) or start
        if start <= line <= end:
            size = end - start
            if best_size is None or size < best_size:
                best, best_size = fn.fq, size
    return best


def audit_findings(
    findings: List[Finding],
    files: Dict[str, Tuple[str, str]],
    source_roots: Tuple[str, ...] = ("src",),
    trace_report: Optional[TraceReport] = None,
) -> AuditReport:
    """Join perf ``findings`` against a parsed trace (or rank statically).

    Without a trace, entries keep their static severity and rank by
    position.  With one, hotness is summed self-time of token-overlapping
    operations; zero-hotness findings are demoted to ``info``.
    """
    models = ModelIndex(files, source_roots)
    op_tokens: List[Tuple[Set[str], str, float]] = []
    if trace_report is not None:
        for op in trace_report.operations:
            op_tokens.append((_tokens(op.name), op.name, op.self_total))
    report = AuditReport(
        traced=trace_report is not None,
        span_count=trace_report.span_count if trace_report else 0,
    )
    for finding in findings:
        function = _enclosing_function(models, finding.path, finding.line)
        entry = AuditEntry(finding=finding, function=function)
        if trace_report is not None:
            mine = _finding_tokens(finding, function)
            touched: List[str] = []
            for tokens, name, self_total in op_tokens:
                if tokens & mine:
                    entry.hotness += self_total
                    touched.append(name)
            entry.spans = tuple(sorted(touched))
            if entry.hotness == 0.0 and finding.severity != "info":
                entry.demoted = True
                entry.finding = dataclasses.replace(
                    finding, severity="info"
                )
                report.demoted += 1
        report.entries.append(entry)
    report.entries.sort(
        key=lambda e: (-e.hotness, e.finding.path, e.finding.line, e.finding.rule)
    )
    return report


def render_audit_text(report: AuditReport, top: int = 0) -> str:
    lines: List[str] = []
    entries = report.entries[:top] if top else report.entries
    if report.traced:
        lines.append(
            f"perf-audit: {len(report.entries)} finding(s) ranked against "
            f"{report.span_count} trace span(s); {report.demoted} demoted "
            "to info (cold in profile)"
        )
    else:
        lines.append(
            f"perf-audit: {len(report.entries)} finding(s), no trace "
            "loaded (static ranking; pass --trace FILE to rank by "
            "measured self-time)"
        )
    for rank, entry in enumerate(entries, start=1):
        finding = entry.finding
        where = entry.function or "<module>"
        lines.append(
            f"{rank:3d}. [{finding.severity}] {finding.location()} "
            f"{finding.rule} in {where}"
        )
        lines.append(f"     {finding.message}")
        if report.traced:
            if entry.hotness > 0:
                hot = ", ".join(entry.spans)
                lines.append(
                    f"     hotness {entry.hotness:.3f}s self-time ({hot})"
                )
            else:
                lines.append("     hotness 0 — not seen in the profile")
    if top and len(report.entries) > top:
        lines.append(f"... and {len(report.entries) - top} more")
    return "\n".join(lines)


def render_audit_json(report: AuditReport, top: int = 0) -> Dict[str, object]:
    entries = report.entries[:top] if top else report.entries
    return {
        "version": 1,
        "traced": report.traced,
        "span_count": report.span_count,
        "demoted": report.demoted,
        "findings": [
            {
                **entry.finding.to_dict(),
                "function": entry.function,
                "hotness_seconds": entry.hotness,
                "spans": list(entry.spans),
                "demoted": entry.demoted,
            }
            for entry in entries
        ],
    }
