"""The static cost model: loop depth, growth sites, call-implied loops.

Perf rules need three facts no single AST walk provides:

* **Per-statement loop-nesting depth.**  Computed over the PR-8 CFG, not
  the AST: a back edge is an edge ``t -> h`` into a loop header ``h``
  that dominates ``t`` (the textbook definition — plain reachability
  misclassifies entrance edges as back edges once loops nest, because
  the outer back edge creates a path from the inner header around to
  its own entrance).  The *natural loop* of a back edge is the header
  plus every block that reaches the edge's tail without passing through
  the header; a block's depth is the number of natural loops containing
  it.  Depths form a finite lattice bounded by the function's deepest
  nest, which is what makes the downstream rules' severity ordering
  well-defined.

* **Growth sites through reaching definitions.**  A growth site is a
  definition of a collection that some loop-resident statement grows
  (``append``/``extend``/``insert``/``+=``).  Tying the growth to the
  *definition* (via the reaching-definitions solver) rather than the
  name is what lets ``quadratic-membership`` prove that ``x in xs``
  scans the very list the loop is growing, not a shadowing rebind.

* **Interprocedural loop depth through the PR-4 call graph.**  A call
  site's *effective* depth is its local depth plus the callee's
  intrinsic depth — the deepest loop nest a call into it transitively
  enters.  Propagation follows call edges forward (callees only), so it
  never leaves the module's forward import closure and the dependency-
  digest cache stays sound: editing a caller can never stale a cached
  callee verdict.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.dataflow.cfg import CFG, KIND_FOR, Block, Element
from repro.analysis.dataflow.model import FunctionModel
from repro.analysis.dataflow.solver import (
    Definition,
    ReachingDefinitions,
    solve_reaching,
)

__all__ = ["Loop", "GrowthSite", "CostModel", "intrinsic_depth"]

#: Cap on interprocedural depth propagation: beyond this a call site is
#: simply "very hot"; the cap also bounds work on call-graph cycles.
MAX_INTRINSIC_DEPTH = 4

#: Methods that grow a list-like collection in place.
_GROWTH_METHODS = {"append", "extend", "insert"}
#: Methods that grow a set/dict (fast membership; never quadratic).
_KEYED_GROWTH_METHODS = {"add", "update", "setdefault"}


@dataclass(frozen=True)
class Loop:
    """One natural loop: its header block and full block membership."""

    header: int
    blocks: FrozenSet[int]


@dataclass(frozen=True)
class GrowthSite:
    """A loop-grown collection, anchored at the definition that owns it."""

    name: str
    definition: Definition
    grow_line: int
    keyed: bool  # grown via set/dict methods (O(1) membership)


def _loop_headers(cfg: CFG) -> List[int]:
    return [
        block.index
        for block in cfg.blocks
        if block.label in ("while", "for")
    ]


def _dominators(cfg: CFG) -> Dict[int, Set[int]]:
    """Classic iterative dominator sets, entry = block 0.

    Small CFGs make the O(n^2) fixpoint irrelevant; what matters is
    correctness on nested loops, where "pred reachable from header"
    misidentifies entrance edges as back edges (the outer back edge
    creates a path from the inner header around to its own entrance).
    """
    indices = [block.index for block in cfg.blocks]
    everything = set(indices)
    dom: Dict[int, Set[int]] = {
        index: ({index} if index == 0 else set(everything))
        for index in indices
    }
    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            if block.index == 0:
                continue
            preds = [p for p in block.preds]
            if preds:
                new = set.intersection(*(dom[p] for p in preds))
            else:
                new = set()
            new.add(block.index)
            if new != dom[block.index]:
                dom[block.index] = new
                changed = True
    return dom


def _natural_loop(cfg: CFG, header: int, tails: List[int]) -> FrozenSet[int]:
    """Header plus blocks reaching any back-edge tail without crossing it."""
    members = {header}
    pending = [t for t in tails if t != header]
    members.update(pending)
    while pending:
        for pred in cfg.blocks[pending.pop()].preds:
            if pred not in members:
                members.add(pred)
                pending.append(pred)
    return frozenset(members)


def find_loops(cfg: CFG) -> List[Loop]:
    """Every for/while natural loop in the CFG, headers in block order.

    A back edge is an edge ``t -> h`` where ``h`` dominates ``t`` — the
    textbook definition; anything weaker confuses entrance edges with
    back edges once loops nest.
    """
    dom = _dominators(cfg)
    loops: List[Loop] = []
    for header in _loop_headers(cfg):
        tails = [
            block.index
            for block in cfg.blocks
            if header in block.succs and header in dom[block.index]
        ]
        if tails:
            loops.append(Loop(header, _natural_loop(cfg, header, tails)))
    return loops


class CostModel:
    """Cost facts for one function, computed lazily from its CFG."""

    def __init__(self, fn: FunctionModel):
        self.fn = fn
        self.cfg = fn.cfg
        self.loops = find_loops(self.cfg)
        #: block index -> number of natural loops containing it
        self.block_depth: Dict[int, int] = {
            block.index: sum(
                1 for loop in self.loops if block.index in loop.blocks
            )
            for block in self.cfg.blocks
        }
        #: innermost element owning each AST node (built on demand)
        self._owner: Optional[Dict[int, Tuple[Block, int, Element]]] = None
        #: id(node) -> (in owning for-iter, in comprehension) flags
        self._adjust: Dict[int, Tuple[bool, bool]] = {}
        self._reaching: Optional[
            Tuple[ReachingDefinitions, Dict[int, Tuple[object, object]]]
        ] = None
        self._growth: Optional[List[GrowthSite]] = None

    # -- node -> program point -----------------------------------------
    def _owners(self) -> Dict[int, Tuple[Block, int, Element]]:
        if self._owner is None:
            owner: Dict[int, Tuple[Block, int, Element]] = {}
            #: id(node) -> (inside owning for-header's iter, inside a
            #: comprehension) — computed in the same walk that assigns
            #: ownership, so depth queries never re-walk subtrees.
            adjust: Dict[int, Tuple[bool, bool]] = {}
            comps = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            # Blocks are created in program order, so later (inner)
            # elements re-claim their subtrees from enclosing headers:
            # the last writer is the innermost owning element.
            for block, position, element in self.cfg.elements():
                iter_expr = (
                    getattr(element.node, "iter", None)
                    if element.kind == KIND_FOR
                    else None
                )
                stack: List[Tuple[ast.AST, bool, bool]] = [
                    (element.node, False, False)
                ]
                while stack:
                    node, in_iter, in_comp = stack.pop()
                    owner[id(node)] = (block, position, element)
                    adjust[id(node)] = (in_iter, in_comp)
                    encloses_comp = isinstance(node, comps)
                    for child in ast.iter_child_nodes(node):
                        stack.append((
                            child,
                            in_iter or child is iter_expr,
                            in_comp or encloses_comp,
                        ))
            self._owner = owner
            self._adjust = adjust
        return self._owner

    def element_of(
        self, node: ast.AST
    ) -> Optional[Tuple[Block, int, Element]]:
        return self._owners().get(id(node))

    def depth_of(self, node: ast.AST) -> int:
        """Loop-nesting depth of the element owning ``node`` (0 = never
        in a loop)."""
        owned = self.element_of(node)
        if owned is None:
            return 0
        block, _position, _element = owned
        depth = self.block_depth[block.index]
        in_iter, in_comp = self._adjust.get(id(node), (False, False))
        # A for header's iterable is evaluated once on entry, not per
        # iteration — its nodes sit one level outside the loop the
        # header opens.
        if in_iter and depth > 0:
            depth -= 1
        # A comprehension is an implicit loop the block structure only
        # models as a self edge; count it for the nodes it encloses.
        if in_comp:
            depth += 1
        return depth

    def innermost_loop(self, node: ast.AST) -> Optional[Loop]:
        """Innermost loop in which ``node`` is re-evaluated.

        A node in a for header's iterable is excluded from the loop that
        header opens (the iterable is evaluated once on entry), matching
        :meth:`depth_of`.
        """
        owned = self.element_of(node)
        if owned is None:
            return None
        block, _position, _element = owned
        candidates = [
            loop for loop in self.loops if block.index in loop.blocks
        ]
        in_iter, _in_comp = self._adjust.get(id(node), (False, False))
        if in_iter:
            candidates = [
                loop for loop in candidates if loop.header != block.index
            ]
        best: Optional[Loop] = None
        for loop in candidates:
            if best is None or len(loop.blocks) < len(best.blocks):
                best = loop
        return best

    # -- reaching definitions ------------------------------------------
    def reaching(
        self,
    ) -> Tuple[ReachingDefinitions, Dict[int, Tuple[object, object]]]:
        if self._reaching is None:
            self._reaching = solve_reaching(self.cfg)
        return self._reaching

    def defs_before(self, node: ast.AST) -> FrozenSet[Definition]:
        """Definitions reaching just before the element owning ``node``."""
        owned = self.element_of(node)
        if owned is None:
            return frozenset()
        block, position, _element = owned
        analysis, facts = self.reaching()
        return ReachingDefinitions.at_element(
            self.cfg, facts, analysis, block, position
        )

    # -- growth sites ---------------------------------------------------
    def growth_sites(self) -> List[GrowthSite]:
        """Collections grown by a loop-resident statement, keyed by the
        definition the growth statement sees."""
        if self._growth is not None:
            return self._growth
        sites: Dict[Tuple[str, Definition, bool], int] = {}
        for node in ast.walk(self.fn.node):
            name: Optional[str] = None
            keyed = False
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and isinstance(
                    func.value, ast.Name
                ):
                    if func.attr in _GROWTH_METHODS:
                        name = func.value.id
                    elif func.attr in _KEYED_GROWTH_METHODS:
                        name, keyed = func.value.id, True
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Name
            ):
                if isinstance(node.op, ast.Add):
                    name = node.target.id
            if name is None or self.depth_of(node) < 1:
                continue
            for definition in self.defs_before(node):
                if definition.name == name:
                    key = (name, definition, keyed)
                    line = getattr(node, "lineno", 0)
                    sites[key] = min(sites.get(key, line), line)
        self._growth = sorted(
            (
                GrowthSite(
                    name=name,
                    definition=definition,
                    grow_line=line,
                    keyed=keyed,
                )
                for (name, definition, keyed), line in sites.items()
            ),
            key=lambda s: (s.definition, s.grow_line),
        )
        return self._growth


def intrinsic_depth(
    fq: str,
    resolver,
    _seen: Optional[Set[str]] = None,
    _cache: Optional[Dict[str, int]] = None,
) -> int:
    """Deepest loop nest a call into ``fq`` transitively enters.

    ``resolver`` is a :class:`~repro.analysis.dataflow.summaries.SummaryIndex`
    (anything with ``function_model`` and ``calls``).  Propagation walks
    call edges forward only — callees live in the caller's forward import
    closure, so cached verdicts keyed on that closure stay sound.  Cycles
    contribute their first traversal and stop; depths cap at
    :data:`MAX_INTRINSIC_DEPTH`.
    """
    cache = _cache if _cache is not None else {}
    cached = cache.get(fq)
    if cached is not None:
        return cached
    seen = _seen if _seen is not None else set()
    if fq in seen:
        return 0
    seen.add(fq)
    model = resolver.function_model(fq)
    if model is None:
        return 0
    cost = CostModel(model)
    deepest = max(cost.block_depth.values(), default=0)
    for node in ast.walk(model.node):
        if not isinstance(node, ast.Call):
            continue
        callee = resolver.resolve_call(model, node)
        if callee is None or callee == fq:
            continue
        local = cost.depth_of(node)
        below = intrinsic_depth(callee, resolver, seen, cache)
        deepest = max(deepest, local + below)
        if deepest >= MAX_INTRINSIC_DEPTH:
            deepest = MAX_INTRINSIC_DEPTH
            break
    seen.discard(fq)
    cache[fq] = deepest
    return deepest
