"""The performance rule pack: cost model, rules, cache, engine, audit.

Layered like the dataflow package it mirrors:

* :mod:`costmodel` — loop depth over the PR-8 CFGs, growth sites through
  reaching definitions, interprocedural depth through the call graph;
* :mod:`rules` — the six perf rules and their registry;
* :mod:`cache`/:mod:`engine` — dependency-digest incremental evaluation;
* :mod:`audit` — the profile join behind ``repro perf-audit``.
"""

from repro.analysis.perf.audit import (
    AuditEntry,
    AuditReport,
    audit_findings,
    render_audit_json,
    render_audit_text,
)
from repro.analysis.perf.cache import DEFAULT_PERF_CACHE_NAME, PerfCache
from repro.analysis.perf.costmodel import (
    CostModel,
    GrowthSite,
    Loop,
    intrinsic_depth,
)
from repro.analysis.perf.engine import (
    PERF_ENGINE_VERSION,
    PerfEngine,
    PerfReport,
    analyze_perf,
)
from repro.analysis.perf.rules import (
    PerfContext,
    PerfRule,
    all_perf_rules,
    perf_rule_names,
    perf_rules_fingerprint,
    register_perf_rule,
)

__all__ = [
    "AuditEntry",
    "AuditReport",
    "audit_findings",
    "render_audit_json",
    "render_audit_text",
    "DEFAULT_PERF_CACHE_NAME",
    "PerfCache",
    "CostModel",
    "GrowthSite",
    "Loop",
    "intrinsic_depth",
    "PERF_ENGINE_VERSION",
    "PerfEngine",
    "PerfReport",
    "analyze_perf",
    "PerfContext",
    "PerfRule",
    "all_perf_rules",
    "perf_rule_names",
    "perf_rules_fingerprint",
    "register_perf_rule",
]
