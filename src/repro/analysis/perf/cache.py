"""Dependency-aware cache for perf findings.

Identical contract to the dataflow cache (one JSON file, per-module
post-pragma findings keyed on a dependency digest over the forward
import closure plus the perf rule fingerprint and engine version), in a
separate file so the two packs invalidate independently: a perf-rule
bump must not cold-start the dataflow sweep, and vice versa.
"""

from __future__ import annotations

from repro.analysis.dataflow.cache import DataflowCache

__all__ = ["PerfCache", "DEFAULT_PERF_CACHE_NAME"]

DEFAULT_PERF_CACHE_NAME = ".repro-perf-cache.json"


class PerfCache(DataflowCache):
    """Same load-once/save-once shape; only the file differs."""
