"""The performance rule pack: cost-model findings on hot-path shapes.

Six rules, each powered by :mod:`repro.analysis.perf.costmodel` (loop
depth over the PR-8 CFGs, growth sites through reaching definitions,
interprocedural depth through the PR-4 call graph):

* ``python-loop-over-array`` — elementwise Python iteration over an
  ndarray/memmap where a vectorized op exists;
* ``array-build-in-loop`` — ``np.concatenate``/``np.append``/``vstack``
  inside a loop: a fresh allocation and full copy per iteration;
* ``memmap-materialization`` — ``np.asarray``/``.copy()``/``.astype``/
  ``.tolist`` on a whole memmap-backed view, silently defeating the
  out-of-core layout;
* ``quadratic-membership`` — ``x in xs`` inside the loop growing the
  same list definition;
* ``hoistable-pure-call`` — a loop-invariant pure/digest call recomputed
  every iteration;
* ``repeated-digest`` — the same bytes digested at two or more nesting
  depths, directly or through a callee's digest-sink parameter.

All six are warnings: a perf smell is a debt, not a broken invariant —
but ``--strict`` (CI) still fails on warnings, so every one must be
fixed, pragma'd, or baselined with a reason.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple, Type

from repro.analysis.core import Finding
from repro.analysis.dataflow.model import (
    FunctionModel,
    ModelIndex,
    ModuleModel,
)
from repro.analysis.dataflow.rules import _is_memmap_source
from repro.analysis.dataflow.summaries import SummaryIndex
from repro.analysis.dataflow.taint import is_digest_sink_name
from repro.analysis.perf.costmodel import CostModel, intrinsic_depth
from repro.utils.hashing import stable_hash

__all__ = [
    "PerfContext",
    "PerfRule",
    "register_perf_rule",
    "all_perf_rules",
    "perf_rule_names",
    "perf_rules_fingerprint",
]


@dataclass
class PerfContext:
    """Everything a perf rule may inspect for one module."""

    project: object  # ProjectGraph
    models: ModelIndex
    summaries: SummaryIndex
    rel_path: str
    module_model: ModuleModel
    _costs: Dict[str, CostModel] = field(default_factory=dict)
    _intrinsic: Dict[str, int] = field(default_factory=dict)
    _arrays: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def functions(self) -> Iterable[FunctionModel]:
        for qualname in sorted(self.module_model.functions):
            yield self.module_model.functions[qualname]

    def cost(self, fn: FunctionModel) -> CostModel:
        cached = self._costs.get(fn.fq)
        if cached is None:
            cached = CostModel(fn)
            self._costs[fn.fq] = cached
        return cached

    def arrays(self, fn: FunctionModel) -> Dict[str, str]:
        """Memoized :func:`_array_names` — shared across rules."""
        cached = self._arrays.get(fn.fq)
        if cached is None:
            cached = _array_names(fn, self.module_model)
            self._arrays[fn.fq] = cached
        return cached

    def callee_depth(self, fq: str) -> int:
        """Memoized interprocedural intrinsic depth of a callee."""
        cached = self._intrinsic.get(fq)
        if cached is None:
            cached = intrinsic_depth(fq, self.summaries, _cache=self._intrinsic)
        return cached


class PerfRule:
    """Base class; subclasses register via :func:`register_perf_rule`."""

    name: str = ""
    description: str = ""
    severity: str = "warning"
    version: int = 1
    #: Minimal sources for ``repro lint --explain``: one that fires, one
    #: that stays silent.
    example_positive: str = ""
    example_negative: str = ""

    def check_module(self, ctx: PerfContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: PerfContext, line: int, message: str, col: int = 0
    ) -> Finding:
        return Finding(
            path=ctx.rel_path,
            line=line,
            col=col,
            rule=self.name,
            message=message,
            severity=self.severity,
        )


_REGISTRY: Dict[str, PerfRule] = {}


def register_perf_rule(cls: Type[PerfRule]) -> Type[PerfRule]:
    rule = cls()
    if not rule.name:
        raise ValueError(f"{cls.__name__} has no rule name")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate perf rule {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return cls


def all_perf_rules() -> List[PerfRule]:
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def perf_rule_names() -> List[str]:
    return sorted(_REGISTRY)


def perf_rules_fingerprint() -> str:
    return stable_hash(
        [(rule.name, rule.version, rule.severity) for rule in all_perf_rules()]
    )


# -- shared helpers ------------------------------------------------------

#: numpy constructors/combinators whose result is an ndarray.
_ARRAY_RETURNING = {
    "array",
    "asarray",
    "ascontiguousarray",
    "zeros",
    "zeros_like",
    "ones",
    "ones_like",
    "empty",
    "empty_like",
    "full",
    "arange",
    "linspace",
    "concatenate",
    "stack",
    "vstack",
    "hstack",
    "memmap",
    "load",
}

#: ndarray methods whose result is still array-backed.
_ARRAY_PRESERVING_ATTRS = {"astype", "copy", "reshape", "ravel", "T"}


def _walk_own_body(fn_node: ast.AST):
    """Walk a function's AST skipping nested function/lambda bodies."""
    pending: List[ast.AST] = list(ast.iter_child_nodes(fn_node))
    while pending:
        node = pending.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield node
        pending.extend(ast.iter_child_nodes(node))


def _numpy_call_name(model: ModuleModel, call: ast.Call) -> Optional[str]:
    """Last component of a ``numpy.*`` call, or None."""
    if model.imports is None:
        return None
    qualified = model.imports.qualified(call.func)
    if qualified is None or not qualified.startswith("numpy."):
        return None
    return qualified.rsplit(".", 1)[-1]


def _chain_root(node: ast.AST) -> Optional[str]:
    """Root name of an attribute/subscript/array-method chain."""
    while True:
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ) and node.func.attr in _ARRAY_PRESERVING_ATTRS:
            node = node.func.value
        else:
            break
    return node.id if isinstance(node, ast.Name) else None


def _array_names(fn: FunctionModel, model: ModuleModel) -> Dict[str, str]:
    """Names bound to ndarray/memmap values in ``fn``: name -> origin."""
    arrays: Dict[str, str] = {}
    assigns: List[ast.Assign] = [
        node for node in _walk_own_body(fn.node) if isinstance(node, ast.Assign)
    ]
    for node in _walk_own_body(fn.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if not isinstance(item.context_expr, ast.Call):
                    continue
                source = _is_memmap_source(model, item.context_expr)
                if source is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    arrays[item.optional_vars.id] = source
    changed = True
    while changed:
        changed = False
        for node in assigns:
            origin: Optional[str] = None
            value = node.value
            if isinstance(value, ast.Call):
                source = _is_memmap_source(model, value)
                numpy_name = _numpy_call_name(model, value)
                if source is not None:
                    origin = source
                elif numpy_name in _ARRAY_RETURNING:
                    origin = f"numpy.{numpy_name}"
            if origin is None:
                root = _chain_root(value)
                if root is not None and root in arrays:
                    origin = arrays[root]
            if origin is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id not in arrays:
                    arrays[target.id] = origin
                    changed = True
    return arrays


def _memmap_names(arrays: Dict[str, str]) -> Dict[str, str]:
    """The subset of an :func:`_array_names` map backed by a mapped file."""
    return {
        name: origin
        for name, origin in arrays.items()
        if "memmap" in origin or origin.endswith("(materialize=False)")
    }


def _loop_target_names(loop_stmt: ast.AST) -> Set[str]:
    target = getattr(loop_stmt, "target", None)
    if target is None:
        return set()
    return {
        child.id
        for child in ast.walk(target)
        if isinstance(child, ast.Name)
    }


def _load_names(node: ast.AST) -> Set[str]:
    return {
        child.id
        for child in ast.walk(node)
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load)
    }


# -- python-loop-over-array ----------------------------------------------


@register_perf_rule
class PythonLoopOverArray(PerfRule):
    name = "python-loop-over-array"
    description = (
        "A Python-level for loop iterates elementwise over an ndarray or "
        "memmap and does arithmetic per element; one vectorized numpy "
        "expression does the same work in native code, tens to hundreds "
        "of times faster."
    )
    example_positive = (
        "import numpy as np\n"
        "def total(path):\n"
        "    values = np.asarray([1.0, 2.0, 3.0])\n"
        "    acc = 0.0\n"
        "    for value in values:\n"
        "        acc += value * value\n"
        "    return acc\n"
    )
    example_negative = (
        "import numpy as np\n"
        "def total(path):\n"
        "    values = np.asarray([1.0, 2.0, 3.0])\n"
        "    return float((values * values).sum())\n"
    )

    def check_module(self, ctx: PerfContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for fn in ctx.functions():
            arrays = ctx.arrays(fn)
            if not arrays:
                continue
            for node in _walk_own_body(fn.node):
                if not isinstance(node, (ast.For, ast.AsyncFor)):
                    continue
                iterated = self._iterated_array(node.iter, arrays)
                if iterated is not None and self._elementwise_body(
                    node, arrays
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node.lineno,
                            f"Python loop iterates elementwise over array "
                            f"'{iterated}' (from {arrays[iterated]}); "
                            "replace the per-element arithmetic with one "
                            "vectorized numpy expression",
                            col=node.col_offset,
                        )
                    )
                    continue
                filled = self._elementwise_fill(node, arrays)
                if filled is not None:
                    findings.append(
                        self.finding(
                            ctx,
                            node.lineno,
                            f"Python loop fills array '{filled}' (from "
                            f"{arrays[filled]}) one element per iteration; "
                            "compute the whole array with one vectorized "
                            "numpy expression",
                            col=node.col_offset,
                        )
                    )
        return findings

    def _iterated_array(
        self, iter_expr: ast.AST, arrays: Dict[str, str]
    ) -> Optional[str]:
        if isinstance(iter_expr, ast.Name) and iter_expr.id in arrays:
            return iter_expr.id
        if isinstance(iter_expr, ast.Call) and isinstance(
            iter_expr.func, ast.Name
        ):
            callee = iter_expr.func.id
            if callee == "enumerate" and iter_expr.args:
                inner = iter_expr.args[0]
                if isinstance(inner, ast.Name) and inner.id in arrays:
                    return inner.id
            if callee == "range" and iter_expr.args:
                first = iter_expr.args[0]
                if (
                    isinstance(first, ast.Call)
                    and isinstance(first.func, ast.Name)
                    and first.func.id == "len"
                    and first.args
                    and isinstance(first.args[0], ast.Name)
                    and first.args[0].id in arrays
                ):
                    return first.args[0].id
        return None

    def _elementwise_fill(
        self, loop: ast.AST, arrays: Dict[str, str]
    ) -> Optional[str]:
        """An array written one `arr[i] = ...` element per iteration.

        The dual of iterating an array: the loop variable indexes a
        *store* into a known array, so the whole result could be one
        vectorized expression regardless of what is being iterated.
        """
        targets = _loop_target_names(loop)
        if not targets:
            return None
        for stmt in loop.body:  # type: ignore[attr-defined]
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Subscript):
                    continue
                if not isinstance(node.ctx, ast.Store):
                    continue
                if not isinstance(node.value, ast.Name):
                    continue
                if node.value.id in arrays and (
                    _load_names(node.slice) & targets
                ):
                    return node.value.id
        return None

    def _elementwise_body(
        self, loop: ast.AST, arrays: Dict[str, str]
    ) -> bool:
        """Does the body do per-element arithmetic on the iterated data?"""
        targets = _loop_target_names(loop)
        for stmt in loop.body:  # type: ignore[attr-defined]
            for node in ast.walk(stmt):
                if isinstance(node, ast.BinOp):
                    names = _load_names(node)
                    if names & targets or names & set(arrays):
                        return True
                if isinstance(node, ast.AugAssign):
                    names = _load_names(node.value)
                    if names & targets or names & set(arrays):
                        return True
                if isinstance(node, ast.Subscript) and isinstance(
                    node.value, ast.Name
                ):
                    if node.value.id in arrays and (
                        _load_names(node.slice) & targets
                    ):
                        return True
        return False


# -- array-build-in-loop -------------------------------------------------

_BUILD_CALLS = {"concatenate", "append", "vstack", "hstack", "stack"}


@register_perf_rule
class ArrayBuildInLoop(PerfRule):
    name = "array-build-in-loop"
    description = (
        "np.concatenate/np.append/np.vstack inside a loop reallocates "
        "and copies the whole accumulated array every iteration — "
        "quadratic total work. Preallocate the result, or collect rows "
        "in a list and stack once after the loop."
    )
    example_positive = (
        "import numpy as np\n"
        "def rows(chunks):\n"
        "    out = np.empty((0, 4))\n"
        "    for chunk in chunks:\n"
        "        out = np.concatenate([out, chunk])\n"
        "    return out\n"
    )
    example_negative = (
        "import numpy as np\n"
        "def rows(chunks):\n"
        "    parts = []\n"
        "    for chunk in chunks:\n"
        "        parts.append(chunk)\n"
        "    return np.concatenate(parts)\n"
    )

    def check_module(self, ctx: PerfContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for fn in ctx.functions():
            cost = ctx.cost(fn)
            if not cost.loops:
                continue
            for stmt in _walk_own_body(fn.node):
                # Only the accumulation shape is quadratic: the build
                # call's own result fed back in as an argument next
                # iteration (`out = np.concatenate([out, chunk])`).  A
                # fresh build per iteration (k-fold index assembly, say)
                # is linear in what it builds and stays silent.
                if isinstance(stmt, ast.Assign):
                    targets = {
                        t.id for t in stmt.targets if isinstance(t, ast.Name)
                    }
                    value = stmt.value
                elif isinstance(stmt, ast.AugAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    targets = {stmt.target.id}
                    value = stmt.value
                else:
                    continue
                if not targets:
                    continue
                for node in ast.walk(value):
                    if not isinstance(node, ast.Call):
                        continue
                    numpy_name = _numpy_call_name(ctx.module_model, node)
                    if numpy_name not in _BUILD_CALLS:
                        continue
                    depth = cost.depth_of(node)
                    if depth < 1:
                        continue
                    fed_back: Set[str] = set()
                    for arg in node.args:
                        fed_back |= _load_names(arg)
                    if not (fed_back & targets):
                        continue
                    grown = sorted(fed_back & targets)[0]
                    findings.append(
                        self.finding(
                            ctx,
                            node.lineno,
                            f"np.{numpy_name} at loop depth {depth} rebuilds "
                            f"'{grown}' from itself, copying the whole "
                            "accumulated array every iteration; collect "
                            "parts and stack once after the loop",
                            col=node.col_offset,
                        )
                    )
        return findings


# -- memmap-materialization ----------------------------------------------

_MATERIALIZING_CALLS = {"asarray", "array", "ascontiguousarray"}
_MATERIALIZING_ATTRS = {"copy", "astype", "tolist"}


@register_perf_rule
class MemmapMaterialization(PerfRule):
    name = "memmap-materialization"
    description = (
        "np.asarray/.copy()/.astype()/.tolist() on a whole memmap-backed "
        "view reads the entire mapped file into memory, silently "
        "defeating the sharded lake's out-of-core guarantee. Slice "
        "first, or keep the computation on the view."
    )
    example_positive = (
        "import numpy as np\n"
        "def load(path):\n"
        "    view = np.memmap(path, dtype='f8', mode='r')\n"
        "    return np.asarray(view)  # faults in the whole file\n"
    )
    example_negative = (
        "import numpy as np\n"
        "def head(path):\n"
        "    view = np.memmap(path, dtype='f8', mode='r')\n"
        "    return view[:16].copy()  # small slice stays out-of-core\n"
    )

    def check_module(self, ctx: PerfContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for fn in ctx.functions():
            tainted = _memmap_names(ctx.arrays(fn))
            if not tainted:
                continue
            cost = ctx.cost(fn)
            for node in _walk_own_body(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                name = self._materialized_view(ctx.module_model, node, tainted)
                if name is None:
                    continue
                depth = cost.depth_of(node)
                hot = f" at loop depth {depth}" if depth else ""
                findings.append(
                    self.finding(
                        ctx,
                        node.lineno,
                        f"whole memmap view '{name}' (from {tainted[name]}) "
                        f"materialized{hot}; this reads the entire mapped "
                        "file into memory — slice first or stay on the view",
                        col=node.col_offset,
                    )
                )
        return findings

    def _materialized_view(
        self,
        model: ModuleModel,
        call: ast.Call,
        tainted: Dict[str, str],
    ) -> Optional[str]:
        # np.asarray(view) / np.array(view) on the bare name; a sliced
        # argument (view[:n]) is the sanctioned out-of-core pattern.
        numpy_name = _numpy_call_name(model, call)
        if numpy_name in _MATERIALIZING_CALLS and call.args:
            first = call.args[0]
            if isinstance(first, ast.Name) and first.id in tainted:
                return first.id
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MATERIALIZING_ATTRS
            and isinstance(func.value, ast.Name)
            and func.value.id in tainted
        ):
            return func.value.id
        return None


# -- quadratic-membership ------------------------------------------------


@register_perf_rule
class QuadraticMembership(PerfRule):
    name = "quadratic-membership"
    description = (
        "'x in xs' inside a loop scans the very list the loop is "
        "growing: each test is O(n), the loop is O(n^2) total. Grow a "
        "set alongside (or instead) for O(1) membership."
    )
    example_positive = (
        "def dedup(items):\n"
        "    seen = []\n"
        "    for item in items:\n"
        "        if item in seen:\n"
        "            continue\n"
        "        seen.append(item)\n"
        "    return seen\n"
    )
    example_negative = (
        "def dedup(items):\n"
        "    seen = set()\n"
        "    out = []\n"
        "    for item in items:\n"
        "        if item in seen:\n"
        "            continue\n"
        "        seen.add(item)\n"
        "        out.append(item)\n"
        "    return out\n"
    )

    def check_module(self, ctx: PerfContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for fn in ctx.functions():
            cost = ctx.cost(fn)
            if not cost.loops:
                continue
            growth = {
                (site.name, site.definition): site
                for site in cost.growth_sites()
                if not site.keyed
            }
            if not growth:
                continue
            for node in _walk_own_body(fn.node):
                if not isinstance(node, ast.Compare):
                    continue
                if not any(
                    isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
                ):
                    continue
                container = node.comparators[-1]
                if not isinstance(container, ast.Name):
                    continue
                if cost.depth_of(node) < 1:
                    continue
                # The membership test must see the same definition the
                # growth statements grow — a rebound name is a new list.
                for definition in cost.defs_before(node):
                    site = growth.get((container.id, definition))
                    if site is None:
                        continue
                    findings.append(
                        self.finding(
                            ctx,
                            node.lineno,
                            f"membership test scans list '{container.id}' "
                            f"(grown at line {site.grow_line}) inside the "
                            "growing loop — O(n^2); use a set for "
                            "membership",
                            col=node.col_offset,
                        )
                    )
                    break
        return findings


# -- hoistable-pure-call -------------------------------------------------


@register_perf_rule
class HoistablePureCall(PerfRule):
    name = "hoistable-pure-call"
    description = (
        "A pure digest/fingerprint call whose arguments never change "
        "inside the loop is recomputed every iteration; hoist it above "
        "the loop and reuse the value."
    )
    example_positive = (
        "from repro.utils.hashing import stable_hash\n"
        "def tag(records, spec):\n"
        "    out = []\n"
        "    for record in records:\n"
        "        key = stable_hash(spec)  # same digest every iteration\n"
        "        out.append((key, record))\n"
        "    return out\n"
    )
    example_negative = (
        "from repro.utils.hashing import stable_hash\n"
        "def tag(records):\n"
        "    out = []\n"
        "    for record in records:\n"
        "        out.append(stable_hash(record))\n"
        "    return out\n"
    )

    def check_module(self, ctx: PerfContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for fn in ctx.functions():
            cost = ctx.cost(fn)
            if not cost.loops:
                continue
            for node in _walk_own_body(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                if not self._is_pure_digest(ctx.module_model, node):
                    continue
                loop = cost.innermost_loop(node)
                if loop is None:
                    continue
                # Receiver names count as inputs too: `chunk.digest()`
                # in a loop over chunks is not invariant.
                arg_names = _load_names(node.func)
                for arg in node.args:
                    arg_names |= _load_names(arg)
                for keyword in node.keywords:
                    arg_names |= _load_names(keyword.value)
                if not self._invariant(cost, node, loop, arg_names):
                    continue
                findings.append(
                    self.finding(
                        ctx,
                        node.lineno,
                        "loop-invariant pure call "
                        f"'{ast.unparse(node.func)}' recomputed every "
                        "iteration; hoist it above the loop",
                        col=node.col_offset,
                    )
                )
        return findings

    def _is_pure_digest(self, model: ModuleModel, call: ast.Call) -> bool:
        if model.imports is None:
            return False
        qualified = model.imports.qualified(call.func)
        if qualified is None:
            return False
        if qualified.startswith("hashlib."):
            return True
        return is_digest_sink_name(qualified)

    def _invariant(
        self,
        cost: CostModel,
        call: ast.Call,
        loop,
        arg_names: Set[str],
    ) -> bool:
        if not arg_names:
            return True
        for definition in cost.defs_before(call):
            if definition.name in arg_names and definition.block in loop.blocks:
                return False
        return True


# -- repeated-digest -----------------------------------------------------


@register_perf_rule
class RepeatedDigest(PerfRule):
    name = "repeated-digest"
    description = (
        "The same payload is digested at two or more loop-nesting "
        "depths — directly, or by passing it to a callee whose parameter "
        "flows into a digest sink. The deeper site recomputes a value "
        "the shallower one already has; compute once and pass the digest "
        "down."
    )
    example_positive = (
        "from repro.utils.hashing import stable_hash\n"
        "def index(blobs, payload):\n"
        "    root = stable_hash(payload)\n"
        "    out = []\n"
        "    for blob in blobs:\n"
        "        out.append((stable_hash(payload), blob, root))\n"
        "    return out\n"
    )
    example_negative = (
        "from repro.utils.hashing import stable_hash\n"
        "def index(blobs):\n"
        "    out = []\n"
        "    for blob in blobs:\n"
        "        out.append(stable_hash(blob))\n"
        "    return out\n"
    )

    def check_module(self, ctx: PerfContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for fn in ctx.functions():
            cost = ctx.cost(fn)
            calls = [
                node
                for node in _walk_own_body(fn.node)
                if isinstance(node, ast.Call)
            ]
            if len(calls) < 2:
                continue
            # A finding needs the same payload at two *distinct* depths;
            # if every call in the function sits at one depth, no pair
            # can qualify — skip before any call resolution or taint
            # summary work (the expensive part of this rule).
            depths = [cost.depth_of(node) for node in calls]
            if len(set(depths)) < 2:
                continue
            #: payload text -> list of (effective_depth, line, how)
            events: Dict[str, List[Tuple[int, int, str]]] = {}
            for node, depth in zip(calls, depths):
                for key, how in self._digest_payloads(ctx, fn, node):
                    events.setdefault(key, []).append(
                        (depth, node.lineno, how)
                    )
            for key, sites in sorted(events.items()):
                depths = {depth for depth, _line, _how in sites}
                if len(sites) < 2 or len(depths) < 2:
                    continue
                shallowest = min(depths)
                for depth, line, how in sorted(sites):
                    if depth <= shallowest:
                        continue
                    findings.append(
                        self.finding(
                            ctx,
                            line,
                            f"'{key}' digested again at loop depth {depth} "
                            f"({how}) after being digested at depth "
                            f"{shallowest}; compute the digest once and "
                            "reuse it",
                        )
                    )
        return findings

    def _digest_payloads(
        self, ctx: PerfContext, fn: FunctionModel, call: ast.Call
    ) -> Iterable[Tuple[str, str]]:
        """(payload text, how) pairs this call digests."""
        model = ctx.module_model
        qualified = (
            model.imports.qualified(call.func)
            if model.imports is not None
            else None
        )
        direct = qualified is not None and (
            qualified.startswith("hashlib.") or is_digest_sink_name(qualified)
        )
        if direct:
            for arg in call.args:
                yield ast.unparse(arg), f"via {qualified}"
            return
        # Indirect: an argument fed to a callee parameter that the PR-8
        # taint summary says flows into a digest sink.
        resolved = ctx.summaries.resolve_call(fn, call)
        if resolved is None:
            return
        callee = ctx.summaries.function_model(resolved)
        if callee is None:
            return
        summary = ctx.summaries.summary(resolved)
        if not summary.sink_params:
            return
        params = callee.params()
        for index, arg in enumerate(call.args):
            if index < len(params) and params[index] in summary.sink_params:
                yield ast.unparse(arg), f"via parameter of {resolved}"
        for keyword in call.keywords:
            if keyword.arg in summary.sink_params:
                yield ast.unparse(keyword.value), f"via parameter of {resolved}"
