"""The lint baseline: intentional, justified exceptions in one file.

``.repro-lint.json`` records findings the project has decided to keep,
each with a mandatory one-line reason — the reviewable ledger of every
deliberate deviation from the invariants.  An entry matches on rule name
plus path; paths are ``fnmatch`` patterns, so a directory of
intentionally-printing benchmark scripts is one entry, not thirty.

Entries that match nothing are reported as *unused* (and fail a
``--strict`` run) so the ledger cannot silently rot as code is fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Dict, List, Sequence, Tuple

from repro.analysis.core import Finding
from repro.errors import ConfigError

__all__ = ["BaselineEntry", "Baseline", "load_baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = ".repro-lint.json"
_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str  # fnmatch pattern against Finding.path
    reason: str

    def matches(self, finding: Finding) -> bool:
        return finding.rule == self.rule and fnmatch(finding.path, self.path)

    def to_dict(self) -> Dict[str, str]:
        return {"rule": self.rule, "path": self.path, "reason": self.reason}


class Baseline:
    """An ordered set of suppression entries."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()):
        self.entries = list(entries)

    def apply(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Split findings into (kept, suppressed); also return unused entries."""
        kept: List[Finding] = []
        suppressed: List[Finding] = []
        used = [False] * len(self.entries)
        for finding in findings:
            hit = False
            for index, entry in enumerate(self.entries):
                if entry.matches(finding):
                    used[index] = True
                    hit = True
            (suppressed if hit else kept).append(finding)
        unused = [
            entry for entry, was_used in zip(self.entries, used) if not was_used
        ]
        return kept, suppressed, unused


def load_baseline(path: str) -> Baseline:
    """Parse a baseline file; a missing file is an empty baseline."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return Baseline()
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigError(f"unreadable baseline file {path}: {error}") from error
    if payload.get("version") != _FORMAT_VERSION:
        raise ConfigError(
            f"baseline {path} has unsupported version {payload.get('version')!r}"
        )
    entries = []
    for raw in payload.get("suppressions", []):
        missing = {"rule", "path", "reason"} - set(raw)
        if missing:
            raise ConfigError(
                f"baseline entry {raw!r} is missing {sorted(missing)}"
            )
        if not str(raw["reason"]).strip():
            raise ConfigError(
                f"baseline entry for {raw['rule']} at {raw['path']} "
                "needs a non-empty reason"
            )
        entries.append(
            BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                reason=str(raw["reason"]),
            )
        )
    return Baseline(entries)
