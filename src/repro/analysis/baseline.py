"""The lint baseline: intentional, justified exceptions in one file.

``.repro-lint.json`` records findings the project has decided to keep,
each with a mandatory one-line reason — the reviewable ledger of every
deliberate deviation from the invariants.  An entry matches on rule name
plus path; paths are ``fnmatch`` patterns, so a directory of
intentionally-printing benchmark scripts is one entry, not thirty.

Entries that match nothing are reported as *unused* (and fail a
``--strict`` run) so the ledger cannot silently rot as code is fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Dict, List, Sequence, Tuple

from repro.analysis.core import Finding
from repro.errors import ConfigError

__all__ = [
    "BaselineEntry",
    "Baseline",
    "load_baseline",
    "save_baseline",
    "updated_entries",
    "is_todo_reason",
    "DEFAULT_BASELINE_NAME",
    "TODO_REASON",
]

DEFAULT_BASELINE_NAME = ".repro-lint.json"
_FORMAT_VERSION = 1

#: Placeholder reason ``--baseline-update`` writes for fresh findings.
#: ``--strict`` rejects it: the ledger tracks the debt, a human still
#: owes the justification.
TODO_REASON = "TODO: justify this suppression"


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str  # fnmatch pattern against Finding.path
    reason: str

    def matches(self, finding: Finding) -> bool:
        return finding.rule == self.rule and fnmatch(finding.path, self.path)

    def to_dict(self) -> Dict[str, str]:
        return {"rule": self.rule, "path": self.path, "reason": self.reason}


class Baseline:
    """An ordered set of suppression entries."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()):
        self.entries = list(entries)

    def apply(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Split findings into (kept, suppressed); also return unused entries."""
        kept: List[Finding] = []
        suppressed: List[Finding] = []
        used = [False] * len(self.entries)
        for finding in findings:
            hit = False
            for index, entry in enumerate(self.entries):
                if entry.matches(finding):
                    used[index] = True
                    hit = True
            (suppressed if hit else kept).append(finding)
        unused = [
            entry for entry, was_used in zip(self.entries, used) if not was_used
        ]
        return kept, suppressed, unused


def is_todo_reason(reason: str) -> bool:
    """True for the ``--baseline-update`` placeholder (any TODO reason)."""
    return reason.strip().lower().startswith("todo")


def updated_entries(
    baseline: Baseline,
    stale: Sequence[BaselineEntry],
    fresh_findings: Sequence[Finding],
) -> List[BaselineEntry]:
    """The rewritten ledger: current entries minus ``stale``, plus one
    TODO-reason entry per distinct (rule, path) among ``fresh_findings``.

    Pure so the runner decides what counts as stale (entries whose whole
    phase was skipped this run must survive the rewrite).
    """
    dropped = set(stale)
    entries = [entry for entry in baseline.entries if entry not in dropped]
    present = {(entry.rule, entry.path) for entry in entries}
    for finding in fresh_findings:
        key = (finding.rule, finding.path)
        if key in present:
            continue
        present.add(key)
        entries.append(
            BaselineEntry(
                rule=finding.rule, path=finding.path, reason=TODO_REASON
            )
        )
    return entries


def save_baseline(path: str, entries: Sequence[BaselineEntry]) -> None:
    """Write a ledger :func:`load_baseline` round-trips."""
    payload = {
        "version": _FORMAT_VERSION,
        "suppressions": [
            entry.to_dict()
            for entry in sorted(
                entries, key=lambda e: (e.rule, e.path, e.reason)
            )
        ],
    }
    try:
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError as error:
        raise ConfigError(
            f"cannot write baseline file {path}: {error}"
        ) from error


def load_baseline(path: str) -> Baseline:
    """Parse a baseline file; a missing file is an empty baseline."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return Baseline()
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigError(f"unreadable baseline file {path}: {error}") from error
    if payload.get("version") != _FORMAT_VERSION:
        raise ConfigError(
            f"baseline {path} has unsupported version {payload.get('version')!r}"
        )
    entries = []
    for raw in payload.get("suppressions", []):
        missing = {"rule", "path", "reason"} - set(raw)
        if missing:
            raise ConfigError(
                f"baseline entry {raw!r} is missing {sorted(missing)}"
            )
        if not str(raw["reason"]).strip():
            raise ConfigError(
                f"baseline entry for {raw['rule']} at {raw['path']} "
                "needs a non-empty reason"
            )
        entries.append(
            BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                reason=str(raw["reason"]),
            )
        )
    return Baseline(entries)
