"""Per-function summaries that make the dataflow rules interprocedural.

The intraprocedural machinery (CFG + solver + taint) sees one function at
a time.  :class:`SummaryIndex` lifts it across call edges by memoizing,
per call-graph node, the few facts callers need:

* **taint** — does the callee return nondeterminism, pass a parameter
  through to its return, or feed a parameter into a digest sink;
* **blocking** — which direct blocking calls (file/socket/sleep/
  subprocess) the callee makes, and whether any blocking call is
  transitively reachable from it;
* **shared-state effects** — which module-level names the callee reads,
  writes, and read-modify-writes.

Summaries key through the existing conservative
:class:`~repro.analysis.graph.callgraph.CallGraph`: call resolution never
leaves the caller's forward import closure, which is exactly the set the
dependency-digest cache fingerprints — a cached verdict can therefore
never be stale.  Recursion is cut with an in-progress guard that yields
the empty summary, the safe (under-approximating) fixpoint seed.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.dataflow.model import FunctionModel, ModelIndex
from repro.analysis.dataflow.taint import (
    EMPTY_SUMMARY,
    TaintRun,
    TaintSummary,
    run_taint,
)

__all__ = ["SummaryIndex", "GlobalEffects", "BLOCKING_CALLS", "BLOCKING_ATTRS"]

#: Canonical dotted names that block the event loop when awaited around.
BLOCKING_CALLS = {
    "open",
    "io.open",
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.create_connection",
    "socket.getaddrinfo",
    "urllib.request.urlopen",
    "shutil.copy",
    "shutil.copy2",
    "shutil.copyfile",
    "shutil.copytree",
    "shutil.rmtree",
    "shutil.move",
}

#: Attribute calls that are file I/O no matter the receiver type
#: (``Path.read_text`` and friends).
BLOCKING_ATTRS = {
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
}

#: Method calls that mutate their receiver in place.
MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "discard",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "clear",
}


class GlobalEffects:
    """Module-level names one function touches, split by access kind."""

    __slots__ = ("reads", "writes", "rmw")

    def __init__(
        self,
        reads: FrozenSet[str],
        writes: FrozenSet[str],
        rmw: FrozenSet[str],
    ):
        self.reads = reads
        self.writes = writes
        #: read-modify-writes: AugAssign, in-place mutation, subscript or
        #: attribute stores — each one races even on its own.
        self.rmw = rmw

    def merge(self, other: "GlobalEffects") -> "GlobalEffects":
        return GlobalEffects(
            self.reads | other.reads,
            self.writes | other.writes,
            self.rmw | other.rmw,
        )


EMPTY_EFFECTS = GlobalEffects(frozenset(), frozenset(), frozenset())


class SummaryIndex:
    """Memoized per-function summaries over one lint sweep.

    Also the resolver the taint engine runs against: it implements
    ``resolve_call`` / ``summary`` / ``function_model``.
    """

    def __init__(self, project, models: ModelIndex):
        self.project = project
        self.calls = project.calls
        self.models = models
        self._taint: Dict[str, TaintSummary] = {}
        self._taint_in_progress: Set[str] = set()
        self._blocking: Dict[str, Tuple[Tuple[str, int], ...]] = {}
        self._effects: Dict[str, GlobalEffects] = {}

    # -- resolver protocol (consumed by taint) -------------------------
    def resolve_call(
        self, fn: FunctionModel, call: ast.Call
    ) -> Optional[str]:
        """Resolve a call expression in ``fn`` to a call-graph node."""
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and fn.class_name is not None
        ):
            candidate = f"{fn.module}.{fn.class_name}.{func.attr}"
            if candidate in self.calls.functions:
                return candidate
            return None
        qualified = fn.imports.qualified(func)
        if qualified is None:
            return None
        return self.calls.resolve_callable(fn.module, qualified)

    def function_model(self, fq: str) -> Optional[FunctionModel]:
        return self.models.function(fq)

    def summary(self, fq: str) -> TaintSummary:
        cached = self._taint.get(fq)
        if cached is not None:
            return cached
        if fq in self._taint_in_progress:
            # Recursive cycle: seed with the empty summary.  Under-
            # approximates recursive taint, never fabricates it.
            return EMPTY_SUMMARY
        model = self.models.function(fq)
        if model is None:
            return EMPTY_SUMMARY
        self._taint_in_progress.add(fq)
        try:
            run = run_taint(model, self, seed_params=True)
            summary = _summary_from_run(run)
        finally:
            self._taint_in_progress.discard(fq)
        self._taint[fq] = summary
        return summary

    def taint_run(self, fn: FunctionModel) -> TaintRun:
        """Caller-mode taint: real sources only, params untainted."""
        return run_taint(fn, self, seed_params=False)

    # -- blocking calls -------------------------------------------------
    def direct_blocking(self, fq: str) -> Tuple[Tuple[str, int], ...]:
        """Blocking calls made directly in ``fq``'s own body.

        Calls inside nested ``def``/``lambda`` are excluded: defining a
        closure blocks nothing, and handing it to an executor
        (``asyncio.to_thread(fn)``) is precisely the sanctioned fix.
        """
        cached = self._blocking.get(fq)
        if cached is not None:
            return cached
        model = self.models.function(fq)
        if model is None:
            self._blocking[fq] = ()
            return ()
        hits: List[Tuple[str, int]] = []
        for node in _walk_own_body(model.node):
            if not isinstance(node, ast.Call):
                continue
            qualified = model.imports.qualified(node.func)
            if qualified in BLOCKING_CALLS:
                hits.append((qualified, node.lineno))
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in BLOCKING_ATTRS
            ):
                hits.append((f"*.{node.func.attr}", node.lineno))
        result = tuple(sorted(set(hits), key=lambda hit: (hit[1], hit[0])))
        self._blocking[fq] = result
        return result

    def blocking_reachable(
        self, fq: str
    ) -> Optional[Tuple[List[str], Tuple[str, int]]]:
        """Shortest sync call chain from ``fq`` to a blocking call.

        Returns ``(chain, (blocking_name, line))`` with ``chain`` the fq
        names walked (``fq`` exclusive) — empty when ``fq`` itself
        blocks.  Async callees are skipped: an ``await`` of another
        coroutine yields; that coroutine gets its own finding.
        """
        direct = self.direct_blocking(fq)
        if direct:
            return [], direct[0]
        parents: Dict[str, str] = {}
        seen = {fq}
        frontier = [fq]
        while frontier:
            next_frontier: List[str] = []
            for node in frontier:
                for callee in self.calls.callees(node):
                    if callee in seen:
                        continue
                    seen.add(callee)
                    callee_model = self.models.function(callee)
                    if callee_model is not None and callee_model.is_async:
                        continue
                    parents[callee] = node
                    hit = self.direct_blocking(callee)
                    if hit:
                        chain = [callee]
                        while parents.get(chain[-1], fq) != fq:
                            chain.append(parents[chain[-1]])
                        return list(reversed(chain)), hit[0]
                    next_frontier.append(callee)
            frontier = next_frontier
        return None

    # -- shared module state --------------------------------------------
    def global_effects(self, fq: str) -> GlobalEffects:
        """Module-level names ``fq`` reads / writes / read-modify-writes."""
        cached = self._effects.get(fq)
        if cached is not None:
            return cached
        model = self.models.function(fq)
        if model is None:
            self._effects[fq] = EMPTY_EFFECTS
            return EMPTY_EFFECTS
        module_model = self.models.model_for_module(model.module)
        candidates = (
            set(module_model.module_assigns) if module_model is not None else set()
        )
        effects = _function_effects(model, candidates)
        self._effects[fq] = effects
        return effects

    def merged_effects(self, roots: FrozenSet[str]) -> GlobalEffects:
        """Union of effects over a set of functions (a task's reach)."""
        merged = EMPTY_EFFECTS
        for fq in sorted(roots):
            merged = merged.merge(self.global_effects(fq))
        return merged


def _summary_from_run(run: TaintRun) -> TaintSummary:
    sink_params: Set[str] = set()
    for hit in run.sink_hits:
        param = hit.taint.from_param
        if param is not None:
            sink_params.add(param)
    param_to_return: Set[str] = set()
    returns_sources = []
    for taint in sorted(run.return_taints):
        param = taint.from_param
        if param is not None:
            param_to_return.add(param)
        else:
            returns_sources.append(taint)
    return TaintSummary(
        returns_sources=tuple(returns_sources),
        param_to_return=frozenset(param_to_return),
        sink_params=frozenset(sink_params),
    )


def _walk_own_body(fn_node: ast.AST):
    """Walk a function's AST skipping nested function/lambda bodies."""
    pending: List[ast.AST] = list(ast.iter_child_nodes(fn_node))
    while pending:
        node = pending.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        pending.extend(ast.iter_child_nodes(node))


def _function_effects(
    model: FunctionModel, candidates: Set[str]
) -> GlobalEffects:
    """Classify accesses to module-level names within one function.

    A name counts only when it is assigned at module scope in the
    function's own module and is not shadowed by a local binding
    (``global``-declared names are never locals).
    """
    local = model.local_names()
    shared = {name for name in candidates if name not in local}
    shared |= model.global_declared() & candidates
    if not shared:
        return EMPTY_EFFECTS
    reads: Set[str] = set()
    writes: Set[str] = set()
    rmw: Set[str] = set()
    for node in ast.walk(model.node):
        if isinstance(node, ast.Name) and node.id in shared:
            if isinstance(node.ctx, ast.Load):
                reads.add(node.id)
            else:
                writes.add(node.id)
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Name
        ):
            if node.target.id in shared:
                writes.add(node.target.id)
                rmw.add(node.target.id)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in shared
            ):
                writes.add(func.value.id)
                rmw.add(func.value.id)
        elif isinstance(node, (ast.Subscript, ast.Attribute)) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            base = node.value
            if isinstance(base, ast.Name) and base.id in shared:
                writes.add(base.id)
                rmw.add(base.id)
    return GlobalEffects(frozenset(reads), frozenset(writes), frozenset(rmw))
