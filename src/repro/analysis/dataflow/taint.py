"""Taint propagation: nondeterminism sources flowing to digest sinks.

Runs intraprocedurally over one function's CFG as a fixpoint (facts are
``name -> taints`` maps), with two hooks that make it interprocedural
when driven by :class:`~repro.analysis.dataflow.summaries.SummaryIndex`:

* a call to a function whose summary says *returns taint* introduces
  that taint at the call site;
* a call passing a tainted argument to a parameter the callee's summary
  marks as *sink-reaching* reports a sink hit at the call site.

Each :class:`Taint` carries its def-use chain — every intermediate
assignment between source and sink — so a finding can say exactly how a
clock value reached a digest.  Chains are capped and deduplicated
per ``(name, source)`` keeping the shortest, which bounds the lattice
and guarantees the fixpoint terminates.

Sink hits anchor at the *sink* line (the hash call, the tainted
``return``), never the source line — that is where a ``# repro: noqa``
pragma must sit to suppress the finding.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.dataflow.cfg import (
    CFG,
    Element,
    KIND_FOR,
    KIND_WITH,
)
from repro.analysis.dataflow.model import FunctionModel
from repro.analysis.dataflow.solver import Analysis, solve
from repro.analysis.rules.determinism import _NONDETERMINISTIC_CALLS

__all__ = [
    "Taint",
    "SinkHit",
    "TaintSummary",
    "TaintRun",
    "run_taint",
    "is_taint_source",
    "describe_chain",
]

#: Longest def-use chain a taint records; longer flows keep the first hops.
MAX_CHAIN = 6

_SAFE_RANDOM_ATTRS = {
    "seed", "Random", "default_rng", "SeedSequence", "RandomState",
    "Generator", "getstate", "setstate",
    # Bit-generator constructors take an explicit seed; nondeterminism
    # would come from the module-level convenience functions instead.
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64", "BitGenerator",
}
_RANDOM_PREFIXES = ("random.", "numpy.random.")

#: Environment reads: host- or process-dependent values.
_ENV_SOURCES = {
    "os.getenv",
    "os.environ.get",
    "os.getpid",
    "os.getcwd",
    "os.urandom",
    "socket.gethostname",
    "platform.node",
    "getpass.getuser",
}

_EXTRA_TIME_SOURCES = {
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
}

_DIGEST_NAME_RE = re.compile(
    r"digest|fingerprint|checksum|stable_hash|content_hash|make_id|model_id",
    re.IGNORECASE,
)


def is_taint_source(qualified: Optional[str]) -> Optional[str]:
    """Category of a nondeterminism source call, or None."""
    if qualified is None:
        return None
    if qualified in _NONDETERMINISTIC_CALLS or qualified in _EXTRA_TIME_SOURCES:
        return "time"
    if qualified in _ENV_SOURCES:
        return "env"
    for prefix in _RANDOM_PREFIXES:
        if qualified.startswith(prefix):
            attr = qualified[len(prefix):].split(".")[0]
            if attr not in _SAFE_RANDOM_ATTRS:
                return "rng"
    if qualified.startswith("secrets."):
        return "rng"
    return None


def is_digest_sink_name(callable_name: str) -> bool:
    """Does the (last component of a) call target name a digest computation?"""
    return bool(_DIGEST_NAME_RE.search(callable_name.rsplit(".", 1)[-1]))


@dataclass(frozen=True, order=True)
class Taint:
    """One tainted value: its source and the def-use hops it took."""

    source: str  # qualified source call, or "param:<name>"
    source_line: int
    chain: Tuple[Tuple[str, int], ...] = ()

    @property
    def from_param(self) -> Optional[str]:
        if self.source.startswith("param:"):
            return self.source[len("param:"):]
        return None

    def extend(self, name: str, line: int) -> "Taint":
        if len(self.chain) >= MAX_CHAIN or any(
            hop_name == name for hop_name, _ in self.chain
        ):
            return self
        return Taint(self.source, self.source_line, self.chain + ((name, line),))


def describe_chain(taint: Taint) -> str:
    """``time.time() at line 3 -> 'ts' (line 3) -> 'meta' (line 5)``."""
    parts = [f"{taint.source} at line {taint.source_line}"]
    parts.extend(
        f"{name!r} (line {line})" for name, line in taint.chain
    )
    return " -> ".join(parts)


@dataclass(frozen=True, order=True)
class SinkHit:
    """A taint reaching a digest sink."""

    line: int
    sink: str  # rendered sink, e.g. "stable_hash(...)" or "return"
    taint: Taint


@dataclass(frozen=True)
class TaintSummary:
    """What a callee does with taint, as seen from a call site."""

    returns_sources: Tuple[Taint, ...] = ()
    param_to_return: FrozenSet[str] = frozenset()
    sink_params: FrozenSet[str] = frozenset()

    @property
    def is_trivial(self) -> bool:
        return (
            not self.returns_sources
            and not self.param_to_return
            and not self.sink_params
        )


EMPTY_SUMMARY = TaintSummary()


@dataclass
class TaintRun:
    """The result of one intraprocedural taint evaluation."""

    sink_hits: List[SinkHit] = field(default_factory=list)
    return_taints: Set[Taint] = field(default_factory=set)


class _Resolver:
    """What the engine injects: call resolution and callee summaries."""

    def resolve_call(self, fn: FunctionModel, call: ast.Call) -> Optional[str]:
        raise NotImplementedError

    def summary(self, fq: str) -> TaintSummary:
        raise NotImplementedError


_Fact = FrozenSet[Tuple[str, Taint]]


def _normalize(pairs: Set[Tuple[str, Taint]]) -> _Fact:
    """Keep one (shortest-chain) taint per (name, source, source_line)."""
    best: Dict[Tuple[str, str, int], Taint] = {}
    for name, taint in pairs:
        key = (name, taint.source, taint.source_line)
        current = best.get(key)
        if current is None or (len(taint.chain), taint.chain) < (
            len(current.chain),
            current.chain,
        ):
            best[key] = taint
    return frozenset(
        (key[0], taint) for key, taint in best.items()
    )


class _TaintAnalysis(Analysis):
    direction = "forward"

    def __init__(self, fn: FunctionModel, resolver: _Resolver, seed_params: bool):
        self.fn = fn
        self.resolver = resolver
        self.seed_params = seed_params

    def bottom(self, cfg: CFG) -> _Fact:
        return frozenset()

    def boundary(self, cfg: CFG) -> _Fact:
        if not self.seed_params:
            return frozenset()
        return frozenset(
            (name, Taint(source=f"param:{name}", source_line=self.fn.lineno))
            for name in self.fn.params()
        )

    def join(self, left: _Fact, right: _Fact) -> _Fact:
        return _normalize(set(left) | set(right))

    # -- expression evaluation ----------------------------------------
    def expr_taints(self, node: ast.AST, env: Dict[str, Set[Taint]]) -> Set[Taint]:
        if isinstance(node, ast.Name):
            return set(env.get(node.id, ()))
        if isinstance(node, ast.Call):
            return self._call_taints(node, env)
        if isinstance(node, ast.Subscript):
            qualified = self.fn.imports.qualified(node.value)
            if qualified == "os.environ":
                return {Taint("os.environ[...]", node.lineno)}
            return self.expr_taints(node.value, env) | self.expr_taints(
                node.slice, env
            )
        if isinstance(node, ast.Lambda):
            return set()  # not evaluated here
        taints: Set[Taint] = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.keyword, ast.comprehension)):
                taints |= self.expr_taints(child, env)
            elif isinstance(child, ast.arguments):
                continue
        return taints

    def _arg_taints(
        self, call: ast.Call, env: Dict[str, Set[Taint]]
    ) -> Set[Taint]:
        taints: Set[Taint] = set()
        for arg in call.args:
            taints |= self.expr_taints(arg, env)
        for keyword in call.keywords:
            taints |= self.expr_taints(keyword.value, env)
        return taints

    def _call_taints(
        self, call: ast.Call, env: Dict[str, Set[Taint]]
    ) -> Set[Taint]:
        qualified = self.fn.imports.qualified(call.func)
        category = is_taint_source(qualified)
        if category is not None:
            assert qualified is not None
            return {Taint(qualified, call.lineno)}
        resolved = self.resolver.resolve_call(self.fn, call)
        if resolved is not None:
            summary = self.resolver.summary(resolved)
            taints: Set[Taint] = set()
            for source in summary.returns_sources:
                # Re-anchor the callee's internal source at this call.
                taints.add(
                    Taint(source.source, call.lineno).extend(
                        f"{resolved}()", call.lineno
                    )
                )
            if summary.param_to_return:
                for position, name in self._argument_bindings(call, resolved):
                    if name in summary.param_to_return:
                        for taint in self._binding_taints(call, position, env):
                            taints.add(taint.extend(f"{resolved}()", call.lineno))
            if taints:
                return taints
        # Default: a transform of tainted data is tainted data.  For a
        # method call the receiver counts too: `env_value.encode()` is
        # as tainted as `env_value`.
        taints = self._arg_taints(call, env)
        if isinstance(call.func, ast.Attribute):
            taints |= self.expr_taints(call.func.value, env)
        return taints

    def _argument_bindings(
        self, call: ast.Call, resolved: str
    ) -> List[Tuple[int, str]]:
        """(argument position, callee parameter name) pairs for a call."""
        callee = self.resolver_model(resolved)
        if callee is None:
            return []
        params = callee.params()
        if callee.class_name is not None and params and params[0] in (
            "self",
            "cls",
        ):
            params = params[1:]
        bindings: List[Tuple[int, str]] = []
        for position in range(len(call.args)):
            if position < len(params):
                bindings.append((position, params[position]))
        offset = len(call.args)
        for index, keyword in enumerate(call.keywords):
            if keyword.arg is not None and keyword.arg in params:
                bindings.append((offset + index, keyword.arg))
        return bindings

    def resolver_model(self, fq: str) -> Optional[FunctionModel]:
        getter = getattr(self.resolver, "function_model", None)
        if getter is None:
            return None
        return getter(fq)

    def _binding_taints(
        self, call: ast.Call, position: int, env: Dict[str, Set[Taint]]
    ) -> Set[Taint]:
        if position < len(call.args):
            return self.expr_taints(call.args[position], env)
        keyword = call.keywords[position - len(call.args)]
        return self.expr_taints(keyword.value, env)

    # -- transfer ------------------------------------------------------
    def transfer(self, element: Element, fact: _Fact) -> _Fact:
        env: Dict[str, Set[Taint]] = {}
        for name, taint in fact:
            env.setdefault(name, set()).add(taint)
        node = element.node
        pairs = set(fact)
        if element.kind == KIND_FOR:
            iter_taints = self.expr_taints(node.iter, env)  # type: ignore[attr-defined]
            self._assign_targets(
                pairs, [node.target], iter_taints, node.lineno  # type: ignore[attr-defined]
            )
        elif element.kind == KIND_WITH:
            for item in node.items:  # type: ignore[attr-defined]
                if item.optional_vars is not None:
                    taints = self.expr_taints(item.context_expr, env)
                    self._assign_targets(
                        pairs, [item.optional_vars], taints, node.lineno
                    )
        elif isinstance(node, ast.Assign):
            taints = self.expr_taints(node.value, env)
            self._assign_targets(pairs, node.targets, taints, node.lineno)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            taints = self.expr_taints(node.value, env)
            self._assign_targets(pairs, [node.target], taints, node.lineno)
        elif isinstance(node, ast.AugAssign):
            # x += v reads x, so existing taints survive; v may add more.
            taints = self.expr_taints(node.value, env)
            if isinstance(node.target, ast.Name) and taints:
                name = node.target.id
                for taint in taints:
                    pairs.add((name, taint.extend(name, node.lineno)))
        return _normalize(pairs)

    def _assign_targets(
        self,
        pairs: Set[Tuple[str, Taint]],
        targets: List[ast.AST],
        taints: Set[Taint],
        lineno: int,
    ) -> None:
        names: List[str] = []
        for target in targets:
            names.extend(_plain_names(target))
        if not names:
            return
        for name in names:
            pairs.difference_update(
                {(n, t) for n, t in pairs if n == name}
            )
            for taint in taints:
                pairs.add((name, taint.extend(name, lineno)))


def _plain_names(target: ast.AST) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for elt in target.elts:
            names.extend(_plain_names(elt))
        return names
    if isinstance(target, ast.Starred):
        return _plain_names(target.value)
    return []


def _hashlib_handles(fn: FunctionModel) -> Set[str]:
    """Names assigned (anywhere in the function) from a hashlib call."""
    handles: Set[str] = set()
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        qualified = fn.imports.qualified(node.value.func)
        if qualified is not None and qualified.startswith("hashlib."):
            for target in node.targets:
                handles.update(_plain_names(target))
    return handles


def run_taint(
    fn: FunctionModel,
    resolver: _Resolver,
    seed_params: bool = False,
) -> TaintRun:
    """Solve taint for one function and collect sink hits.

    ``seed_params=True`` runs summary mode: parameters enter tainted, so
    the result reveals which params reach sinks / flow to the return.
    """
    analysis = _TaintAnalysis(fn, resolver, seed_params)
    facts = solve(fn.cfg, analysis)
    run = TaintRun()
    digest_handles = _hashlib_handles(fn)
    fn_is_digest = is_digest_sink_name(fn.qualname)
    for block, position, element in fn.cfg.elements():
        fact: _Fact = facts[block.index][0]  # type: ignore[assignment]
        for prior in block.elements[:position]:
            fact = analysis.transfer(prior, fact)
        env: Dict[str, Set[Taint]] = {}
        for name, taint in fact:
            env.setdefault(name, set()).add(taint)
        node = element.node
        for call in _calls_in(node):
            self_update = _is_update_on(call, digest_handles)
            qualified = fn.imports.qualified(call.func)
            resolved = resolver.resolve_call(fn, call)
            sink_label: Optional[str] = None
            tainted_args: Set[Taint] = set()
            if self_update or (
                qualified is not None and qualified.startswith("hashlib.")
            ):
                sink_label = ast.unparse(call.func)
                tainted_args = analysis._arg_taints(call, env)
            elif qualified is not None and is_digest_sink_name(qualified):
                sink_label = qualified.rsplit(".", 1)[-1]
                tainted_args = analysis._arg_taints(call, env)
            elif resolved is not None:
                summary = resolver.summary(resolved)
                if summary.sink_params:
                    for position_, name in analysis._argument_bindings(
                        call, resolved
                    ):
                        if name not in summary.sink_params:
                            continue
                        for taint in analysis._binding_taints(
                            call, position_, env
                        ):
                            run.sink_hits.append(
                                SinkHit(
                                    line=call.lineno,
                                    sink=f"{resolved}(param {name!r})",
                                    taint=taint,
                                )
                            )
            if sink_label is not None:
                for taint in sorted(tainted_args):
                    run.sink_hits.append(
                        SinkHit(line=call.lineno, sink=sink_label, taint=taint)
                    )
        if isinstance(node, ast.Return) and node.value is not None:
            taints = analysis.expr_taints(node.value, env)
            run.return_taints |= taints
            if fn_is_digest:
                for taint in sorted(taints):
                    run.sink_hits.append(
                        SinkHit(
                            line=node.lineno,
                            sink=f"return of {fn.qualname}()",
                            taint=taint,
                        )
                    )
    run.sink_hits = sorted(set(run.sink_hits))
    return run


def _calls_in(node: ast.AST) -> List[ast.Call]:
    calls = [
        child for child in ast.walk(node) if isinstance(child, ast.Call)
    ]
    return sorted(calls, key=lambda c: (c.lineno, c.col_offset))


def _is_update_on(call: ast.Call, handles: Set[str]) -> bool:
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "update"
        and isinstance(func.value, ast.Name)
        and func.value.id in handles
    )


#: The callable type the engine passes in (documented, not enforced).
ResolverLike = Callable
