"""Dataflow analysis: CFGs, fixpoint solving, and taint over the call graph.

Per-file AST rules see syntax; graph rules see module topology.  Neither
can answer *flow* questions: does this handle close on every path, does
this clock value reach a digest, does this memmap view outlive the file
backing it?  This subpackage supplies the machinery:

* :mod:`repro.analysis.dataflow.cfg` — per-function control-flow graphs
  covering branches, loops, ``try/except/finally``, ``with``, ``match``,
  and comprehension back edges;
* :mod:`repro.analysis.dataflow.solver` — a generic worklist fixpoint
  solver plus the two classic instances (reaching definitions,
  liveness) every rule builds on;
* :mod:`repro.analysis.dataflow.taint` — intraprocedural taint
  propagation with def-use chains, from nondeterminism sources to
  digest sinks;
* :mod:`repro.analysis.dataflow.summaries` — per-function summaries
  (blocking calls, taint returns, sink parameters, shared-state
  read/write sets) that make the analysis interprocedural by keying
  through the existing :class:`~repro.analysis.graph.callgraph.CallGraph`;
* :mod:`repro.analysis.dataflow.rules` — the concurrency/resource-safety
  rule pack (shared-state-race, blocking-call-in-async, memmap-escape,
  impure-digest-flow, resource-leak);
* :mod:`repro.analysis.dataflow.engine` — incremental evaluation, cached
  per dependency digest (engine version included, so engine upgrades
  invalidate cleanly), surfaced as ``repro lint --dataflow``.
"""

from repro.analysis.dataflow.cache import (
    DEFAULT_DATAFLOW_CACHE_NAME,
    DataflowCache,
)
from repro.analysis.dataflow.cfg import (
    CFG,
    Block,
    Element,
    build_cfg,
    render_cfg_dot,
    render_cfg_text,
)
from repro.analysis.dataflow.engine import (
    ENGINE_VERSION,
    DataflowEngine,
    DataflowReport,
    analyze_dataflow,
    find_function,
)
from repro.analysis.dataflow.model import FunctionModel, ModelIndex, ModuleModel
from repro.analysis.dataflow.rules import (
    DataflowRule,
    all_dataflow_rules,
    dataflow_rule_names,
    dataflow_rules_fingerprint,
    register_dataflow_rule,
)
from repro.analysis.dataflow.solver import (
    Analysis,
    Definition,
    Liveness,
    ReachingDefinitions,
    solve,
    solve_liveness,
    solve_reaching,
)
from repro.analysis.dataflow.summaries import SummaryIndex

__all__ = [
    "Analysis",
    "Block",
    "CFG",
    "DEFAULT_DATAFLOW_CACHE_NAME",
    "DataflowCache",
    "DataflowEngine",
    "DataflowReport",
    "DataflowRule",
    "Definition",
    "ENGINE_VERSION",
    "Element",
    "FunctionModel",
    "Liveness",
    "ModelIndex",
    "ModuleModel",
    "ReachingDefinitions",
    "SummaryIndex",
    "all_dataflow_rules",
    "analyze_dataflow",
    "build_cfg",
    "dataflow_rule_names",
    "dataflow_rules_fingerprint",
    "find_function",
    "register_dataflow_rule",
    "render_cfg_dot",
    "render_cfg_text",
    "solve",
    "solve_liveness",
    "solve_reaching",
]
