"""Incremental driver for the dataflow rule pack.

:func:`analyze_dataflow` mirrors the graph layer's evaluation shape:
per-module findings cached on a dependency digest covering the module's
forward import closure, the rule-pack fingerprint, and
:data:`ENGINE_VERSION` — a one-file edit re-analyzes only that file plus
its reverse-import closure; a solver or summary change (an engine bump)
invalidates everything.

The expensive work — parsing function ASTs, building CFGs, solving
fixpoints — happens lazily through :class:`ModelIndex`, so a fully-warm
run touches no ASTs at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import Finding
from repro.analysis.dataflow.cache import DataflowCache
from repro.analysis.dataflow.model import FunctionModel, ModelIndex
from repro.analysis.dataflow.rules import (
    DataflowContext,
    all_dataflow_rules,
    dataflow_rules_fingerprint,
)
from repro.analysis.dataflow.summaries import SummaryIndex
from repro.analysis.graph.project import ProjectGraph
from repro.analysis.pragmas import apply_pragmas
from repro.obs.tracing import trace
from repro.utils.hashing import stable_hash

__all__ = [
    "ENGINE_VERSION",
    "DataflowEngine",
    "DataflowReport",
    "analyze_dataflow",
    "find_function",
]

#: Bump whenever CFG construction, the solver, taint, or summaries change
#: meaning — it keys the findings cache, so an upgrade can never replay a
#: verdict computed by an older engine.
ENGINE_VERSION = 1


@dataclass
class DataflowReport:
    """One incremental dataflow evaluation."""

    findings: List[Finding] = field(default_factory=list)
    modules: int = 0
    functions_analyzed: int = 0
    files_reanalyzed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    fingerprint: str = ""


class DataflowEngine:
    """Per-sweep state: models, summaries, and the rule pack."""

    def __init__(self, files: Dict[str, Tuple[str, str]], project: ProjectGraph):
        self.files = files
        self.project = project
        self.models = ModelIndex(files, project.source_roots)
        self.summaries = SummaryIndex(project, self.models)
        self.rules = all_dataflow_rules()

    def dependency_digest(self, module: str, digests: Dict[str, str]) -> str:
        graph = self.project.imports
        closure_files = sorted(
            (graph.modules[dep], digests[graph.modules[dep]])
            for dep in graph.forward_closure(module)
            if graph.modules[dep] in digests
        )
        return stable_hash(
            {
                "deps": closure_files,
                "rules": dataflow_rules_fingerprint(),
                "engine": ENGINE_VERSION,
            }
        )

    def check_module(self, rel_path: str) -> Tuple[List[Finding], int]:
        """Raw (pre-pragma) findings plus functions analyzed for one file."""
        module_model = self.models.model(rel_path)
        if module_model is None or module_model.parse_error:
            return [], 0
        ctx = DataflowContext(
            project=self.project,
            models=self.models,
            summaries=self.summaries,
            rel_path=rel_path,
            module_model=module_model,
        )
        findings: List[Finding] = []
        for rule in self.rules:
            findings.extend(rule.check_module(ctx))
        return sorted(set(findings)), len(module_model.functions)


def analyze_dataflow(
    files: Dict[str, Tuple[str, str]],
    project: ProjectGraph,
    cache: DataflowCache,
) -> DataflowReport:
    """Run the dataflow rule pack incrementally over ``files``.

    ``files`` maps rel_path -> (source, content_digest); ``project`` is
    the already-built graph the lint sweep shares between phases.
    Returns post-pragma, pre-baseline findings plus cache accounting.
    """
    engine = DataflowEngine(files, project)
    graph = project.imports
    cache.prune(files)
    report = DataflowReport(
        modules=len(graph.modules),
        fingerprint=dataflow_rules_fingerprint(),
    )
    digests = {rel_path: digest for rel_path, (_s, digest) in files.items()}
    aggregate: List[Finding] = []
    for module in sorted(graph.modules):
        rel_path = graph.modules[module]
        if rel_path not in files:
            continue
        dep_digest = engine.dependency_digest(module, digests)
        findings = cache.get_module_findings(rel_path, dep_digest)
        if findings is None:
            report.files_reanalyzed += 1
            with trace("dataflow.module", path=rel_path):
                raw, functions = engine.check_module(rel_path)
            report.functions_analyzed += functions
            findings, _suppressed = apply_pragmas(raw, files[rel_path][0])
            cache.put_module_findings(rel_path, dep_digest, findings)
        aggregate.extend(findings)
    report.findings = sorted(aggregate)
    report.cache_hits = cache.hits
    report.cache_misses = cache.misses
    return report


def find_function(
    files: Dict[str, Tuple[str, str]],
    name: str,
    source_roots: Tuple[str, ...] = ("src",),
) -> Optional[FunctionModel]:
    """Resolve ``--cfg FUNC`` to a function model.

    Accepts a fully-qualified name (``repro.lake.store.WeightStore.put``),
    a module-relative qualname (``WeightStore.put``), a bare function
    name — first match in sorted file order wins — or the unambiguous
    ``path/to/file.py:qualname`` form, which looks only in that file.
    """
    models = ModelIndex(files, source_roots)
    if ":" in name:
        # path:qualname pins the file, so same-named functions in other
        # modules can never shadow the one asked for.
        raw_path, _, qualname = name.rpartition(":")
        rel_path = raw_path.replace("\\", "/").lstrip("./")
        model = models.model(rel_path)
        if model is None or model.parse_error:
            return None
        for candidate in sorted(model.functions):
            fn = model.functions[candidate]
            if candidate == qualname or (
                candidate.rsplit(".", 1)[-1] == qualname
            ):
                return fn
        return None
    exact = models.function(name)
    if exact is not None:
        return exact
    for rel_path in sorted(files):
        model = models.model(rel_path)
        if model is None or model.parse_error:
            continue
        for qualname in sorted(model.functions):
            fn = model.functions[qualname]
            if qualname == name or qualname.rsplit(".", 1)[-1] == name:
                return fn
    return None
