"""Dependency-aware cache for dataflow findings.

One tier, one JSON file (``.repro-dataflow-cache.json``): post-pragma
dataflow findings per module, keyed on a *dependency digest* — the
content digests of the module's whole forward import closure, plus the
dataflow rule fingerprint and the engine version.  Interprocedural
reasoning (summaries, call resolution) never leaves the forward import
closure, so the digest covers everything a verdict read: editing one
file invalidates exactly itself plus its reverse-import closure, and an
engine or rule-pack upgrade invalidates everything at once.

Written atomically like the other caches; an unwritable cache degrades
to a slower lint, never a failed one.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional

from repro.analysis.core import Finding

__all__ = ["DataflowCache", "DEFAULT_DATAFLOW_CACHE_NAME"]

DEFAULT_DATAFLOW_CACHE_NAME = ".repro-dataflow-cache.json"
_FORMAT_VERSION = 1


class DataflowCache:
    """Load-once, save-once; ``path=None`` disables persistence."""

    def __init__(self, path: Optional[str]):
        self.path = path
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._module_findings: Dict[str, Dict[str, object]] = {}
        if path is not None:
            self._load(path)

    def _load(self, path: str) -> None:
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, ValueError):
            return
        if payload.get("version") != _FORMAT_VERSION:
            return
        module_findings = payload.get("module_findings", {})
        if isinstance(module_findings, dict):
            self._module_findings = module_findings

    def get_module_findings(
        self, rel_path: str, dep_digest: str
    ) -> Optional[List[Finding]]:
        entry = self._module_findings.get(rel_path)
        if entry is None or entry.get("dep_digest") != dep_digest:
            self.misses += 1
            return None
        self.hits += 1
        return [Finding.from_dict(raw) for raw in entry.get("findings", [])]  # type: ignore[union-attr]

    def put_module_findings(
        self, rel_path: str, dep_digest: str, findings: List[Finding]
    ) -> None:
        self._module_findings[rel_path] = {
            "dep_digest": dep_digest,
            "findings": [finding.to_dict() for finding in findings],
        }
        self._dirty = True

    def prune(self, live_paths) -> None:
        """Drop entries for files that no longer exist in the sweep."""
        live = set(live_paths)
        for stale in [rel for rel in self._module_findings if rel not in live]:
            del self._module_findings[stale]
            self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload = {
            "version": _FORMAT_VERSION,
            "module_findings": self._module_findings,
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        descriptor, tmp_path = tempfile.mkstemp(
            prefix=".repro-dataflow-cache.", dir=directory
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
            os.replace(tmp_path, self.path)
        except OSError:
            # An unwritable cache must not fail the lint.
            try:
                os.unlink(tmp_path)
            except OSError:  # repro: noqa[swallowed-exception]
                pass
        else:
            self._dirty = False
