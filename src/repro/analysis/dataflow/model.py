"""AST-level models the dataflow engine analyzes.

The graph layer's :class:`~repro.analysis.graph.extract.ModuleFacts` are
deliberately lossy — JSON-serializable summaries good for topology, far
too coarse for flow.  This module keeps the *full* AST of each function,
lazily: a :class:`ModelIndex` parses a file only when some rule or
summary actually needs it, which is what keeps warm incremental runs
cheap (a cached module's AST is never touched).

Function naming mirrors :class:`~repro.analysis.graph.callgraph.CallGraph`
exactly — ``module.qualname`` with ``qualname`` either ``func`` or
``Class.method`` — so summaries keyed by call-graph node resolve
straight into models.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.core import ImportMap
from repro.analysis.dataflow.cfg import CFG, build_cfg
from repro.analysis.graph.extract import module_name_for

__all__ = ["FunctionModel", "ModuleModel", "ModelIndex"]


@dataclass
class FunctionModel:
    """One analyzable function: its AST, scope info, and a lazy CFG."""

    module: str
    rel_path: str
    qualname: str  # "func" or "Class.method"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    imports: ImportMap
    is_async: bool
    class_name: Optional[str] = None
    _cfg: Optional[CFG] = field(default=None, repr=False)
    _locals: Optional[Set[str]] = field(default=None, repr=False)

    @property
    def fq(self) -> str:
        return f"{self.module}.{self.qualname}"

    @property
    def lineno(self) -> int:
        return self.node.lineno  # type: ignore[attr-defined]

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.node, name=self.fq)
        return self._cfg

    def params(self) -> List[str]:
        args = self.node.args  # type: ignore[attr-defined]
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    def local_names(self) -> Set[str]:
        """Every name bound inside the function (params included).

        Used to tell locals apart from module globals and closure
        captures.  ``global``-declared names are *excluded* — binding
        one writes the module, not the local scope.
        """
        if self._locals is not None:
            return self._locals
        bound: Set[str] = set(self.params())
        global_names: Set[str] = set()
        for child in ast.walk(self.node):
            if isinstance(child, ast.Global):
                global_names.update(child.names)
            elif isinstance(child, (ast.Name,)) and isinstance(
                child.ctx, (ast.Store, ast.Del)
            ):
                bound.add(child.id)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if child is not self.node:
                    bound.add(child.name)
            elif isinstance(child, (ast.Import, ast.ImportFrom)):
                for alias in child.names:
                    if alias.name != "*":
                        bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(child, ast.ExceptHandler) and child.name:
                bound.add(child.name)
        self._locals = (bound - global_names) | set(self.params())
        return self._locals

    def global_declared(self) -> Set[str]:
        names: Set[str] = set()
        for child in ast.walk(self.node):
            if isinstance(child, ast.Global):
                names.update(child.names)
        return names


class ModuleModel:
    """One parsed file: its functions, imports, and module-level names."""

    def __init__(
        self,
        rel_path: str,
        source: str,
        source_roots: Tuple[str, ...] = ("src",),
    ):
        self.rel_path = rel_path
        self.module = module_name_for(rel_path, source_roots)
        self.parse_error = False
        self.functions: Dict[str, FunctionModel] = {}
        #: names assigned at module scope (shared state candidates)
        self.module_assigns: Dict[str, int] = {}
        try:
            self.tree: Optional[ast.Module] = ast.parse(source, filename=rel_path)
        except SyntaxError:
            self.tree = None
            self.parse_error = True
            self.imports = None  # type: ignore[assignment]
            return
        self.imports = ImportMap(self.tree)
        self._collect()

    def _collect(self) -> None:
        assert self.tree is not None
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                for member in stmt.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add_function(member, class_name=stmt.name)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.module_assigns.setdefault(target.id, stmt.lineno)

    def _add_function(self, node, class_name: Optional[str]) -> None:
        qualname = f"{class_name}.{node.name}" if class_name else node.name
        self.functions[qualname] = FunctionModel(
            module=self.module,
            rel_path=self.rel_path,
            qualname=qualname,
            node=node,
            imports=self.imports,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            class_name=class_name,
        )


class ModelIndex:
    """Lazy rel_path -> :class:`ModuleModel` map over the lint sweep."""

    def __init__(
        self,
        files: Dict[str, Tuple[str, str]],
        source_roots: Tuple[str, ...] = ("src",),
    ):
        self._files = files
        self._source_roots = source_roots
        self._models: Dict[str, ModuleModel] = {}
        self._by_module: Dict[str, str] = {}
        for rel_path in files:
            module = module_name_for(rel_path, source_roots)
            self._by_module.setdefault(module, rel_path)

    def model(self, rel_path: str) -> Optional[ModuleModel]:
        if rel_path not in self._files:
            return None
        cached = self._models.get(rel_path)
        if cached is None:
            source, _digest = self._files[rel_path]
            cached = ModuleModel(rel_path, source, self._source_roots)
            self._models[rel_path] = cached
        return cached

    def model_for_module(self, module: str) -> Optional[ModuleModel]:
        rel_path = self._by_module.get(module)
        if rel_path is None:
            return None
        return self.model(rel_path)

    def function(self, fq: str) -> Optional[FunctionModel]:
        """Resolve a call-graph node name into its AST model."""
        parts = fq.split(".")
        # qualname is 1 ("func") or 2 ("Class.method") trailing parts.
        for split in (len(parts) - 1, len(parts) - 2):
            if split <= 0:
                continue
            module = ".".join(parts[:split])
            qualname = ".".join(parts[split:])
            model = self.model_for_module(module)
            if model is not None and qualname in model.functions:
                return model.functions[qualname]
        return None

    @property
    def parsed_count(self) -> int:
        return len(self._models)
