"""The dataflow rule pack: concurrency and resource-safety findings.

Five rules, each impossible to state per-file or per-module:

* ``shared-state-race`` — a pool task or thread target whose call tree
  reads *and* writes module-level state, or read-modify-writes it;
* ``blocking-call-in-async`` — a blocking call reachable from an
  ``async def`` without an executor hop;
* ``memmap-escape`` — a memmap view escaping the scope that owns its
  backing file;
* ``impure-digest-flow`` — a nondeterministic value flowing into a
  digest, reported with its full def-use chain;
* ``resource-leak`` — a handle acquired outside ``with`` that some CFG
  path drops without closing.

Every finding anchors where a ``# repro: noqa[rule]`` pragma can
suppress it: the sink line for taint, the escape site for memmaps, the
submission site for races, the acquisition line for leaks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Type

from repro.analysis.core import Finding
from repro.analysis.dataflow.cfg import CFG, Element, KIND_WITH
from repro.analysis.dataflow.model import (
    FunctionModel,
    ModelIndex,
    ModuleModel,
)
from repro.analysis.dataflow.solver import Analysis, solve
from repro.analysis.dataflow.summaries import MUTATING_METHODS, SummaryIndex
from repro.analysis.dataflow.taint import describe_chain
from repro.utils.hashing import stable_hash

__all__ = [
    "DataflowContext",
    "DataflowRule",
    "register_dataflow_rule",
    "all_dataflow_rules",
    "dataflow_rule_names",
    "dataflow_rules_fingerprint",
]


@dataclass
class DataflowContext:
    """Everything a dataflow rule may inspect for one module."""

    project: object  # ProjectGraph
    models: ModelIndex
    summaries: SummaryIndex
    rel_path: str
    module_model: ModuleModel

    def functions(self) -> Iterable[FunctionModel]:
        for qualname in sorted(self.module_model.functions):
            yield self.module_model.functions[qualname]


class DataflowRule:
    """Base class; subclasses register via :func:`register_dataflow_rule`."""

    name: str = ""
    description: str = ""
    severity: str = "error"
    version: int = 1
    #: Minimal sources for ``repro lint --explain``: one that fires, one
    #: that stays silent.
    example_positive: str = ""
    example_negative: str = ""

    def check_module(self, ctx: DataflowContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: DataflowContext, line: int, message: str, col: int = 0
    ) -> Finding:
        return Finding(
            path=ctx.rel_path,
            line=line,
            col=col,
            rule=self.name,
            message=message,
            severity=self.severity,
        )


_REGISTRY: Dict[str, DataflowRule] = {}


def register_dataflow_rule(cls: Type[DataflowRule]) -> Type[DataflowRule]:
    rule = cls()
    if not rule.name:
        raise ValueError(f"{cls.__name__} has no rule name")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate dataflow rule {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return cls


def all_dataflow_rules() -> List[DataflowRule]:
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def dataflow_rule_names() -> List[str]:
    return sorted(_REGISTRY)


def dataflow_rules_fingerprint() -> str:
    return stable_hash(
        [
            (rule.name, rule.version, rule.severity)
            for rule in all_dataflow_rules()
        ]
    )


# -- shared helpers ------------------------------------------------------


def _names_in(node: ast.AST) -> Set[str]:
    return {
        child.id
        for child in ast.walk(node)
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load)
    }


def _direct_names(node: ast.AST) -> Set[str]:
    """Names referenced directly: a bare name or a tuple/list of them."""
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, (ast.Tuple, ast.List)):
        names: Set[str] = set()
        for elt in node.elts:
            names |= _direct_names(elt)
        return names
    if isinstance(node, ast.Starred):
        return _direct_names(node.value)
    return set()


def _access_root(node: ast.AST) -> Optional[str]:
    """Root name of a pure access chain (``a``, ``a.b``, ``a[k].c``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _submission_sites(
    tree: ast.AST,
) -> List[Tuple[str, ast.Call, ast.AST]]:
    """``(kind, call, target_expr)`` for run_wave / Thread submissions."""
    sites: List[Tuple[str, ast.Call, ast.AST]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "run_wave":
            if node.args:
                sites.append(("pool task", node, node.args[0]))
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name == "Thread":
            for keyword in node.keywords:
                if keyword.arg == "target":
                    sites.append(("thread target", node, keyword.value))
    return sites


# -- shared-state-race ---------------------------------------------------


@register_dataflow_rule
class SharedStateRace(DataflowRule):
    name = "shared-state-race"
    description = (
        "A function submitted to a WaveExecutor pool or thread reads and "
        "writes module-level or closure state somewhere in its call tree; "
        "concurrent executions race on it."
    )
    severity = "error"
    example_positive = (
        "import threading\n"
        "COUNTS = {}\n"
        "def tally(key):\n"
        "    COUNTS[key] = COUNTS.get(key, 0) + 1\n"
        "def run(pool):\n"
        "    pool.run_wave(tally, ['a', 'b'])\n"
    )
    example_negative = (
        "def tally(key):\n"
        "    return (key, 1)  # pure: results merged by the caller\n"
        "def run(pool):\n"
        "    pool.run_wave(tally, ['a', 'b'])\n"
    )

    def check_module(self, ctx: DataflowContext) -> Iterable[Finding]:
        tree = ctx.module_model.tree
        if tree is None:
            return []
        findings: List[Finding] = []
        nested_by_fn = {
            fn.qualname: _nested_defs(fn.node) for fn in ctx.functions()
        }
        for fn in ctx.functions():
            nested = nested_by_fn[fn.qualname]
            for kind, call, target in _submission_sites(fn.node):
                findings.extend(
                    self._check_site(ctx, fn, kind, call, target, nested)
                )
        # Module-scope submissions (scripts): resolve globally only.
        for kind, call, target in _submission_sites(tree):
            if any(
                call.lineno >= fn.lineno
                and call.lineno <= _end_line(fn.node)
                for fn in ctx.functions()
            ):
                continue
            findings.extend(self._check_site(ctx, None, kind, call, target, {}))
        return findings

    def _check_site(
        self,
        ctx: DataflowContext,
        fn: Optional[FunctionModel],
        kind: str,
        call: ast.Call,
        target: ast.AST,
        nested: Dict[str, ast.AST],
    ) -> Iterable[Finding]:
        if not isinstance(target, ast.Name):
            return []
        name = target.id
        if fn is not None and name in nested:
            return self._check_closure(ctx, fn, kind, call, name, nested[name])
        resolved = ctx.summaries.calls.resolve_callable(
            ctx.module_model.module, name
        )
        if resolved is None:
            qualified = (
                ctx.module_model.imports.resolve(name)
                if ctx.module_model.imports is not None
                else None
            )
            if qualified is not None:
                resolved = ctx.summaries.calls.resolve_callable(
                    ctx.module_model.module, qualified
                )
        if resolved is None:
            return []
        reached = frozenset({resolved}) | ctx.summaries.calls.reachable(resolved)
        return self._check_reached(ctx, kind, call, name, reached)

    def _check_reached(
        self,
        ctx: DataflowContext,
        kind: str,
        call: ast.Call,
        name: str,
        reached: FrozenSet[str],
    ) -> Iterable[Finding]:
        reads: Dict[str, str] = {}
        writes: Dict[str, str] = {}
        rmw: Dict[str, str] = {}
        for fq in sorted(reached):
            effects = ctx.summaries.global_effects(fq)
            for shared in effects.reads:
                reads.setdefault(shared, fq)
            for shared in effects.writes:
                writes.setdefault(shared, fq)
            for shared in effects.rmw:
                rmw.setdefault(shared, fq)
        racy = sorted(set(rmw) | (set(reads) & set(writes)))
        findings = []
        for shared in racy:
            writer = rmw.get(shared) or writes[shared]
            findings.append(
                self.finding(
                    ctx,
                    call.lineno,
                    f"{kind} '{name}' reads and writes module state "
                    f"'{shared}' (written in {writer}); concurrent "
                    "executions race on it",
                    col=call.col_offset,
                )
            )
        return findings

    def _check_closure(
        self,
        ctx: DataflowContext,
        fn: FunctionModel,
        kind: str,
        call: ast.Call,
        name: str,
        inner: ast.AST,
    ) -> Iterable[Finding]:
        """A nested-def target that writes enclosing-scope state races."""
        inner_locals = _bound_names(inner)
        captured_writes = sorted(
            shared
            for shared in _rmw_names(inner)
            if shared not in inner_locals and shared in fn.local_names()
        )
        return [
            self.finding(
                ctx,
                call.lineno,
                f"{kind} '{name}' mutates captured variable '{shared}' "
                "of its enclosing scope; concurrent executions race on it",
                col=call.col_offset,
            )
            for shared in captured_writes
        ]


def _nested_defs(fn_node: ast.AST) -> Dict[str, ast.AST]:
    nested: Dict[str, ast.AST] = {}
    for node in ast.walk(fn_node):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not fn_node
        ):
            nested[node.name] = node
    return nested


def _bound_names(fn_node: ast.AST) -> Set[str]:
    bound: Set[str] = set()
    args = fn_node.args  # type: ignore[attr-defined]
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        bound.add(arg.arg)
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            # nonlocal-declared names bind the *enclosing* scope.
            bound.add(node.id)
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Nonlocal):
            bound.difference_update(node.names)
    return bound


def _rmw_names(fn_node: ast.AST) -> Set[str]:
    """Names a function read-modify-writes (augassign, mutation, store)."""
    names: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
                and isinstance(func.value, ast.Name)
            ):
                names.add(func.value.id)
        elif isinstance(node, ast.Subscript) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            if isinstance(node.value, ast.Name):
                names.add(node.value.id)
    return names


def _end_line(node: ast.AST) -> int:
    return getattr(node, "end_lineno", None) or node.lineno  # type: ignore[attr-defined]


# -- blocking-call-in-async ----------------------------------------------


@register_dataflow_rule
class BlockingCallInAsync(DataflowRule):
    name = "blocking-call-in-async"
    description = (
        "A blocking call (file/socket I/O, time.sleep, subprocess) is "
        "reachable from an async function without an executor hop; it "
        "stalls the event loop. Route it through asyncio.to_thread or "
        "run_in_executor."
    )
    severity = "error"
    example_positive = (
        "import time\n"
        "async def poll():\n"
        "    time.sleep(1)  # stalls the whole event loop\n"
    )
    example_negative = (
        "import asyncio, time\n"
        "async def poll():\n"
        "    await asyncio.to_thread(time.sleep, 1)\n"
    )

    def check_module(self, ctx: DataflowContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for fn in ctx.functions():
            if not fn.is_async:
                continue
            hit = ctx.summaries.blocking_reachable(fn.fq)
            if hit is None:
                continue
            chain, (blocking_name, blocking_line) = hit
            if not chain:
                findings.append(
                    self.finding(
                        ctx,
                        blocking_line,
                        f"blocking call {blocking_name} inside async "
                        f"function '{fn.qualname}'; use asyncio.to_thread "
                        "or an executor",
                    )
                )
                continue
            line = self._first_hop_line(ctx, fn, chain[0])
            via = " -> ".join(chain)
            findings.append(
                self.finding(
                    ctx,
                    line,
                    f"async function '{fn.qualname}' reaches blocking call "
                    f"{blocking_name} via {via}; hop through "
                    "asyncio.to_thread or an executor",
                )
            )
        return findings

    def _first_hop_line(
        self, ctx: DataflowContext, fn: FunctionModel, first_hop: str
    ) -> int:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                resolved = ctx.summaries.resolve_call(fn, node)
                if resolved == first_hop:
                    return node.lineno
        return fn.lineno


# -- memmap-escape -------------------------------------------------------

_MEMMAP_CALLS = {"numpy.memmap"}
_MEMMAP_NAME_SUFFIXES = ("open_arrays_memmap",)


def _is_memmap_source(
    model: ModuleModel, call: ast.Call
) -> Optional[str]:
    if model.imports is None:
        return None
    qualified = model.imports.qualified(call.func)
    if qualified is None:
        return None
    if qualified in _MEMMAP_CALLS:
        return qualified
    last = qualified.rsplit(".", 1)[-1]
    if last in _MEMMAP_NAME_SUFFIXES:
        return qualified
    if last == "load_lake":
        for keyword in call.keywords:
            if (
                keyword.arg == "materialize"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
            ):
                return f"{qualified}(materialize=False)"
    return None


@register_dataflow_rule
class MemmapEscape(DataflowRule):
    name = "memmap-escape"
    description = (
        "A memmap-backed array view escapes the scope that owns its "
        "backing file — returned or stored from inside the owning 'with', "
        "or captured by a pool task. Once the file is closed or replaced "
        "the view dereferences freed pages."
    )
    severity = "error"
    example_positive = (
        "def load(path):\n"
        "    with open_arrays_memmap(path) as views:\n"
        "        return views  # backing file closes on exit\n"
    )
    example_negative = (
        "def load(path):\n"
        "    with open_arrays_memmap(path) as views:\n"
        "        data = {k: v.copy() for k, v in views.items()}\n"
        "    return data  # materialized before the file closed\n"
    )

    def check_module(self, ctx: DataflowContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for fn in ctx.functions():
            findings.extend(self._check_function(ctx, fn))
        return findings

    def _check_function(
        self, ctx: DataflowContext, fn: FunctionModel
    ) -> Iterable[Finding]:
        model = ctx.module_model
        scoped: Dict[str, str] = {}  # with-as views: name -> source
        plain: Dict[str, str] = {}  # assigned views: name -> source
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if not isinstance(item.context_expr, ast.Call):
                        continue
                    source = _is_memmap_source(model, item.context_expr)
                    if source is None or item.optional_vars is None:
                        continue
                    if isinstance(item.optional_vars, ast.Name):
                        scoped[item.optional_vars.id] = source
            elif isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                source = _is_memmap_source(model, node.value)
                if source is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        plain[target.id] = source
        if not scoped and not plain:
            return []
        # Propagate through pure access chains: `view = lake.weights[k]`
        # is still backed by the mapped file, while a call in between
        # (`.copy()`, `np.array(...)`) materializes and breaks the tie.
        changed = True
        while changed:
            changed = False
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Assign):
                    continue
                root = _access_root(node.value)
                if root is None:
                    continue
                for pool, sources in ((scoped, scoped), (plain, plain)):
                    if root not in sources:
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id not in pool
                        ):
                            pool[target.id] = sources[root]
                            changed = True
        findings: List[Finding] = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                for name in sorted(_names_in(node.value) & set(scoped)):
                    findings.append(
                        self.finding(
                            ctx,
                            node.lineno,
                            f"memmap view '{name}' from "
                            f"{scoped[name]} escapes via return; its "
                            "backing file closes when the 'with' exits",
                        )
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, (ast.Attribute, ast.Subscript)):
                        continue
                    stored = _names_in(node.value) & set(scoped)
                    for name in sorted(stored):
                        findings.append(
                            self.finding(
                                ctx,
                                node.lineno,
                                f"memmap view '{name}' from "
                                f"{scoped[name]} stored into an attribute "
                                "or container that outlives its owning "
                                "'with' scope; the backing file closes "
                                "before the stored view dies",
                            )
                        )
        nested = _nested_defs(fn.node)
        for kind, call, target in _submission_sites(fn.node):
            captured = set()
            for arg in call.args[1:]:
                captured |= _names_in(arg)
            for keyword in call.keywords:
                captured |= _names_in(keyword.value)
            if isinstance(target, ast.Name) and target.id in nested:
                # A nested task closes over views by reference.
                inner = nested[target.id]
                captured |= _names_in(inner) - _bound_names(inner)
            for name in sorted(captured & (set(scoped) | set(plain))):
                source = scoped.get(name) or plain[name]
                findings.append(
                    self.finding(
                        ctx,
                        call.lineno,
                        f"memmap view '{name}' from {source} captured by "
                        f"{kind}; worker lifetime can outlast the backing "
                        "file",
                    )
                )
        return findings


# -- impure-digest-flow --------------------------------------------------


@register_dataflow_rule
class ImpureDigestFlow(DataflowRule):
    name = "impure-digest-flow"
    description = (
        "A nondeterministic value (wall clock, unseeded RNG, environment) "
        "flows into a digest computation; the digest changes across "
        "otherwise-identical runs. The finding carries the def-use chain "
        "from source to sink."
    )
    severity = "error"
    example_positive = (
        "import time\n"
        "from repro.utils.hashing import stable_hash\n"
        "def make_id(payload):\n"
        "    stamp = time.time()\n"
        "    return stable_hash({'payload': payload, 'at': stamp})\n"
    )
    example_negative = (
        "from repro.utils.hashing import stable_hash\n"
        "def make_id(payload):\n"
        "    return stable_hash({'payload': payload})\n"
    )

    def check_module(self, ctx: DataflowContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for fn in ctx.functions():
            run = ctx.summaries.taint_run(fn)
            # A tainted `return stable_hash(...)` hits both the call sink
            # and the digest-named-return sink; keep the call sink.
            seen: Set[Tuple[int, str, int]] = set()
            ordered = sorted(
                run.sink_hits,
                key=lambda h: (h.sink.startswith("return of "), h),
            )
            for hit in ordered:
                if hit.taint.from_param is not None:
                    continue
                key = (hit.line, hit.taint.source, hit.taint.source_line)
                if hit.sink.startswith("return of ") and key in seen:
                    continue
                seen.add(key)
                findings.append(
                    self.finding(
                        ctx,
                        hit.line,
                        f"nondeterministic value reaches digest sink "
                        f"{hit.sink} in '{fn.qualname}': "
                        f"{describe_chain(hit.taint)}",
                    )
                )
        return sorted(set(findings))


# -- resource-leak -------------------------------------------------------

_RESOURCE_CALLS = {
    "open": "file handle",
    "io.open": "file handle",
    "gzip.open": "file handle",
    "bz2.open": "file handle",
    "lzma.open": "file handle",
    "os.fdopen": "file handle",
    "tempfile.TemporaryFile": "temp file",
    "tempfile.NamedTemporaryFile": "temp file",
    "socket.socket": "socket",
    "numpy.memmap": "memmap",
}

_RELEASING_CALLS = {"contextlib.closing", "atexit.register"}
_RELEASING_ATTRS = {"close", "enter_context", "push", "callback"}


def _acquisition(model: ModuleModel, call: ast.Call) -> Optional[str]:
    if model.imports is None:
        return None
    qualified = model.imports.qualified(call.func)
    if qualified is None:
        return None
    if qualified in _RESOURCE_CALLS:
        return qualified
    if qualified.rsplit(".", 1)[-1] in _MEMMAP_NAME_SUFFIXES:
        return qualified
    return None


_Resource = Tuple[str, int, str]  # (name, acq_line, acquired_from)


class _ResourceAnalysis(Analysis):
    """Forward may-analysis: open resources live at each point."""

    direction = "forward"

    def __init__(self, model: ModuleModel):
        self.model = model

    def bottom(self, cfg: CFG) -> FrozenSet[_Resource]:
        return frozenset()

    def join(
        self, left: FrozenSet[_Resource], right: FrozenSet[_Resource]
    ) -> FrozenSet[_Resource]:
        return left | right

    def transfer(
        self, element: Element, fact: FrozenSet[_Resource]
    ) -> FrozenSet[_Resource]:
        node = element.node
        open_now = set(fact)
        if element.kind == KIND_WITH:
            # `with f:` and `with open(...) as f:` both guarantee close.
            for item in node.items:  # type: ignore[attr-defined]
                for name in _names_in(item.context_expr):
                    open_now = {r for r in open_now if r[0] != name}
            return frozenset(open_now)
        if isinstance(node, ast.Raise):
            # Exception paths finalize via GC; stay focused on leaks
            # along normal completion.
            return frozenset()
        value = getattr(node, "value", None)
        transferred: Set[str] = set()
        if isinstance(node, ast.Return) and value is not None:
            # Only a handle returned *directly* (or in a tuple of names)
            # transfers ownership; `return json.load(handle)` returns
            # the parsed data and still leaks the handle.
            transferred = _direct_names(value)
        elif isinstance(node, ast.Expr) and isinstance(
            value, (ast.Yield, ast.YieldFrom, ast.Await)
        ):
            inner = value.value
            if inner is not None:
                transferred = _direct_names(inner)
        for name in transferred:
            open_now = {r for r in open_now if r[0] != name}
        for call in (
            child
            for child in ast.walk(node)
            if isinstance(child, ast.Call)
        ):
            released = self._released_by(call)
            if released:
                open_now = {r for r in open_now if r[0] not in released}
        if isinstance(node, ast.Assign):
            target_names: Set[str] = set()
            stores_away = False
            for target in node.targets:
                if isinstance(target, ast.Name):
                    target_names.add(target.id)
                elif isinstance(target, (ast.Attribute, ast.Subscript)):
                    stores_away = True
            if stores_away:
                # self.f = f / registry[k] = f: ownership moves to the
                # container; its lifecycle owns the close.
                for name in _names_in(node.value):
                    open_now = {r for r in open_now if r[0] != name}
            if target_names:
                open_now = {
                    r for r in open_now if r[0] not in target_names
                }
                if isinstance(node.value, ast.Call):
                    acquired = _acquisition(self.model, node.value)
                    if acquired is not None:
                        for name in sorted(target_names):
                            open_now.add((name, node.lineno, acquired))
        return frozenset(open_now)

    def _released_by(self, call: ast.Call) -> Set[str]:
        func = call.func
        released: Set[str] = set()
        if isinstance(func, ast.Attribute) and func.attr in _RELEASING_ATTRS:
            if func.attr == "close" and isinstance(func.value, ast.Name):
                released.add(func.value.id)
            elif func.attr != "close":
                for arg in call.args:
                    released |= _names_in(arg)
        qualified = (
            self.model.imports.qualified(func)
            if self.model.imports is not None
            else None
        )
        if qualified in _RELEASING_CALLS:
            for arg in call.args:
                released |= _names_in(arg)
        return released


@register_dataflow_rule
class ResourceLeak(DataflowRule):
    name = "resource-leak"
    description = (
        "A file handle, socket, or memmap acquired outside 'with' is not "
        "closed on every control-flow path to the function exit. Paths "
        "that return or store the handle transfer ownership and do not "
        "count as leaks."
    )
    severity = "error"
    example_positive = (
        "def head(path):\n"
        "    f = open(path)\n"
        "    if not path.endswith('.txt'):\n"
        "        return None  # f leaks on this path\n"
        "    data = f.readline()\n"
        "    f.close()\n"
        "    return data\n"
    )
    example_negative = (
        "def head(path):\n"
        "    with open(path) as f:\n"
        "        return f.readline()\n"
    )

    def check_module(self, ctx: DataflowContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for fn in ctx.functions():
            if not any(
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and _acquisition(ctx.module_model, node.value) is not None
                for node in ast.walk(fn.node)
            ):
                continue
            analysis = _ResourceAnalysis(ctx.module_model)
            facts = solve(fn.cfg, analysis)
            at_exit: FrozenSet[_Resource] = facts[fn.cfg.exit][0]  # type: ignore[assignment]
            for name, line, acquired in sorted(at_exit, key=lambda r: (r[1], r[0])):
                findings.append(
                    self.finding(
                        ctx,
                        line,
                        f"{_RESOURCE_CALLS.get(acquired, 'resource')} "
                        f"'{name}' from {acquired}() may never be closed "
                        f"on some path through '{fn.qualname}'; use 'with' "
                        "or close on every path",
                    )
                )
        return findings
