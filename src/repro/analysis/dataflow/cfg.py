"""Per-function control-flow graphs at statement granularity.

A :class:`CFG` is a list of :class:`Block`\\ s, each holding a sequence
of :class:`Element`\\ s — simple statements plus synthesized headers for
compound ones (an ``if`` test, a ``for`` target/iterable, a ``with``
item list, an ``except`` binding).  Splitting headers out this way lets
transfer functions see exactly what each program point defines and uses
without double-walking compound bodies.

Construction covers the constructs the rules care about:

* branches (``if``/``elif``/``else``, ``match``) fork and join;
* loops (``for``/``while``) get a header block with a back edge from
  the body end, ``break``/``continue`` resolve through a loop stack,
  and ``else`` clauses hang off the header's false edge;
* ``try`` bodies edge into every handler from each block the body
  creates (an exception can surface anywhere), ``finally`` interposes
  on both the normal and the abrupt continuations, and ``return`` /
  ``raise`` route through the enclosing ``finally`` chain to the exit;
* ``with`` contributes a header element (context exprs used, ``as``
  targets defined) and an inline body — the *scope* of the context
  manager is an AST property the rules read directly;
* a statement containing a comprehension gets a self edge, modeling the
  implicit loop so loop-carried facts reach a fixpoint.

Edges are conservative: every path the interpreter can take is in the
graph, plus a few it cannot — analyses built on top must tolerate the
extra paths (all the shipped ones use union joins, where a spurious
path can only widen facts, never hide them).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Element",
    "Block",
    "CFG",
    "build_cfg",
    "render_cfg_text",
    "render_cfg_dot",
]

#: Element kinds: how the node should be read by transfer functions.
KIND_STMT = "stmt"  # a simple statement, node is ast.stmt
KIND_TEST = "test"  # a branch/loop condition, node is ast.expr (uses only)
KIND_FOR = "for"  # a for header, node is ast.For / ast.AsyncFor
KIND_WITH = "with"  # a with header, node is ast.With / ast.AsyncWith
KIND_EXCEPT = "except"  # a handler binding, node is ast.ExceptHandler
KIND_MATCH = "match"  # one match case, node is ast.match_case


@dataclass
class Element:
    """One program point inside a block."""

    kind: str
    node: ast.AST

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0)


@dataclass
class Block:
    """A straight-line run of elements with one entry and one exit set."""

    index: int
    label: str
    elements: List[Element] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    def add(self, element: Element) -> None:
        self.elements.append(element)


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, name: str, node: ast.AST):
        self.name = name
        self.node = node
        self.blocks: List[Block] = []
        self.entry = 0
        self.exit = 0

    def new_block(self, label: str) -> Block:
        block = Block(index=len(self.blocks), label=label)
        self.blocks.append(block)
        return block

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    def elements(self) -> Iterator[Tuple[Block, int, Element]]:
        """Every (block, position, element) in block order."""
        for block in self.blocks:
            for position, element in enumerate(block.elements):
                yield block, position, element


# -- def/use extraction ------------------------------------------------


def _target_names(node: ast.AST) -> Iterator[str]:
    """Plain names bound by an assignment target."""
    if isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, (ast.Tuple, ast.List)):
        for elt in node.elts:
            yield from _target_names(elt)
    elif isinstance(node, ast.Starred):
        yield from _target_names(node.value)


def _load_names(node: ast.AST) -> Set[str]:
    return {
        child.id
        for child in ast.walk(node)
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load)
    }


def _pattern_names(pattern: ast.AST) -> Iterator[str]:
    for child in ast.walk(pattern):
        if isinstance(child, (ast.MatchAs, ast.MatchStar)):
            if child.name:
                yield child.name
        elif isinstance(child, ast.MatchMapping) and child.rest:
            yield child.rest


def element_defs(element: Element) -> Set[str]:
    """Names the element binds in the enclosing function scope."""
    node = element.node
    if element.kind == KIND_TEST:
        # Walrus targets bind even inside a condition.
        return {
            child.target.id
            for child in ast.walk(node)
            if isinstance(child, ast.NamedExpr)
            and isinstance(child.target, ast.Name)
        }
    if element.kind == KIND_FOR:
        return set(_target_names(node.target))  # type: ignore[attr-defined]
    if element.kind == KIND_WITH:
        defs: Set[str] = set()
        for item in node.items:  # type: ignore[attr-defined]
            if item.optional_vars is not None:
                defs.update(_target_names(item.optional_vars))
        return defs
    if element.kind == KIND_EXCEPT:
        return {node.name} if node.name else set()  # type: ignore[attr-defined]
    if element.kind == KIND_MATCH:
        return set(_pattern_names(node.pattern))  # type: ignore[attr-defined]
    if isinstance(node, ast.Assign):
        defs = set()
        for target in node.targets:
            defs.update(_target_names(target))
        return defs
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return set(_target_names(node.target))
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return {node.name}
    if isinstance(node, (ast.Import, ast.ImportFrom)):
        return {
            (alias.asname or alias.name.split(".")[0])
            for alias in node.names
            if alias.name != "*"
        }
    return set()


def element_uses(element: Element) -> Set[str]:
    """Names the element reads (over-approximate for nested scopes)."""
    node = element.node
    if element.kind == KIND_TEST:
        return _load_names(node)
    if element.kind == KIND_FOR:
        return _load_names(node.iter)  # type: ignore[attr-defined]
    if element.kind == KIND_WITH:
        uses: Set[str] = set()
        for item in node.items:  # type: ignore[attr-defined]
            uses.update(_load_names(item.context_expr))
        return uses
    if element.kind == KIND_EXCEPT:
        return _load_names(node.type) if node.type else set()  # type: ignore[attr-defined]
    if element.kind == KIND_MATCH:
        guard = node.guard  # type: ignore[attr-defined]
        return _load_names(guard) if guard else set()
    if isinstance(node, ast.AugAssign):
        return _load_names(node.value) | set(_target_names(node.target))
    return _load_names(node)


def _contains_comprehension(node: ast.AST) -> bool:
    return any(
        isinstance(child, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp))
        for child in ast.walk(node)
    )


# -- construction ------------------------------------------------------


class _Builder:
    def __init__(self, cfg: CFG):
        self.cfg = cfg
        #: (continue_target, break_targets) per active loop
        self.loops: List[Tuple[int, List[int]]] = []
        #: entry blocks of active ``finally`` bodies, innermost last
        self.finallies: List[int] = []

    # Abrupt completions (return/raise) route through the innermost
    # finally; the finally's own exit fans out to both continuations.
    def _abrupt_target(self) -> int:
        if self.finallies:
            return self.finallies[-1]
        return self.cfg.exit

    def _append(self, block: Block, element: Element) -> None:
        block.add(element)
        if _contains_comprehension(element.node):
            # The implicit loop: facts computed in one iteration must be
            # able to flow back into the next.
            self.cfg.add_edge(block.index, block.index)

    def body(self, stmts: Sequence[ast.stmt], current: Block) -> Optional[Block]:
        """Thread ``stmts`` from ``current``; None means flow terminated."""
        cursor: Optional[Block] = current
        for stmt in stmts:
            if cursor is None:
                # Unreachable code still gets blocks (so rules can see
                # it), just no incoming edges.
                cursor = self.cfg.new_block("unreachable")
            cursor = self.statement(stmt, cursor)
        return cursor

    def statement(self, stmt: ast.stmt, current: Block) -> Optional[Block]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, current)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._append(current, Element(KIND_STMT, stmt))
            self.cfg.add_edge(current.index, self._abrupt_target())
            return None
        if isinstance(stmt, ast.Break):
            self._append(current, Element(KIND_STMT, stmt))
            if self.loops:
                self.loops[-1][1].append(current.index)
            return None
        if isinstance(stmt, ast.Continue):
            self._append(current, Element(KIND_STMT, stmt))
            if self.loops:
                self.cfg.add_edge(current.index, self.loops[-1][0])
            return None
        self._append(current, Element(KIND_STMT, stmt))
        return current

    def _if(self, stmt: ast.If, current: Block) -> Optional[Block]:
        self._append(current, Element(KIND_TEST, stmt.test))
        join = self.cfg.new_block("join")
        then_block = self.cfg.new_block("then")
        self.cfg.add_edge(current.index, then_block.index)
        then_end = self.body(stmt.body, then_block)
        if then_end is not None:
            self.cfg.add_edge(then_end.index, join.index)
        if stmt.orelse:
            else_block = self.cfg.new_block("else")
            self.cfg.add_edge(current.index, else_block.index)
            else_end = self.body(stmt.orelse, else_block)
            if else_end is not None:
                self.cfg.add_edge(else_end.index, join.index)
        else:
            self.cfg.add_edge(current.index, join.index)
        if not join.preds:
            return None
        return join

    def _loop(
        self,
        header_element: Element,
        body: Sequence[ast.stmt],
        orelse: Sequence[ast.stmt],
        current: Block,
        label: str,
    ) -> Optional[Block]:
        header = self.cfg.new_block(label)
        self.cfg.add_edge(current.index, header.index)
        self._append(header, header_element)
        body_block = self.cfg.new_block("loop-body")
        self.cfg.add_edge(header.index, body_block.index)
        breaks: List[int] = []
        self.loops.append((header.index, breaks))
        body_end = self.body(body, body_block)
        self.loops.pop()
        if body_end is not None:
            self.cfg.add_edge(body_end.index, header.index)
        after = self.cfg.new_block("after-loop")
        if orelse:
            else_block = self.cfg.new_block("loop-else")
            self.cfg.add_edge(header.index, else_block.index)
            else_end = self.body(orelse, else_block)
            if else_end is not None:
                self.cfg.add_edge(else_end.index, after.index)
        else:
            self.cfg.add_edge(header.index, after.index)
        for break_block in breaks:
            self.cfg.add_edge(break_block, after.index)
        if not after.preds:
            return None
        return after

    def _while(self, stmt: ast.While, current: Block) -> Optional[Block]:
        return self._loop(
            Element(KIND_TEST, stmt.test), stmt.body, stmt.orelse, current, "while"
        )

    def _for(self, stmt, current: Block) -> Optional[Block]:
        return self._loop(
            Element(KIND_FOR, stmt), stmt.body, stmt.orelse, current, "for"
        )

    def _with(self, stmt, current: Block) -> Optional[Block]:
        self._append(current, Element(KIND_WITH, stmt))
        return self.body(stmt.body, current)

    def _try(self, stmt: ast.Try, current: Block) -> Optional[Block]:
        after = self.cfg.new_block("after-try")
        fin_entry: Optional[Block] = None
        if stmt.finalbody:
            fin_entry = self.cfg.new_block("finally")
            self.finallies.append(fin_entry.index)
        body_block = self.cfg.new_block("try")
        self.cfg.add_edge(current.index, body_block.index)
        first_body_index = body_block.index
        body_end = self.body(stmt.body, body_block)
        last_body_index = len(self.cfg.blocks) - 1
        if stmt.orelse and body_end is not None:
            else_block = self.cfg.new_block("try-else")
            self.cfg.add_edge(body_end.index, else_block.index)
            body_end = self.body(stmt.orelse, else_block)
        normal_target = fin_entry if fin_entry is not None else after
        if body_end is not None:
            self.cfg.add_edge(body_end.index, normal_target.index)
        for handler in stmt.handlers:
            handler_block = self.cfg.new_block("except")
            self._append(handler_block, Element(KIND_EXCEPT, handler))
            # An exception can surface at any point of the body: edge
            # from the pre-try state and every body block.
            self.cfg.add_edge(current.index, handler_block.index)
            for index in range(first_body_index, last_body_index + 1):
                self.cfg.add_edge(index, handler_block.index)
            handler_end = self.body(handler.body, handler_block)
            if handler_end is not None:
                self.cfg.add_edge(handler_end.index, normal_target.index)
        if fin_entry is not None:
            self.finallies.pop()
            # An unhandled exception also reaches finally directly.
            self.cfg.add_edge(current.index, fin_entry.index)
            for index in range(first_body_index, last_body_index + 1):
                if index != fin_entry.index:
                    self.cfg.add_edge(index, fin_entry.index)
            fin_end = self.body(stmt.finalbody, fin_entry)
            if fin_end is None:
                return None
            # The finally's exit continues both normally and abruptly
            # (re-raising / propagating a pending return).
            self.cfg.add_edge(fin_end.index, after.index)
            abrupt = (
                self.finallies[-1] if self.finallies else self.cfg.exit
            )
            self.cfg.add_edge(fin_end.index, abrupt)
        if not after.preds:
            return None
        return after

    def _match(self, stmt: ast.Match, current: Block) -> Optional[Block]:
        self._append(current, Element(KIND_TEST, stmt.subject))
        join = self.cfg.new_block("after-match")
        for case in stmt.cases:
            case_block = self.cfg.new_block("case")
            self._append(case_block, Element(KIND_MATCH, case))
            self.cfg.add_edge(current.index, case_block.index)
            case_end = self.body(case.body, case_block)
            if case_end is not None:
                self.cfg.add_edge(case_end.index, join.index)
        # No case may match.
        self.cfg.add_edge(current.index, join.index)
        return join


def build_cfg(node: ast.AST, name: str = "") -> CFG:
    """Build the CFG of one function (or lambda) definition."""
    cfg = CFG(name or getattr(node, "name", "<lambda>"), node)
    entry = cfg.new_block("entry")
    exit_block = cfg.new_block("exit")
    cfg.entry = entry.index
    cfg.exit = exit_block.index
    builder = _Builder(cfg)
    if isinstance(node, ast.Lambda):
        first = cfg.new_block("body")
        cfg.add_edge(entry.index, first.index)
        first.add(Element(KIND_TEST, node.body))
        cfg.add_edge(first.index, exit_block.index)
        return cfg
    first = cfg.new_block("body")
    cfg.add_edge(entry.index, first.index)
    end = builder.body(node.body, first)  # type: ignore[attr-defined]
    if end is not None:
        cfg.add_edge(end.index, exit_block.index)
    return cfg


# -- rendering ---------------------------------------------------------


def _element_summary(element: Element, width: int = 48) -> str:
    node = element.node
    if element.kind == KIND_FOR:
        text = f"for {ast.unparse(node.target)} in {ast.unparse(node.iter)}"  # type: ignore[attr-defined]
    elif element.kind == KIND_WITH:
        items = ", ".join(
            ast.unparse(item.context_expr) for item in node.items  # type: ignore[attr-defined]
        )
        text = f"with {items}"
    elif element.kind == KIND_EXCEPT:
        kind = ast.unparse(node.type) if node.type else ""  # type: ignore[attr-defined]
        text = f"except {kind}".rstrip()
    elif element.kind == KIND_MATCH:
        text = f"case {ast.unparse(node.pattern)}"  # type: ignore[attr-defined]
    else:
        try:
            text = ast.unparse(node)
        except ValueError:
            text = type(node).__name__
    text = " ".join(text.split())
    if len(text) > width:
        text = text[: width - 3] + "..."
    return f"{element.lineno}: {text}"


def render_cfg_text(cfg: CFG) -> str:
    """Readable block listing with edges, for terminals and tests."""
    lines = [f"cfg {cfg.name} ({len(cfg.blocks)} blocks)"]
    for block in cfg.blocks:
        succs = ", ".join(str(s) for s in block.succs) or "-"
        lines.append(f"  B{block.index} [{block.label}] -> {succs}")
        for element in block.elements:
            lines.append(f"    {_element_summary(element)}")
    return "\n".join(lines)


def render_cfg_dot(cfg: CFG) -> str:
    """Graphviz dot rendering of one function's CFG."""
    lines = [
        "digraph cfg {",
        "  rankdir=TB;",
        '  node [shape=box, fontname="monospace", fontsize=10];',
        f'  label="{cfg.name}";',
    ]
    for block in cfg.blocks:
        rows = [f"B{block.index} [{block.label}]"] + [
            _element_summary(element) for element in block.elements
        ]
        text = "\\l".join(row.replace('"', "'") for row in rows) + "\\l"
        lines.append(f'  b{block.index} [label="{text}"];')
    for block in cfg.blocks:
        for succ in block.succs:
            lines.append(f"  b{block.index} -> b{succ};")
    lines.append("}")
    return "\n".join(lines)
