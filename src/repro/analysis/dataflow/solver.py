"""A generic worklist fixpoint solver over function CFGs.

An :class:`Analysis` declares a direction, a bottom fact, a join, and a
per-element transfer function; :func:`solve` iterates blocks to a
fixpoint.  Facts must be hashable values forming a finite join
semilattice under :meth:`Analysis.join` — the solver requires
monotonicity from transfer functions but does not check it (a
non-monotone transfer simply may not terminate, which is why the solver
also carries an iteration guard).

Two classic instances ship here because every rule needs one of them:

* :class:`ReachingDefinitions` (forward) — which assignments may reach
  each program point; the substrate for def-use chains.
* :class:`Liveness` (backward) — which names may still be read later;
  the substrate for dead-store and escape reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from repro.analysis.dataflow.cfg import (
    CFG,
    Block,
    Element,
    element_defs,
    element_uses,
)

__all__ = [
    "Analysis",
    "solve",
    "Definition",
    "ReachingDefinitions",
    "Liveness",
]

#: Hard cap on solver sweeps; a finite lattice converges in
#: O(blocks * lattice height), so hitting this means a broken transfer.
MAX_SWEEPS = 1000


class Analysis:
    """One dataflow problem: direction, lattice bottom, join, transfer."""

    direction: str = "forward"  # "forward" | "backward"

    def bottom(self, cfg: CFG):
        """The no-information fact blocks start from."""
        raise NotImplementedError

    def boundary(self, cfg: CFG):
        """The fact entering the entry block (exit block if backward)."""
        return self.bottom(cfg)

    def join(self, left, right):
        """Merge facts arriving over two edges."""
        raise NotImplementedError

    def transfer(self, element: Element, fact):
        """Fact after (before, if backward) one element."""
        raise NotImplementedError

    # -- derived ------------------------------------------------------
    def transfer_block(self, block: Block, fact):
        elements = (
            block.elements
            if self.direction == "forward"
            else reversed(block.elements)
        )
        for element in elements:
            fact = self.transfer(element, fact)
        return fact


def solve(cfg: CFG, analysis: Analysis) -> Dict[int, Tuple[object, object]]:
    """Fixpoint facts per block: ``{block_index: (fact_in, fact_out)}``.

    For a backward analysis ``fact_in`` is the fact at block *exit* (the
    input to its transfer) and ``fact_out`` the fact at block entry.
    """
    forward = analysis.direction == "forward"
    boundary_block = cfg.entry if forward else cfg.exit

    def sources(block: Block):
        return block.preds if forward else block.succs

    facts_in: Dict[int, object] = {}
    facts_out: Dict[int, object] = {}
    for block in cfg.blocks:
        facts_in[block.index] = analysis.bottom(cfg)
        facts_out[block.index] = analysis.bottom(cfg)
    facts_in[boundary_block] = analysis.boundary(cfg)
    facts_out[boundary_block] = analysis.transfer_block(
        cfg.blocks[boundary_block], facts_in[boundary_block]
    )

    pending = list(range(len(cfg.blocks)))
    if not forward:
        pending.reverse()
    queued = set(pending)
    sweeps = 0
    while pending:
        sweeps += 1
        if sweeps > MAX_SWEEPS * max(1, len(cfg.blocks)):
            raise RuntimeError(
                f"dataflow solver did not converge on {cfg.name}; "
                "non-monotone transfer function?"
            )
        index = pending.pop(0)
        queued.discard(index)
        block = cfg.blocks[index]
        incoming = analysis.bottom(cfg)
        if index == boundary_block:
            incoming = analysis.boundary(cfg)
        for source in sources(block):
            incoming = analysis.join(incoming, facts_out[source])
        outgoing = analysis.transfer_block(block, incoming)
        facts_in[index] = incoming
        if outgoing != facts_out[index]:
            facts_out[index] = outgoing
            targets = block.succs if forward else block.preds
            for target in targets:
                if target not in queued:
                    pending.append(target)
                    queued.add(target)
    return {
        index: (facts_in[index], facts_out[index])
        for index in range(len(cfg.blocks))
    }


# -- reaching definitions ----------------------------------------------


@dataclass(frozen=True, order=True)
class Definition:
    """One binding of a name at a program point."""

    name: str
    line: int
    block: int
    position: int  # element index within the block


class ReachingDefinitions(Analysis):
    """Which definitions of each name may reach a program point.

    Facts are frozensets of :class:`Definition`; an element kills every
    reaching definition of the names it binds and generates its own.
    """

    direction = "forward"

    def __init__(self, cfg: CFG):
        self._positions: Dict[int, Dict[int, int]] = {}
        for block in cfg.blocks:
            self._positions[block.index] = {
                id(element): position
                for position, element in enumerate(block.elements)
            }
        self._owner: Dict[int, int] = {}
        for block in cfg.blocks:
            for element in block.elements:
                self._owner[id(element)] = block.index

    def bottom(self, cfg: CFG) -> FrozenSet[Definition]:
        return frozenset()

    def boundary(self, cfg: CFG) -> FrozenSet[Definition]:
        """Parameters count as definitions made at the ``def`` line."""
        args = getattr(cfg.node, "args", None)
        if args is None:
            return frozenset()
        names = [
            arg.arg
            for arg in (
                list(args.posonlyargs) + list(args.args)
                + ([args.vararg] if args.vararg else [])
                + list(args.kwonlyargs)
                + ([args.kwarg] if args.kwarg else [])
            )
        ]
        line = getattr(cfg.node, "lineno", 0)
        return frozenset(
            Definition(name=name, line=line, block=cfg.entry, position=-1)
            for name in names
        )

    def join(
        self, left: FrozenSet[Definition], right: FrozenSet[Definition]
    ) -> FrozenSet[Definition]:
        return left | right

    def transfer(
        self, element: Element, fact: FrozenSet[Definition]
    ) -> FrozenSet[Definition]:
        defined = element_defs(element)
        if not defined:
            return fact
        block = self._owner[id(element)]
        position = self._positions[block][id(element)]
        survivors = {d for d in fact if d.name not in defined}
        for name in defined:
            survivors.add(
                Definition(
                    name=name, line=element.lineno, block=block, position=position
                )
            )
        return frozenset(survivors)

    # -- queries ------------------------------------------------------
    @staticmethod
    def at_element(
        cfg: CFG,
        facts: Dict[int, Tuple[object, object]],
        analysis: "ReachingDefinitions",
        block: Block,
        position: int,
    ) -> FrozenSet[Definition]:
        """Definitions reaching just *before* ``block.elements[position]``."""
        fact = facts[block.index][0]
        for element in block.elements[:position]:
            fact = analysis.transfer(element, fact)
        return fact  # type: ignore[return-value]


class Liveness(Analysis):
    """Which names may still be read on some path to the exit."""

    direction = "backward"

    def bottom(self, cfg: CFG) -> FrozenSet[str]:
        return frozenset()

    def join(
        self, left: FrozenSet[str], right: FrozenSet[str]
    ) -> FrozenSet[str]:
        return left | right

    def transfer(self, element: Element, fact: FrozenSet[str]) -> FrozenSet[str]:
        return (fact - element_defs(element)) | element_uses(element)


def solve_reaching(cfg: CFG) -> Tuple[
    ReachingDefinitions, Dict[int, Tuple[object, object]]
]:
    """Convenience: instantiate and solve reaching definitions."""
    analysis = ReachingDefinitions(cfg)
    return analysis, solve(cfg, analysis)


def solve_liveness(cfg: CFG) -> Dict[int, Tuple[object, object]]:
    """Convenience: solve liveness; facts are per-block (exit, entry)."""
    return solve(cfg, Liveness())
