"""Per-file result cache keyed on content hash + rule-set fingerprint.

Lint results for a file depend only on (a) the file's bytes — pragmas
included — and (b) the active rule set.  The cache therefore stores the
post-pragma findings of every file under its content digest, guarded by
:func:`repro.analysis.core.rules_fingerprint`; touching a rule (version
bump) or a file invalidates exactly the affected entries.  Baseline
suppression is *not* cached: it is applied at report time so editing
``.repro-lint.json`` never requires a re-lint.

The cache is a single JSON file, written atomically (tmp + rename) so a
killed run never leaves a truncated cache behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional

from repro.analysis.core import Finding
from repro.utils.hashing import text_digest

__all__ = ["FindingsCache", "DEFAULT_CACHE_NAME", "content_digest"]

DEFAULT_CACHE_NAME = ".repro-lint-cache.json"
_FORMAT_VERSION = 1


def content_digest(source: str) -> str:
    return text_digest(source, length=32)


class FindingsCache:
    """Load-once, save-once cache of per-file findings."""

    def __init__(self, path: Optional[str], fingerprint: str):
        self.path = path
        self.fingerprint = fingerprint
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._files: Dict[str, Dict[str, object]] = {}
        if path is not None:
            self._files = self._load(path, fingerprint)

    @staticmethod
    def _load(path: str, fingerprint: str) -> Dict[str, Dict[str, object]]:
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, ValueError):
            return {}
        if (
            payload.get("version") != _FORMAT_VERSION
            or payload.get("fingerprint") != fingerprint
        ):
            return {}
        files = payload.get("files", {})
        return files if isinstance(files, dict) else {}

    # ------------------------------------------------------------------
    def get(self, rel_path: str, digest: str) -> Optional[List[Finding]]:
        """Cached findings for a file at this exact content, or ``None``."""
        entry = self._files.get(rel_path)
        if entry is None or entry.get("digest") != digest:
            self.misses += 1
            return None
        self.hits += 1
        return [Finding.from_dict(raw) for raw in entry.get("findings", [])]

    def put(self, rel_path: str, digest: str, findings: List[Finding]) -> None:
        self._files[rel_path] = {
            "digest": digest,
            "findings": [finding.to_dict() for finding in findings],
        }
        self._dirty = True

    def save(self) -> None:
        """Atomically persist the cache (no-op when pathless or clean)."""
        if self.path is None or not self._dirty:
            return
        payload = {
            "version": _FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "files": self._files,
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        descriptor, tmp_path = tempfile.mkstemp(
            prefix=".repro-lint-cache.", dir=directory
        )
        try:
            with os.fdopen(descriptor, "w") as handle:
                json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
            os.replace(tmp_path, self.path)
        except OSError:
            # A cache that cannot be written must not fail the lint.
            try:
                os.unlink(tmp_path)
            except OSError:  # repro: noqa[swallowed-exception]
                pass
        else:
            self._dirty = False
