"""Rendering of lint results: human text and stable machine JSON.

The JSON form is byte-stable for a given tree + rule set (findings are
position-sorted, keys are sorted, no timestamps), so CI can diff two
reports and tooling can cache on them.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.runner import LintResult

__all__ = ["render_text", "render_json"]

_REPORT_VERSION = 1


def render_text(result: LintResult, verbose: bool = False) -> str:
    """One ``path:line:col [rule] message`` line per finding + summary."""
    lines: List[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.location()}: [{finding.rule}] "
            f"{finding.severity}: {finding.message}"
        )
    for entry in result.unused_baseline:
        lines.append(
            f"{entry.path}: [baseline] stale suppression for "
            f"{entry.rule!r} matches nothing (reason was: {entry.reason})"
        )
    for entry in result.todo_baseline:
        lines.append(
            f"{entry.path}: [baseline] suppression for {entry.rule!r} "
            f"still has a placeholder reason ({entry.reason}); justify "
            "it or fix the finding"
        )
    if verbose:
        for finding in result.baseline_suppressed:
            lines.append(
                f"{finding.location()}: [{finding.rule}] suppressed by baseline"
            )
    lines.append(
        f"{result.files_scanned} files, "
        f"{len(result.errors)} errors, {len(result.warnings)} warnings, "
        f"{len(result.baseline_suppressed)} baselined, "
        f"{len(result.unused_baseline)} stale baseline entries "
        f"(cache {result.cache_hits} hits / {result.cache_misses} misses, "
        f"{result.elapsed_seconds:.2f}s)"
    )
    if result.todo_baseline:
        lines.append(
            f"baseline: {len(result.todo_baseline)} entr"
            f"{'y' if len(result.todo_baseline) == 1 else 'ies'} awaiting "
            "a reason (strict runs fail until justified)"
        )
    if result.graph_enabled:
        lines.append(
            f"graph: {result.graph_modules} modules, "
            f"{result.graph_edges} edges, {result.graph_cycles} cycles, "
            f"{result.graph_files_reanalyzed} re-analyzed "
            f"(cache {result.graph_cache_hits} hits / "
            f"{result.graph_cache_misses} misses, "
            f"{result.graph_seconds:.2f}s)"
        )
    if result.dataflow_enabled:
        lines.append(
            f"dataflow: {result.dataflow_modules} modules, "
            f"{result.dataflow_functions} functions, "
            f"{result.dataflow_files_reanalyzed} re-analyzed "
            f"(cache {result.dataflow_cache_hits} hits / "
            f"{result.dataflow_cache_misses} misses, "
            f"{result.dataflow_seconds:.2f}s)"
        )
    if result.perf_enabled:
        lines.append(
            f"perf: {result.perf_modules} modules, "
            f"{result.perf_functions} functions, "
            f"{result.perf_files_reanalyzed} re-analyzed "
            f"(cache {result.perf_cache_hits} hits / "
            f"{result.perf_cache_misses} misses, "
            f"{result.perf_seconds:.2f}s)"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable JSON document describing the sweep."""
    payload: Dict[str, object] = {
        "version": _REPORT_VERSION,
        "findings": [finding.to_dict() for finding in result.findings],
        "baseline_suppressed": [
            finding.to_dict() for finding in result.baseline_suppressed
        ],
        "unused_baseline": [
            entry.to_dict() for entry in result.unused_baseline
        ],
        "todo_baseline": [
            entry.to_dict() for entry in result.todo_baseline
        ],
        "summary": {
            "files_scanned": result.files_scanned,
            "errors": len(result.errors),
            "warnings": len(result.warnings),
            "baseline_suppressed": len(result.baseline_suppressed),
            "unused_baseline": len(result.unused_baseline),
            "todo_baseline": len(result.todo_baseline),
            "cache_hits": result.cache_hits,
            "cache_misses": result.cache_misses,
        },
    }
    if result.graph_enabled:
        payload["graph"] = {
            "modules": result.graph_modules,
            "edges": result.graph_edges,
            "cycles": result.graph_cycles,
            "files_reanalyzed": result.graph_files_reanalyzed,
            "cache_hits": result.graph_cache_hits,
            "cache_misses": result.graph_cache_misses,
            "fingerprint": result.graph_fingerprint,
        }
    if result.dataflow_enabled:
        payload["dataflow"] = {
            "modules": result.dataflow_modules,
            "functions": result.dataflow_functions,
            "files_reanalyzed": result.dataflow_files_reanalyzed,
            "cache_hits": result.dataflow_cache_hits,
            "cache_misses": result.dataflow_cache_misses,
            "fingerprint": result.dataflow_fingerprint,
        }
    if result.perf_enabled:
        payload["perf"] = {
            "modules": result.perf_modules,
            "functions": result.perf_functions,
            "files_reanalyzed": result.perf_files_reanalyzed,
            "cache_hits": result.perf_cache_hits,
            "cache_misses": result.perf_cache_misses,
            "fingerprint": result.perf_fingerprint,
        }
    return json.dumps(payload, indent=2, sort_keys=True)
