"""Core types of the static-analysis framework.

A *rule* inspects one parsed file (a :class:`FileContext`) and yields
:class:`Finding` objects.  Rules register themselves into a process-wide
registry via the :func:`register` decorator, which is what makes the
framework pluggable: dropping a new module under
``repro.analysis.rules`` and decorating its class is all it takes for
``repro lint`` to pick the rule up.

The registry also exposes a :func:`rules_fingerprint` — a stable digest
of every registered rule's name and version — which keys the on-disk
result cache, so editing or adding a rule invalidates cached findings
without any manual cache flush.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.utils.hashing import stable_hash

__all__ = [
    "Finding",
    "FileContext",
    "ImportMap",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "rule_names",
    "rules_fingerprint",
]

#: Paths (relative to the lint root, posix-style) that carry roles.
LIBRARY_PREFIX = "src/repro/"
CLI_SUFFIX = "repro/cli.py"


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule violated at a position in a file."""

    path: str  # lint-root-relative, posix separators
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"  # "error" | "warning"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            rule=str(payload["rule"]),
            message=str(payload["message"]),
            severity=str(payload.get("severity", "error")),
        )

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


class ImportMap:
    """Resolution of local names to canonical dotted module paths.

    Built once per file from its import statements::

        import numpy as np            ->  np        => numpy
        import logging as _logging    ->  _logging  => logging
        from repro.obs import tracing ->  tracing   => repro.obs.tracing
        from repro.obs.tracing import trace
                                      ->  trace     => repro.obs.tracing.trace

    :meth:`qualified` then rewrites a ``Name``/``Attribute`` call target
    into its canonical dotted form (``np.random.default_rng`` becomes
    ``numpy.random.default_rng``), which is what lets rules match on
    module identity rather than on whatever alias a file happens to use.
    """

    def __init__(self, tree: ast.AST):
        self._names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self._names[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._names[local] = f"{node.module}.{alias.name}"

    def resolve(self, name: str) -> Optional[str]:
        return self._names.get(name)

    def qualified(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a call target, or ``None``.

        ``None`` means the chain is rooted in something that is not a
        plain name (``self.x.y``, a call result, a subscript), where no
        static resolution is possible.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self._names.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))


@dataclass
class FileContext:
    """Everything a rule may inspect about one file."""

    rel_path: str  # posix, relative to the lint root
    source: str
    tree: ast.Module
    imports: ImportMap = field(init=False)

    def __post_init__(self) -> None:
        self.imports = ImportMap(self.tree)

    # -- role flags ----------------------------------------------------
    @property
    def is_library(self) -> bool:
        return self.rel_path.startswith(LIBRARY_PREFIX)

    @property
    def is_cli(self) -> bool:
        return self.rel_path.endswith(CLI_SUFFIX)

    @property
    def is_test(self) -> bool:
        return self.rel_path.startswith("tests/")

    @property
    def is_benchmark(self) -> bool:
        return self.rel_path.startswith("benchmarks/")


class Rule:
    """Base class for one invariant check.

    Subclasses set ``name`` (kebab-case, the id used in pragmas and the
    baseline), ``description``, ``severity``, and bump ``version``
    whenever their behavior changes so cached findings invalidate.
    ``baseline_exempt`` rules cannot be suppressed by the baseline
    ledger — their findings always surface (reserved for invariants
    where grandfathering a violation would defeat the rule, e.g. crash
    safety of artifact writes).
    """

    name: str = ""
    description: str = ""
    severity: str = "error"
    version: int = 1
    baseline_exempt: bool = False
    #: Minimal sources for ``repro lint --explain``: one that fires the
    #: rule, one nearby shape that stays silent.
    example_positive: str = ""
    example_negative: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule inspects ``ctx`` at all (path scoping)."""
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        severity: Optional[str] = None,
    ) -> Finding:
        return Finding(
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.name,
            message=message,
            severity=severity or self.severity,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one instance of ``cls`` to the registry."""
    instance = cls()
    if not instance.name:
        raise ValueError(f"rule class {cls.__name__} has no name")
    if instance.name in _REGISTRY:
        raise ValueError(f"duplicate rule name: {instance.name}")
    _REGISTRY[instance.name] = instance
    return cls


def _ensure_loaded() -> None:
    # Importing the rules package runs every @register decorator.
    from repro.analysis import rules  # noqa: F401


def all_rules() -> List[Rule]:
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_rule(name: str) -> Rule:
    _ensure_loaded()
    return _REGISTRY[name]


def rule_names() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def rules_fingerprint() -> str:
    """Digest of the active rule set; keys the findings cache."""
    _ensure_loaded()
    payload = [
        (rule.name, rule.version, rule.severity, rule.baseline_exempt)
        for rule in all_rules()
    ]
    return stable_hash(payload)
