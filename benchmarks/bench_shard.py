"""Sharded-lake scaling benchmark: out-of-core reads and shard-parallel fsck.

Measures the perf claims of the sharded, memmap-backed weight store and
records them on the perf trajectory (``benchmarks/results/trajectory/``,
via :mod:`repro.obs.timeseries`):

1. **Flat peak RSS under mmap** — a child process per (lake size, read
   mode) loads a saved lake and runs a weight-space search over every
   model, then reports its own ``ru_maxrss``.  With lazy mmap-backed
   reads the peak stays ~flat as the lake grows 10x; with
   ``materialize=True`` (every blob resident) it grows linearly.  The
   full run hard-asserts the acceptance bound: mmap peak over the
   largest lake <= 1.5x the smallest, while resident peak scales with
   the model count.
2. **Layout parity** — the same lake saved ``sharded=True`` and
   ``sharded=False`` must be digest-for-digest identical (same manifest
   body digest, same weight digests); sharding is physics, not schema.
3. **Shard-parallel fsck** — wall time of ``fsck_lake`` at ``workers=1``
   versus ``workers=N`` over the largest sharded lake.

Usage::

    python benchmarks/bench_shard.py            # full run (1k/5k/10k models)
    python benchmarks/bench_shard.py --smoke    # quick CI gate (tiny lakes)

Smoke runs are read-only gates with relaxed RSS assertions (at tiny
sizes the interpreter baseline dominates and the ratio measures noise);
full runs append to the trajectory (``--record`` forces recording for
smoke too).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.lake import ModelLake, load_lake, save_lake  # noqa: E402
from repro.nn.models import build_model  # noqa: E402
from repro.obs.timeseries import BenchResult, append_result  # noqa: E402
from repro.reliability.fsck import fsck_lake  # noqa: E402

DEFAULT_RESULTS = os.path.join(REPO_ROOT, "benchmarks", "results")

#: Lake sizes (model counts) per mode.  Full mode spans the 10x growth
#: the acceptance criterion gates; smoke keeps CI under a few seconds.
SIZES_FULL = (1000, 5000, 10000)
SIZES_SMOKE = (32, 128)

#: Synthetic model shape: ~18KB of float64 weights per model, so the
#: largest full lake carries ~180MB of blobs — enough for resident
#: growth to dwarf interpreter-baseline noise.
MODEL_SPEC = {
    "family": "mlp_classifier",
    "in_features": 32,
    "num_classes": 8,
    "hidden": [56],
}

#: Acceptance bound (full mode): total process peak RSS of the mmap
#: search over the largest lake, relative to the smallest.  Raw peaks —
#: not baseline-subtracted — because flatness is a claim about what the
#: user's process actually consumes; the residual growth is the O(n)
#: record catalog (manifest metadata), which stays resident by design.
MMAP_FLAT_BOUND = 1.5

#: Full-mode floor for the resident-mode growth over a 10x model-count
#: spread, measured on baseline-subtracted deltas (growth attribution
#: needs the constant interpreter footprint removed).  The ideal is
#: ~10x; >=5x proves linearity without flaking on allocator slack.
RESIDENT_GROWTH_FLOOR = 5.0

#: At the largest size, materializing must cost several times the mmap
#: working set — the direct evidence that weights stayed out of core.
RESIDENT_VS_MMAP_FLOOR = 4.0


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_synthetic_lake(num_models: int, seed: int = 11) -> ModelLake:
    """A lake of ``num_models`` same-architecture models, deterministic
    per-model weight perturbations (so every blob has a unique digest)."""
    rng = np.random.default_rng(seed)
    template = build_model(MODEL_SPEC, seed=seed)
    base_state = template.state_dict()
    lake = ModelLake()
    for i in range(num_models):
        state = {
            key: value + rng.normal(scale=0.01, size=value.shape)
            for key, value in base_state.items()
        }
        template.load_state_dict(state)
        lake.add_model(template, name=f"synth-{i:05d}")
    return lake


# ----------------------------------------------------------------------
# Child-process RSS probe
# ----------------------------------------------------------------------
def _peak_rss_kb() -> int:
    """This process's true peak RSS in KB.

    ``getrusage`` is unusable here: on Linux the forked child inherits
    the parent's RSS high-water mark, so every probe would report the
    bench driver's footprint.  ``VmHWM`` is per-``mm`` and resets on
    exec, which is exactly the isolation the measurement needs.
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    import resource  # non-Linux fallback (maxrss is KB on Linux anyway)

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _child_rss(mode: str, directory: str) -> int:
    """Run one measurement inside *this* process and return peak RSS (KB).

    ``baseline`` imports everything and loads nothing; ``mmap`` loads
    lazily; ``resident`` materializes every blob.  Both load modes then
    run a weight-space search across the whole lake: embed every model,
    build a flat index, query it — the read pattern §5's out-of-core
    claim is about.
    """
    from repro.index.embedders import WeightStatEmbedder
    from repro.index.flat import FlatIndex

    if mode != "baseline":
        lake = load_lake(directory, materialize=(mode == "resident"))
        embedder = WeightStatEmbedder()
        ids, vectors = [], []
        for record in lake:
            model = lake.get_model(record.model_id, force=True)
            ids.append(record.model_id)
            vectors.append(embedder.embed(model))
        index = FlatIndex()
        index.build(ids, np.stack(vectors))
        index.query(vectors[0], k=5)
    return _peak_rss_kb()


def _measure_rss(mode: str, directory: str) -> int:
    """Peak RSS (KB) of a fresh child running ``_child_rss(mode, dir)``."""
    output = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--child", mode,
         "--dir", directory],
        check=True, capture_output=True, text=True,
    ).stdout
    return int(output.strip().splitlines()[-1])


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------
def bench_layout_parity(root: str, num_models: int) -> dict:
    """Save one lake both ways; the layouts must agree digest-for-digest."""
    lake = build_synthetic_lake(num_models)
    flat_dir = os.path.join(root, "parity-flat")
    shard_dir = os.path.join(root, "parity-sharded")
    start = time.perf_counter()
    save_lake(lake, flat_dir, sharded=False)
    flat_seconds = time.perf_counter() - start
    start = time.perf_counter()
    save_lake(lake, shard_dir, sharded=True)
    sharded_seconds = time.perf_counter() - start

    manifests = []
    for directory in (flat_dir, shard_dir):
        with open(os.path.join(directory, "manifest.json")) as fh:
            manifests.append(json.load(fh))
    identical = (
        manifests[0]["integrity"]["manifest_digest"]
        == manifests[1]["integrity"]["manifest_digest"]
    )
    return {
        "models": num_models,
        "save_flat_seconds": round(flat_seconds, 3),
        "save_sharded_seconds": round(sharded_seconds, 3),
        "manifest_digest_identical": identical,
    }


def bench_rss(root: str, sizes: tuple) -> dict:
    """Peak RSS per (size, read mode): raw process peaks plus
    baseline-subtracted deltas, both in KB."""
    baseline = _measure_rss("baseline", "")
    directories = {}
    for size in sizes:
        directory = os.path.join(root, f"lake-{size}")
        save_lake(build_synthetic_lake(size), directory, sharded=True)
        directories[size] = directory

    peaks = {"mmap": {}, "resident": {}}
    deltas = {"mmap": {}, "resident": {}}
    for mode in ("mmap", "resident"):
        for size in sizes:
            peak = _measure_rss(mode, directories[size])
            peaks[mode][size] = peak
            deltas[mode][size] = max(peak - baseline, 1)
            print(
                f"[bench_shard] rss: {mode} n={size} peak={peak}KB "
                f"delta={deltas[mode][size]}KB"
            )
    small, large = sizes[0], sizes[-1]
    return {
        "baseline_kb": baseline,
        "models_small": small,
        "models_large": large,
        "mmap_peak_small_kb": peaks["mmap"][small],
        "mmap_peak_large_kb": peaks["mmap"][large],
        "mmap_peak_ratio": round(
            peaks["mmap"][large] / peaks["mmap"][small], 2
        ),
        "mmap_delta_large_kb": deltas["mmap"][large],
        "resident_delta_small_kb": deltas["resident"][small],
        "resident_delta_large_kb": deltas["resident"][large],
        "resident_growth": round(
            deltas["resident"][large] / deltas["resident"][small], 2
        ),
        "resident_vs_mmap": round(
            deltas["resident"][large] / deltas["mmap"][large], 2
        ),
        "_largest_dir": directories[large],
    }


def bench_fsck(directory: str, workers: int) -> dict:
    start = time.perf_counter()
    report = fsck_lake(directory, workers=1)
    sequential = time.perf_counter() - start
    start = time.perf_counter()
    parallel_report = fsck_lake(directory, workers=workers)
    parallel = time.perf_counter() - start
    return {
        "clean": report.clean and parallel_report.clean,
        "files_scanned": report.files_scanned,
        "sequential_seconds": round(sequential, 3),
        "workers": workers,
        "parallel_seconds": round(parallel, 3),
        "speedup": round(sequential / parallel, 2) if parallel > 0 else 0.0,
    }


def run(smoke: bool, record: bool, results_dir: str) -> int:
    cpus = _cpu_count()
    mode = "smoke" if smoke else "full"
    sizes = SIZES_SMOKE if smoke else SIZES_FULL
    fsck_workers = 2 if smoke else min(4, max(2, cpus))
    print(f"[bench_shard] mode={mode} cpus={cpus} sizes={sizes}")

    with tempfile.TemporaryDirectory() as root:
        parity = bench_layout_parity(root, num_models=sizes[0])
        print(
            f"[bench_shard] parity: {parity['models']} models, "
            f"flat {parity['save_flat_seconds']}s, "
            f"sharded {parity['save_sharded_seconds']}s, "
            f"identical={parity['manifest_digest_identical']}"
        )
        if not parity["manifest_digest_identical"]:
            print("[bench_shard] FAIL: sharded save diverged from flat save")
            return 1

        rss = bench_rss(root, sizes)
        largest_dir = rss.pop("_largest_dir")
        print(
            f"[bench_shard] rss over {rss['models_small']}->"
            f"{rss['models_large']} models: mmap peak "
            f"{rss['mmap_peak_ratio']}x, resident delta "
            f"{rss['resident_growth']}x, resident/mmap at largest "
            f"{rss['resident_vs_mmap']}x"
        )
        if not smoke:
            if rss["mmap_peak_ratio"] > MMAP_FLAT_BOUND:
                print(
                    f"[bench_shard] FAIL: mmap peak RSS grew "
                    f"{rss['mmap_peak_ratio']}x (> {MMAP_FLAT_BOUND}x) over "
                    f"a {rss['models_large'] // rss['models_small']}x lake"
                )
                return 1
            if rss["resident_growth"] < RESIDENT_GROWTH_FLOOR:
                print(
                    f"[bench_shard] FAIL: resident RSS delta grew only "
                    f"{rss['resident_growth']}x (< {RESIDENT_GROWTH_FLOOR}x); "
                    "the materialized control is not measuring blob growth"
                )
                return 1
            if rss["resident_vs_mmap"] < RESIDENT_VS_MMAP_FLOOR:
                print(
                    f"[bench_shard] FAIL: materializing the largest lake "
                    f"cost only {rss['resident_vs_mmap']}x the mmap working "
                    f"set (< {RESIDENT_VS_MMAP_FLOOR}x)"
                )
                return 1
        elif rss["mmap_peak_large_kb"] > rss["resident_delta_large_kb"] \
                + rss["mmap_peak_small_kb"]:
            # Tiny smoke lakes sit inside allocator noise; only the
            # ordering of the two modes is a meaningful gate there.
            print(
                "[bench_shard] FAIL: mmap peak exceeded the resident "
                "working set even at smoke scale"
            )
            return 1

        fsck = bench_fsck(largest_dir, workers=fsck_workers)
        print(
            f"[bench_shard] fsck: {fsck['files_scanned']} files, "
            f"seq {fsck['sequential_seconds']}s, "
            f"x{fsck['workers']} {fsck['parallel_seconds']}s "
            f"({fsck['speedup']}x), clean={fsck['clean']}"
        )
        if not fsck["clean"]:
            print("[bench_shard] FAIL: fsck found problems in a fresh lake")
            return 1

    results = [
        BenchResult(bench="shard.layout", mode=mode, metrics={
            "models": float(parity["models"]),
            "save_flat_seconds": parity["save_flat_seconds"],
            "save_sharded_seconds": parity["save_sharded_seconds"],
            "manifest_digest_identical":
                float(parity["manifest_digest_identical"]),
        }),
        BenchResult(bench="shard.rss", mode=mode, metrics={
            "models_small": float(rss["models_small"]),
            "models_large": float(rss["models_large"]),
            "baseline_kb": float(rss["baseline_kb"]),
            "mmap_peak_small_kb": float(rss["mmap_peak_small_kb"]),
            "mmap_peak_large_kb": float(rss["mmap_peak_large_kb"]),
            "mmap_peak_ratio": rss["mmap_peak_ratio"],
            "mmap_delta_large_kb": float(rss["mmap_delta_large_kb"]),
            "resident_delta_small_kb":
                float(rss["resident_delta_small_kb"]),
            "resident_delta_large_kb":
                float(rss["resident_delta_large_kb"]),
            "resident_growth": rss["resident_growth"],
            "resident_vs_mmap": rss["resident_vs_mmap"],
        }),
        BenchResult(bench="shard.fsck", mode=mode, metrics={
            "files_scanned": float(fsck["files_scanned"]),
            "sequential_seconds": fsck["sequential_seconds"],
            "workers": float(fsck["workers"]),
            "parallel_seconds": fsck["parallel_seconds"],
            "speedup": fsck["speedup"],
        }),
    ]
    if record or not smoke:
        for result in results:
            path = append_result(results_dir, result)
            print(f"[bench_shard] recorded {result.bench} -> {path}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="quick determinism gate for CI (tiny lakes)")
    parser.add_argument("--record", action="store_true",
                        help="append to the trajectory even in smoke mode")
    parser.add_argument("--results", default=DEFAULT_RESULTS,
                        help=f"trajectory location (default {DEFAULT_RESULTS})")
    parser.add_argument("--child", choices=("baseline", "mmap", "resident"),
                        help=argparse.SUPPRESS)  # internal RSS probe
    parser.add_argument("--dir", default="", help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.child:
        print(_child_rss(args.child, args.dir))
        return 0
    return run(smoke=args.smoke, record=args.record, results_dir=args.results)


if __name__ == "__main__":
    sys.exit(main())
