"""E2 — Version-graph recovery from weights (MoTHer-style).

Regenerates: directed and undirected edge precision/recall/F1 of blind
recovery vs lake size, split by transform class, plus edge-label
accuracy and the direction-heuristic ablation.

Expected shape: weight-preserving edges (finetune/LoRA/edit/prune/
quantize) recover well; distillation and stitching edges are invisible
to weight analysis; topology (undirected) beats direction.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import record_table
from repro.core.benchmarking import (
    edge_precision_recall,
    transform_label_truth,
    undirected_edge_f1,
    version_edge_truth,
)
from repro.core.versioning import RecoveryConfig, recover_version_graph
from repro.lake import LakeSpec, generate_lake

SIZES = (
    ("small", LakeSpec(num_foundations=2, chains_per_foundation=3,
                       max_chain_depth=1, docs_per_domain=15,
                       foundation_epochs=8, specialize_epochs=6,
                       num_merges=1, num_stitches=0, seed=31)),
    ("medium", LakeSpec(num_foundations=3, chains_per_foundation=4,
                        max_chain_depth=2, docs_per_domain=15,
                        foundation_epochs=8, specialize_epochs=6,
                        num_merges=1, num_stitches=1, seed=32)),
)


@pytest.fixture(scope="module")
def recovery_table():
    rows = []
    bundles = {}
    for label, spec in SIZES:
        bundle = generate_lake(spec)
        bundles[label] = bundle
        result = recover_version_graph(bundle.lake)
        predicted = result.graph.edge_set()
        all_truth = version_edge_truth(bundle)
        weight_truth = version_edge_truth(bundle, weight_preserving_only=True)
        p_all, r_all, f_all = edge_precision_recall(predicted, all_truth)
        p_w, r_w, f_w = edge_precision_recall(predicted, weight_truth)
        undirected = undirected_edge_f1(predicted, weight_truth)
        labels = transform_label_truth(bundle)
        correct = total = 0
        for parent, child, data in result.graph.edges():
            true_kind = labels.get((parent, child))
            if true_kind is None:
                continue
            total += 1
            correct += data.get("kind") == true_kind
        rows.append({
            "label": label, "models": bundle.num_models,
            "f1_all": f_all, "p_w": p_w, "r_w": r_w, "f1_w": f_w,
            "undirected": undirected,
            "label_acc": correct / total if total else float("nan"),
        })
    lines = [
        f"{'lake':>8} {'models':>7} {'F1(all)':>8} {'P(wp)':>6} {'R(wp)':>6} "
        f"{'F1(wp)':>7} {'F1(undir)':>10} {'label acc':>10}"
    ]
    for row in rows:
        lines.append(
            f"{row['label']:>8} {row['models']:>7d} {row['f1_all']:>8.2f} "
            f"{row['p_w']:>6.2f} {row['r_w']:>6.2f} {row['f1_w']:>7.2f} "
            f"{row['undirected']:>10.2f} {row['label_acc']:>10.2f}"
        )
    record_table("E2_version_recovery", lines)
    return rows, bundles


class TestE2Recovery:
    def test_weight_preserving_edges_recovered(self, recovery_table):
        rows, _ = recovery_table
        for row in rows:
            assert row["f1_w"] >= 0.4, row

    def test_topology_at_least_as_good_as_direction(self, recovery_table):
        rows, _ = recovery_table
        for row in rows:
            assert row["undirected"] >= row["f1_w"] - 1e-9

    def test_edge_labels_mostly_right(self, recovery_table):
        rows, _ = recovery_table
        for row in rows:
            if not np.isnan(row["label_acc"]):
                assert row["label_acc"] >= 0.6

    def test_behavioral_fallback_ablation(self, recovery_table, probes):
        """Multi-viewpoint recovery: weight pass + behavioral fallback.

        Expected shape: the fallback only adds lineage-consistent edges
        (distill students attach to teacher or sibling), so all-edge
        recall rises without precision collapse.
        """
        from repro.core.versioning import VersionGraph

        _, bundles = recovery_table
        bundle = bundles["medium"]
        truth = version_edge_truth(bundle)
        history = VersionGraph.from_lake_history(bundle.lake)
        lines = [f"{'config':>26} {'P':>6} {'R':>6} {'F1':>6} {'extra edges':>12}"]
        rows = {}
        for label, config in (
            ("weights only", RecoveryConfig()),
            ("+ behavioral fallback", RecoveryConfig(behavioral_probes=probes)),
        ):
            result = recover_version_graph(bundle.lake, config=config)
            p, r, f1 = edge_precision_recall(result.graph.edge_set(), truth)
            rows[label] = (p, r, f1, result.behavioral_edges)
            lines.append(
                f"{label:>26} {p:>6.2f} {r:>6.2f} {f1:>6.2f} "
                f"{len(result.behavioral_edges):>12d}"
            )
        record_table("E2_behavioral_fallback", lines)
        plain_recall = rows["weights only"][1]
        fallback = rows["+ behavioral fallback"]
        assert fallback[1] >= plain_recall
        # Every behavioral edge connects models of one true lineage.
        for parent, child, _ in fallback[3]:
            assert history.is_version_of(parent, child)

    def test_direction_ablation(self, recovery_table):
        """Direction penalty on vs off (recorded as a table)."""
        _, bundles = recovery_table
        bundle = bundles["medium"]
        truth = version_edge_truth(bundle, weight_preserving_only=True)
        lines = [f"{'direction_penalty':>18} {'F1(wp)':>8}"]
        values = {}
        for penalty in (0.0, 0.5, 1.0):
            config = RecoveryConfig(direction_penalty=penalty)
            result = recover_version_graph(bundle.lake, config=config)
            _, _, f1 = edge_precision_recall(result.graph.edge_set(), truth)
            values[penalty] = f1
            lines.append(f"{penalty:>18.1f} {f1:>8.2f}")
        record_table("E2_direction_ablation", lines)
        assert max(values.values()) >= 0.45


class TestE2Timing:
    def test_bench_recovery(self, benchmark, mixed_lake):
        benchmark.pedantic(
            recover_version_graph, args=(mixed_lake.lake,), rounds=3, iterations=1
        )
