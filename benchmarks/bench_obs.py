"""E11 — Observability overhead: instrumentation must be near-free.

The acceptance bar: with span exporters disabled (the default state),
the instrumented ``SearchEngine.search`` over a ~50-model lake stays
within 5% wall-time of the uninstrumented code.  We measure that by
timing the shipped hot path against the same engine with the
instrumentation hooks stubbed out (a faithful stand-in for the
pre-instrumentation seed), plus the cost of turning span export *on*.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import record_bench_result, record_table
from repro.core.search import SearchEngine
from repro.core.search import engine as engine_module
from repro.obs import InMemoryExporter, add_exporter, remove_exporter

QUERIES = (
    "summarize legal documents court statute verdict",
    "analyze medical patient diagnosis clinical notes",
    "classify news election government policy reports",
    "understand code function compiler bug reports",
    "casual dialog conversation chat messages",
)


@pytest.fixture(scope="module")
def obs_lake():
    """A ~50-model lake; training is cut to the bone (only scale matters)."""
    from repro.lake import LakeSpec, generate_lake

    spec = LakeSpec(
        num_foundations=2, chains_per_foundation=16, max_chain_depth=2,
        docs_per_domain=8, foundation_epochs=2, specialize_epochs=2,
        num_merges=1, num_stitches=1, seed=42,
    )
    bundle = generate_lake(spec)
    assert bundle.num_models >= 40
    return bundle


class _NullTrace:
    """Stand-in for ``trace`` with the instrumentation compiled away."""

    def __init__(self, *args, **kwargs):
        pass

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


class _NullMetrics:
    """Stand-in for the ``obs_metrics`` module: every record is a no-op."""

    @staticmethod
    def inc(name, amount=1):
        pass

    @staticmethod
    def observe(name, value):
        pass

    @staticmethod
    def set_gauge(name, value):
        pass


class _NullInstrument:
    """Stand-in for a cached Counter/Histogram object."""

    @staticmethod
    def inc(amount=1):
        pass

    @staticmethod
    def observe(value):
        pass


def _time_sweep(engine: SearchEngine) -> float:
    """Wall time for one sweep over QUERIES."""
    start = time.perf_counter()
    for query in QUERIES:
        engine.search(query, k=5, method="hybrid")
    return time.perf_counter() - start


def _time_queries(engine: SearchEngine, rounds: int = 7) -> float:
    """Best-of-``rounds`` wall time for one sweep over QUERIES."""
    return min(_time_sweep(engine) for _ in range(rounds))


class TestObservabilityOverhead:
    def test_disabled_tracing_overhead_within_5_percent(self, obs_lake, probes):
        engine = SearchEngine(obs_lake.lake, probes)
        _time_queries(engine, rounds=2)  # warm caches before measuring

        # Interleave instrumented / stubbed sweeps round-by-round so CPU
        # frequency drift and scheduler noise hit both variants equally.
        # The stubs reconstruct the uninstrumented seed's hot path.
        saved = (
            engine_module.trace,
            engine_module.obs_metrics,
            engine_module._queries_counter,
            engine_module._latency_histogram,
        )
        stubs = (_NullTrace, _NullMetrics(), _NullInstrument(), _NullInstrument())

        def _patch(values):
            (
                engine_module.trace,
                engine_module.obs_metrics,
                engine_module._queries_counter,
                engine_module._latency_histogram,
            ) = values

        instrumented = uninstrumented = float("inf")
        try:
            for _ in range(15):
                instrumented = min(instrumented, _time_sweep(engine))
                _patch(stubs)
                try:
                    uninstrumented = min(uninstrumented, _time_sweep(engine))
                finally:
                    _patch(saved)
        finally:
            _patch(saved)

        exporter = add_exporter(InMemoryExporter())
        try:
            exporting = _time_queries(engine)
        finally:
            remove_exporter(exporter)

        overhead = instrumented / uninstrumented - 1.0
        export_overhead = exporting / uninstrumented - 1.0
        per_query = (instrumented - uninstrumented) / len(QUERIES)
        record_table("E11_obs_overhead", [
            f"models in lake:               {obs_lake.num_models}",
            f"queries per sweep:            {len(QUERIES)}",
            f"uninstrumented sweep:         {uninstrumented * 1e3:8.3f} ms",
            f"instrumented (exporters off): {instrumented * 1e3:8.3f} ms"
            f"  ({overhead:+.2%})",
            f"instrumented (ring buffer):   {exporting * 1e3:8.3f} ms"
            f"  ({export_overhead:+.2%})",
            f"overhead per query:           {per_query * 1e6:8.1f} us",
        ])
        record_bench_result("obs.overhead", {
            "uninstrumented_sweep_seconds": uninstrumented,
            "instrumented_sweep_seconds": instrumented,
            "exporting_sweep_seconds": exporting,
        })
        # The acceptance bar, with 1 ms of absolute slack per sweep so
        # scheduler noise cannot fail a sub-millisecond comparison.
        assert instrumented <= uninstrumented * 1.05 + 1e-3

    def test_bench_instrumented_search(self, benchmark, obs_lake, probes):
        engine = SearchEngine(obs_lake.lake, probes)
        benchmark(engine.search, QUERIES[0], 5, "hybrid")
