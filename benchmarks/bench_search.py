"""E1 — Model search quality vs documentation quality (Example 1.1).

Regenerates: P@3 and nDCG@5 for keyword / behavioral / hybrid search as
card corruption sweeps 0 -> 0.9, plus the hybrid-alpha ablation.

Expected shape: keyword matches content-based search on pristine cards,
then collapses as documentation degrades; behavioral search is flat
(it never reads cards); hybrid tracks the better channel.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import record_table
from repro.core.benchmarking import ndcg_at_k, precision_at_k, search_ground_truth
from repro.core.search import SearchEngine
from repro.data.domains import DOMAIN_NAMES
from repro.lake import CardCorruptor

QUERY_DOMAINS = ("legal", "medical", "news", "code")
CORRUPTION_LEVELS = (0.0, 0.3, 0.6, 0.9)
METHODS = ("keyword", "behavioral", "hybrid")

_QUERY_TEXT = {
    "legal": "summarize legal documents court statute verdict",
    "medical": "analyze medical patient diagnosis clinical notes",
    "news": "classify news election government policy reports",
    "code": "understand code function compiler bug reports",
}


def _evaluate(engine: SearchEngine, truth) -> dict:
    """Mean P@3 / nDCG@5 over the query domains, per method."""
    scores = {}
    for method in METHODS:
        precisions, ndcgs = [], []
        for domain in QUERY_DOMAINS:
            relevant = truth.relevant[domain]
            if not relevant:
                continue
            hits = engine.search(_QUERY_TEXT[domain], k=5, method=method)
            ranked = [h.model_id for h in hits]
            precisions.append(precision_at_k(ranked, relevant, 3))
            ndcgs.append(ndcg_at_k(ranked, truth.gains[domain], 5))
        scores[method] = (float(np.mean(precisions)), float(np.mean(ndcgs)))
    return scores


@pytest.fixture(scope="module")
def sweep(search_lake, probes):
    """Corruption sweep table (computed once, restored afterwards)."""
    lake = search_lake.lake
    truth = search_ground_truth(search_lake, accuracy_threshold=0.9)
    originals = {r.model_id: r.card.copy() for r in lake}
    rows = {}
    for level in CORRUPTION_LEVELS:
        for model_id, card in originals.items():
            lake.update_card(model_id, card.copy())
        if level > 0:
            CardCorruptor(
                missing_rate=level * 0.75, poison_rate=level * 0.25, seed=3
            ).apply(lake)
        engine = SearchEngine(lake, probes)
        rows[level] = _evaluate(engine, truth)
    for model_id, card in originals.items():
        lake.update_card(model_id, card)

    lines = [f"{'corruption':>10} | " + " | ".join(
        f"{m:>10} P@3  nDCG@5" for m in METHODS
    )]
    for level, scores in rows.items():
        cells = " | ".join(
            f"{scores[m][0]:>10.2f}  {scores[m][1]:>6.2f}" for m in METHODS
        )
        lines.append(f"{level:>10.1f} | {cells}")
    record_table("E1_search_vs_corruption", lines)
    return rows


class TestE1SearchQuality:
    def test_pristine_all_methods_work(self, sweep):
        for method in METHODS:
            assert sweep[0.0][method][0] >= 0.6, method

    def test_keyword_degrades_with_corruption(self, sweep):
        assert sweep[0.9]["keyword"][0] <= sweep[0.0]["keyword"][0] - 0.2

    def test_behavioral_robust_to_corruption(self, sweep):
        assert sweep[0.9]["behavioral"][0] >= sweep[0.0]["behavioral"][0] - 0.1

    def test_behavioral_beats_keyword_when_docs_bad(self, sweep):
        assert sweep[0.9]["behavioral"][0] > sweep[0.9]["keyword"][0]

    def test_hybrid_tracks_best_channel_when_docs_bad(self, sweep):
        hybrid = sweep[0.9]["hybrid"][0]
        assert hybrid >= sweep[0.9]["keyword"][0]


class TestE1AlphaAblation:
    def test_alpha_sweep(self, search_lake, probes):
        """Hybrid-alpha ablation at corruption 0.6."""
        lake = search_lake.lake
        truth = search_ground_truth(search_lake, accuracy_threshold=0.9)
        originals = {r.model_id: r.card.copy() for r in lake}
        CardCorruptor(missing_rate=0.45, poison_rate=0.15, seed=3).apply(lake)
        lines = [f"{'alpha':>6} | {'P@3':>6}"]
        results = {}
        for alpha in (0.0, 0.25, 0.5, 0.75, 1.0):
            engine = SearchEngine(lake, probes, hybrid_alpha=alpha)
            precisions = []
            for domain in QUERY_DOMAINS:
                relevant = truth.relevant[domain]
                if not relevant:
                    continue
                hits = engine.search(_QUERY_TEXT[domain], k=5, method="hybrid")
                precisions.append(
                    precision_at_k([h.model_id for h in hits], relevant, 3)
                )
            results[alpha] = float(np.mean(precisions))
            lines.append(f"{alpha:>6.2f} | {results[alpha]:>6.2f}")
        record_table("E1_hybrid_alpha_ablation", lines)
        for model_id, card in originals.items():
            lake.update_card(model_id, card)
        # Content-leaning alphas should not lose to metadata-only.
        assert results[0.25] >= results[1.0] - 0.05


class TestE1ProbeAblation:
    def test_probe_count_sweep(self, search_lake):
        """How many shared probes does behavioral search need?

        Expected shape: precision saturates quickly — a handful of
        probes per domain suffices, which is what makes behavioral
        indexing affordable at lake scale.
        """
        from repro.data.probes import make_text_probes

        truth = search_ground_truth(search_lake, accuracy_threshold=0.9)
        lines = [f"{'probes/domain':>14} {'P@3':>6}"]
        results = {}
        for per_domain in (1, 2, 4, 8):
            probes = make_text_probes(probes_per_domain=per_domain, seq_len=24)
            engine = SearchEngine(search_lake.lake, probes)
            precisions = []
            for domain in QUERY_DOMAINS:
                relevant = truth.relevant[domain]
                if not relevant:
                    continue
                hits = engine.search(
                    _QUERY_TEXT[domain], k=5, method="behavioral"
                )
                precisions.append(
                    precision_at_k([h.model_id for h in hits], relevant, 3)
                )
            results[per_domain] = float(np.mean(precisions))
            lines.append(f"{per_domain:>14d} {results[per_domain]:>6.2f}")
        record_table("E1_probe_count_ablation", lines)
        assert results[8] >= results[1] - 1e-9
        assert results[4] >= 0.7


class TestE1MixedModality:
    def test_cross_modality_retrieval(self, probes):
        """Content-based search must cover all models, "including large
        language models" — one shared behavioral space for both
        modalities.

        Measured: for each LM specialist, its rank under a query for its
        specialty domain, and whether its nearest behavioral neighbor is
        its own LM relative.
        """
        from repro.lake import LakeSpec, generate_lake

        spec = LakeSpec(
            num_foundations=1, chains_per_foundation=2, max_chain_depth=1,
            docs_per_domain=15, foundation_epochs=8, specialize_epochs=6,
            num_merges=0, num_stitches=0, seed=121,
            num_lm_foundations=1, lm_chains=2, lm_epochs=3,
        )
        bundle = generate_lake(spec)
        engine = SearchEngine(bundle.lake, probes)
        lines = [f"{'LM model':<44} {'specialty':>10} {'neighbor family':>16}"]
        lm_ids = [
            r.model_id for r in bundle.lake if r.family == "transformer_lm"
        ]
        neighbor_families = []
        for lm_id in lm_ids:
            hits = engine.related_models(lm_id, k=1, view="behavioral")
            family = bundle.lake.get_record(hits[0].model_id).family
            neighbor_families.append(family)
            lines.append(
                f"{bundle.lake.get_record(lm_id).name:<44} "
                f"{str(bundle.truth.specialty[lm_id]):>10} {family:>16}"
            )
        record_table("E1_mixed_modality", lines)
        # LMs live in the shared space and cluster with their relatives.
        assert len(lm_ids) == 3
        assert neighbor_families.count("transformer_lm") >= 2


class TestE1Timing:
    def test_bench_behavioral_query(self, benchmark, search_lake, probes):
        engine = SearchEngine(search_lake.lake, probes)
        benchmark(engine.search, _QUERY_TEXT["legal"], 5, "behavioral")

    def test_bench_keyword_query(self, benchmark, search_lake, probes):
        engine = SearchEngine(search_lake.lake, probes)
        benchmark(engine.search, _QUERY_TEXT["legal"], 5, "keyword")

    def test_bench_hybrid_query(self, benchmark, search_lake, probes):
        engine = SearchEngine(search_lake.lake, probes)
        benchmark(engine.search, _QUERY_TEXT["legal"], 5, "hybrid")

    def test_bench_engine_indexing(self, benchmark, search_lake, probes):
        """Index-build cost for the whole lake (embeds every model)."""
        benchmark.pedantic(
            SearchEngine, args=(search_lake.lake, probes), rounds=2, iterations=1
        )
