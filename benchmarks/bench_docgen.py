"""E7 — Documentation generation and verification quality.

Regenerates: (a) field-level quality of regenerated cards vs corruption
level — competent-domain coverage, base-model accuracy, completeness
recovered; (b) poisoned-card detection precision/recall of the verifier.

Expected shape: generated cards recover most of the documentation
regardless of how much was destroyed (generation reads behavior and
weights, not the old cards); the verifier catches most metric/base
poisonings with few false alarms.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import record_table
from repro.core.docgen import CardGenerator, CardVerifier
from repro.lake import CardCorruptor, LakeSpec, generate_lake

CORRUPTION_LEVELS = (0.3, 0.6, 1.0)


@pytest.fixture(scope="module")
def docgen_lake():
    spec = LakeSpec(
        num_foundations=2, chains_per_foundation=4, max_chain_depth=1,
        docs_per_domain=18, foundation_epochs=8, specialize_epochs=6,
        num_merges=0, num_stitches=0, seed=71,
    )
    return generate_lake(spec)


def _regeneration_quality(bundle, probes, level: float):
    """Score only the fields the generator actually had to regenerate
    (surviving truthful fields are kept verbatim and say nothing about
    generation quality)."""
    lake = bundle.lake
    originals = {r.model_id: r.card.copy() for r in lake}
    report = CardCorruptor(missing_rate=level, seed=5).apply(lake)
    generator = CardGenerator(lake, probes)
    domain_cov, base_acc, completeness = [], [], []
    for record in lake:
        corrupted_fields = {f for f, _ in report.fields_for(record.model_id)}
        repaired = generator.fill_missing_fields(record.model_id)
        if "training_domains" in corrupted_fields:
            true_competent = {
                d for d, a in bundle.truth.domain_accuracy[record.model_id].items()
                if a >= 0.9
            }
            inferred = set(repaired.training_domains)
            if true_competent:
                domain_cov.append(
                    len(inferred & true_competent) / len(true_competent)
                )
        if "base_model" in corrupted_fields:
            true_base = originals[record.model_id].base_model
            base_acc.append(
                float((repaired.base_model or None) == (true_base or None))
            )
        completeness.append(repaired.completeness())
    for model_id, card in originals.items():
        lake.update_card(model_id, card)
    return (
        float(np.mean(domain_cov)) if domain_cov else float("nan"),
        float(np.mean(base_acc)) if base_acc else float("nan"),
        float(np.mean(completeness)),
    )


@pytest.fixture(scope="module")
def regeneration_table(docgen_lake, probes):
    rows = {}
    lines = [
        f"{'missing rate':>13} {'domain coverage':>16} "
        f"{'base-model acc':>15} {'completeness':>13}"
    ]
    for level in CORRUPTION_LEVELS:
        rows[level] = _regeneration_quality(docgen_lake, probes, level)
        lines.append(
            f"{level:>13.1f} {rows[level][0]:>16.2f} "
            f"{rows[level][1]:>15.2f} {rows[level][2]:>13.2f}"
        )
    record_table("E7_card_regeneration", lines)
    return rows


class TestE7Regeneration:
    def test_domain_coverage_robust_to_corruption(self, regeneration_table):
        """Generation reads behavior, not old cards, so regenerated-field
        quality holds regardless of how much documentation was destroyed."""
        values = [row[0] for row in regeneration_table.values()
                  if not np.isnan(row[0])]
        assert values
        assert min(values) > 0.6

    def test_base_model_recovered(self, regeneration_table):
        assert regeneration_table[1.0][1] >= 0.5

    def test_completeness_restored(self, regeneration_table):
        assert regeneration_table[1.0][2] >= 0.6


class TestE7Verification:
    def test_poison_detection(self, docgen_lake, probes):
        """Poison a fraction of cards; measure verifier detection."""
        bundle = docgen_lake
        lake = bundle.lake
        originals = {r.model_id: r.card.copy() for r in lake}
        report = CardCorruptor(
            missing_rate=0.0, poison_rate=0.35, seed=9
        ).apply(lake)
        generator = CardGenerator(lake, probes)
        verifier = CardVerifier(generator)
        detectable_fields = {"base_model", "training_domains", "transform_summary"}
        poisoned = {
            (mid, f) for mid, fields in report.corrupted.items()
            for f, mode in fields
            if mode == "poison" and f in detectable_fields
        }
        flagged = set()
        clean_flags = 0
        for record in lake:
            for issue in verifier.verify(record.model_id):
                base_field = issue.field.split(".")[0]
                key = (record.model_id, base_field)
                if key in poisoned:
                    flagged.add(key)
                elif base_field in detectable_fields and issue.severity == "contradiction":
                    clean_flags += 1
        recall = len(flagged) / len(poisoned) if poisoned else 1.0
        lines = [
            f"poisoned detectable fields: {len(poisoned)}",
            f"flagged by verifier:        {len(flagged)}",
            f"detection recall:           {recall:.2f}",
            f"false contradiction flags:  {clean_flags}",
        ]
        record_table("E7_poison_detection", lines)
        for model_id, card in originals.items():
            lake.update_card(model_id, card)
        assert recall >= 0.4
        assert clean_flags <= len(lake.model_ids())


class TestE7Timing:
    def test_bench_draft_card(self, benchmark, docgen_lake, probes):
        generator = CardGenerator(docgen_lake.lake, probes)
        model_id = docgen_lake.truth.foundations[0]
        benchmark.pedantic(
            generator.draft_card, args=(model_id,), rounds=3, iterations=1
        )

    def test_bench_verify_card(self, benchmark, docgen_lake, probes):
        generator = CardGenerator(docgen_lake.lake, probes)
        verifier = CardVerifier(generator)
        model_id = docgen_lake.truth.foundations[0]
        benchmark.pedantic(
            verifier.verify, args=(model_id,), rounds=3, iterations=1
        )
