"""Static-analysis benchmark: full-tree lint latency, cold vs. cached.

Lint sits on the critical path of every CI run and (via ``repro lint``)
of the edit loop, so it has a latency budget: a full sweep of ``src``,
``tests``, and ``benchmarks`` must finish in under ``BUDGET_SECONDS``
even cold, and the content-hash cache must make warm runs dramatically
cheaper.

Usage::

    python benchmarks/bench_lint.py            # report cold/warm timings
    python benchmarks/bench_lint.py --smoke    # CI gate, exits non-zero on
                                               # budget overrun or cold cache

``--smoke`` runs the sweep twice against a throwaway cache file: the
first pass must be all cache misses and beat the budget; the second
must be all cache hits, strictly faster, and byte-identical in its
findings — which is what proves the cache layer is both exercised and
correct.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.analysis import LintConfig, run_lint  # noqa: E402

LINT_PATHS = ["src", "tests", "benchmarks"]
BUDGET_SECONDS = 5.0


def timed_sweep(cache_path: str) -> tuple:
    config = LintConfig(paths=LINT_PATHS, root=REPO_ROOT, cache_path=cache_path)
    start = time.perf_counter()
    result = run_lint(config)
    return result, time.perf_counter() - start


def run(smoke: bool) -> int:
    with tempfile.TemporaryDirectory(prefix="bench-lint-") as scratch:
        cache_path = os.path.join(scratch, "lint-cache.json")
        cold, cold_seconds = timed_sweep(cache_path)
        warm, warm_seconds = timed_sweep(cache_path)

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    print(
        f"[bench_lint] files={cold.files_scanned} "
        f"findings={len(cold.findings)} baselined={len(cold.baseline_suppressed)}"
    )
    print(
        f"[bench_lint] cold={cold_seconds:.3f}s "
        f"(hits={cold.cache_hits} misses={cold.cache_misses})  "
        f"warm={warm_seconds:.3f}s "
        f"(hits={warm.cache_hits} misses={warm.cache_misses})  "
        f"speedup={speedup:.1f}x  budget={BUDGET_SECONDS:.0f}s"
    )

    failures = []
    if cold_seconds >= BUDGET_SECONDS:
        failures.append(
            f"cold full-tree lint took {cold_seconds:.3f}s "
            f">= budget {BUDGET_SECONDS}s"
        )
    if cold.cache_hits != 0 or cold.cache_misses != cold.files_scanned:
        failures.append("first sweep should miss the cache for every file")
    if warm.cache_misses != 0 or warm.cache_hits != warm.files_scanned:
        failures.append("second sweep should hit the cache for every file")
    if warm_seconds >= cold_seconds:
        failures.append("cached sweep was not faster than the cold sweep")
    if warm.findings != cold.findings:
        failures.append("cached findings diverged from cold findings")
    if smoke and cold.exit_code(strict=True) != 0:
        failures.append("tree is not lint-clean in strict mode")

    for failure in failures:
        print(f"[bench_lint] FAIL: {failure}")
    if not failures:
        print("[bench_lint] OK")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: also require a strict-clean tree",
    )
    args = parser.parse_args()
    return run(smoke=args.smoke)


if __name__ == "__main__":
    raise SystemExit(main())
