"""Static-analysis benchmark: full-tree lint latency, cold vs. cached.

Lint sits on the critical path of every CI run and (via ``repro lint``)
of the edit loop, so it has a latency budget: a full sweep of ``src``,
``tests``, and ``benchmarks`` must finish in under ``BUDGET_SECONDS``
even cold, and the content-hash cache must make warm runs dramatically
cheaper.

Usage::

    python benchmarks/bench_lint.py            # report cold/warm timings
    python benchmarks/bench_lint.py --smoke    # CI gate, exits non-zero on
                                               # budget overrun or cold cache
    python benchmarks/bench_lint.py --graph    # whole-program phase instead:
                                               # cold build budget + the
                                               # incremental-invalidation proof

``--smoke`` runs the sweep twice against a throwaway cache file: the
first pass must be all cache misses and beat the budget; the second
must be all cache hits, strictly faster, and byte-identical in its
findings — which is what proves the cache layer is both exercised and
correct.

``--graph`` exercises the dependency-aware graph cache the same way:
a cold full-tree graph build must beat ``GRAPH_BUDGET_SECONDS``, a warm
rerun must replay every module from cache, and after a single-file edit
the re-analyzed set must be exactly the edited file plus its
reverse-import closure — no more (the cache works) and no less (the
cache is sound).

``--dataflow`` benchmarks the CFG/taint phase on ``src`` alone: a cold
sweep must beat ``DATAFLOW_BUDGET_SECONDS``, a warm rerun must replay
every module from cache, and a one-file edit must re-analyze exactly
the file plus its reverse-import closure.  Full runs (and ``--record``)
append a ``lint.dataflow`` point to the perf trajectory; ``--check``
gates the fresh numbers against the committed history.

``--perf`` does the same for the cost-model perf pack (``lint.perf``
trajectory): cold budget ``PERF_BUDGET_SECONDS``, all-hits warm rerun,
and the exact reverse-closure invalidation set after a one-file edit.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.analysis import LintConfig, collect_sources, run_lint  # noqa: E402
from repro.analysis.cache import content_digest  # noqa: E402
from repro.analysis.dataflow import DataflowCache, analyze_dataflow  # noqa: E402
from repro.analysis.perf import PerfCache, analyze_perf  # noqa: E402
from repro.analysis.graph import (  # noqa: E402
    GraphCache,
    analyze_project,
    build_project,
    load_contract,
    module_name_for,
)
from repro.obs.timeseries import (  # noqa: E402
    BenchResult,
    append_result,
    check_regression,
    load_trajectory,
)

LINT_PATHS = ["src", "tests", "benchmarks"]
DATAFLOW_PATHS = ["src"]
BUDGET_SECONDS = 5.0
GRAPH_BUDGET_SECONDS = 2.0
DATAFLOW_BUDGET_SECONDS = 4.0
PERF_BUDGET_SECONDS = 4.0
DEFAULT_RESULTS = os.path.join(REPO_ROOT, "benchmarks", "results")

#: The file the incremental proof edits: inside the analysis subsystem,
#: so its reverse-import closure is a real, nontrivial, strict subset of
#: the tree.
EDIT_TARGET = "src/repro/analysis/pragmas.py"


def timed_sweep(cache_path: str) -> tuple:
    config = LintConfig(paths=LINT_PATHS, root=REPO_ROOT, cache_path=cache_path)
    start = time.perf_counter()
    result = run_lint(config)
    return result, time.perf_counter() - start


def run(smoke: bool) -> int:
    with tempfile.TemporaryDirectory(prefix="bench-lint-") as scratch:
        cache_path = os.path.join(scratch, "lint-cache.json")
        cold, cold_seconds = timed_sweep(cache_path)
        warm, warm_seconds = timed_sweep(cache_path)

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    print(
        f"[bench_lint] files={cold.files_scanned} "
        f"findings={len(cold.findings)} baselined={len(cold.baseline_suppressed)}"
    )
    print(
        f"[bench_lint] cold={cold_seconds:.3f}s "
        f"(hits={cold.cache_hits} misses={cold.cache_misses})  "
        f"warm={warm_seconds:.3f}s "
        f"(hits={warm.cache_hits} misses={warm.cache_misses})  "
        f"speedup={speedup:.1f}x  budget={BUDGET_SECONDS:.0f}s"
    )

    failures = []
    if cold_seconds >= BUDGET_SECONDS:
        failures.append(
            f"cold full-tree lint took {cold_seconds:.3f}s "
            f">= budget {BUDGET_SECONDS}s"
        )
    if cold.cache_hits != 0 or cold.cache_misses != cold.files_scanned:
        failures.append("first sweep should miss the cache for every file")
    if warm.cache_misses != 0 or warm.cache_hits != warm.files_scanned:
        failures.append("second sweep should hit the cache for every file")
    if warm_seconds >= cold_seconds:
        failures.append("cached sweep was not faster than the cold sweep")
    if warm.findings != cold.findings:
        failures.append("cached findings diverged from cold findings")
    if smoke and cold.exit_code(strict=True) != 0:
        failures.append("tree is not lint-clean in strict mode")

    for failure in failures:
        print(f"[bench_lint] FAIL: {failure}")
    if not failures:
        print("[bench_lint] OK")
    return 1 if failures else 0


def run_graph() -> int:
    sources = collect_sources(REPO_ROOT, LINT_PATHS)
    contract = load_contract(os.path.join(REPO_ROOT, ".repro-arch.toml"))
    with tempfile.TemporaryDirectory(prefix="bench-graph-") as scratch:
        cache_path = os.path.join(scratch, "graph-cache.json")

        def sweep(files):
            cache = GraphCache(cache_path)
            start = time.perf_counter()
            report = analyze_project(files, contract, cache)
            elapsed = time.perf_counter() - start
            cache.save()
            return report, elapsed

        cold, cold_seconds = sweep(sources)
        warm, warm_seconds = sweep(sources)
        edited = dict(sources)
        new_source = edited[EDIT_TARGET][0] + "\n# bench edit\n"
        edited[EDIT_TARGET] = (new_source, content_digest(new_source))
        incremental, incremental_seconds = sweep(edited)

    source_roots = contract.source_roots if contract is not None else ("src",)
    edited_module = module_name_for(EDIT_TARGET, source_roots)
    closure = build_project(edited, contract).imports.reverse_closure(
        edited_module
    )

    print(
        f"[bench_lint --graph] modules={cold.modules} edges={cold.all_edges} "
        f"cycles={cold.cycles} findings={len(cold.findings)}"
    )
    print(
        f"[bench_lint --graph] cold={cold_seconds:.3f}s "
        f"(budget={GRAPH_BUDGET_SECONDS:.0f}s)  warm={warm_seconds:.3f}s "
        f"(re-analyzed={warm.files_reanalyzed})  "
        f"edit {EDIT_TARGET}: re-analyzed={incremental.files_reanalyzed} "
        f"expected={len(closure)} in {incremental_seconds:.3f}s"
    )

    failures = []
    if cold_seconds >= GRAPH_BUDGET_SECONDS:
        failures.append(
            f"cold full-tree graph build took {cold_seconds:.3f}s "
            f">= budget {GRAPH_BUDGET_SECONDS}s"
        )
    if cold.files_reanalyzed != cold.modules:
        failures.append("first build should analyze every module")
    if warm.files_reanalyzed != 0:
        failures.append(
            f"warm rerun re-analyzed {warm.files_reanalyzed} modules; "
            "an unchanged tree must replay entirely from cache"
        )
    if incremental.files_reanalyzed != len(closure):
        failures.append(
            f"one-file edit re-analyzed {incremental.files_reanalyzed} "
            f"modules, expected exactly the file plus its reverse-import "
            f"closure ({len(closure)})"
        )
    if not (0 < len(closure) < cold.modules):
        failures.append(
            "edit target's reverse closure should be a nonempty strict "
            "subset of the tree; pick a different EDIT_TARGET"
        )
    if incremental.findings != cold.findings:
        failures.append("comment-only edit changed the graph findings")

    for failure in failures:
        print(f"[bench_lint --graph] FAIL: {failure}")
    if not failures:
        print("[bench_lint --graph] OK")
    return 1 if failures else 0


def run_dataflow(
    smoke: bool,
    record: bool,
    check: bool,
    results_dir: str,
) -> int:
    sources = collect_sources(REPO_ROOT, DATAFLOW_PATHS)
    contract = load_contract(os.path.join(REPO_ROOT, ".repro-arch.toml"))
    with tempfile.TemporaryDirectory(prefix="bench-dataflow-") as scratch:
        cache_path = os.path.join(scratch, "dataflow-cache.json")

        def sweep(files):
            project = build_project(files, contract)
            cache = DataflowCache(cache_path)
            start = time.perf_counter()
            report = analyze_dataflow(files, project, cache)
            elapsed = time.perf_counter() - start
            cache.save()
            return report, elapsed

        cold, cold_seconds = sweep(sources)
        warm, warm_seconds = sweep(sources)
        edited = dict(sources)
        new_source = edited[EDIT_TARGET][0] + "\n# bench edit\n"
        edited[EDIT_TARGET] = (new_source, content_digest(new_source))
        incremental, incremental_seconds = sweep(edited)

    source_roots = contract.source_roots if contract is not None else ("src",)
    edited_module = module_name_for(EDIT_TARGET, source_roots)
    closure = build_project(edited, contract).imports.reverse_closure(
        edited_module
    )

    print(
        f"[bench_lint --dataflow] modules={cold.modules} "
        f"functions={cold.functions_analyzed} findings={len(cold.findings)}"
    )
    print(
        f"[bench_lint --dataflow] cold={cold_seconds:.3f}s "
        f"(budget={DATAFLOW_BUDGET_SECONDS:.0f}s)  warm={warm_seconds:.3f}s "
        f"(re-analyzed={warm.files_reanalyzed})  "
        f"edit {EDIT_TARGET}: re-analyzed={incremental.files_reanalyzed} "
        f"expected={len(closure)} in {incremental_seconds:.3f}s"
    )

    failures = []
    if cold_seconds >= DATAFLOW_BUDGET_SECONDS:
        failures.append(
            f"cold src dataflow sweep took {cold_seconds:.3f}s "
            f">= budget {DATAFLOW_BUDGET_SECONDS}s"
        )
    if cold.files_reanalyzed != cold.modules:
        failures.append("first sweep should analyze every module")
    if warm.files_reanalyzed != 0:
        failures.append(
            f"warm rerun re-analyzed {warm.files_reanalyzed} modules; "
            "an unchanged tree must replay entirely from cache"
        )
    if warm.findings != cold.findings:
        failures.append("cached findings diverged from cold findings")
    if incremental.files_reanalyzed != len(closure):
        failures.append(
            f"one-file edit re-analyzed {incremental.files_reanalyzed} "
            f"modules, expected exactly the file plus its reverse-import "
            f"closure ({len(closure)})"
        )
    if not (0 < len(closure) < cold.modules):
        failures.append(
            "edit target's reverse closure should be a nonempty strict "
            "subset of the tree; pick a different EDIT_TARGET"
        )

    mode = "smoke" if smoke else "full"
    result = BenchResult(bench="lint.dataflow", mode=mode, metrics={
        "modules": float(cold.modules),
        "functions": float(cold.functions_analyzed),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "incremental_seconds": incremental_seconds,
        "reanalyzed_after_edit": float(incremental.files_reanalyzed),
    })
    if check:
        history = load_trajectory(results_dir, result.bench)
        report = check_regression(result, history)
        print(report.to_text())
        if not report.passed:
            failures.append("dataflow timings regressed against trajectory")
    if record or not smoke:
        path = append_result(results_dir, result)
        print(f"[bench_lint --dataflow] recorded {result.bench} -> {path}")

    for failure in failures:
        print(f"[bench_lint --dataflow] FAIL: {failure}")
    if not failures:
        print("[bench_lint --dataflow] OK")
    return 1 if failures else 0


def run_perf(
    smoke: bool,
    record: bool,
    check: bool,
    results_dir: str,
) -> int:
    sources = collect_sources(REPO_ROOT, DATAFLOW_PATHS)
    contract = load_contract(os.path.join(REPO_ROOT, ".repro-arch.toml"))
    with tempfile.TemporaryDirectory(prefix="bench-perf-") as scratch:
        cache_path = os.path.join(scratch, "perf-cache.json")

        def sweep(files):
            project = build_project(files, contract)
            cache = PerfCache(cache_path)
            start = time.perf_counter()
            report = analyze_perf(files, project, cache)
            elapsed = time.perf_counter() - start
            cache.save()
            return report, elapsed

        cold, cold_seconds = sweep(sources)
        warm, warm_seconds = sweep(sources)
        edited = dict(sources)
        new_source = edited[EDIT_TARGET][0] + "\n# bench edit\n"
        edited[EDIT_TARGET] = (new_source, content_digest(new_source))
        incremental, incremental_seconds = sweep(edited)

    source_roots = contract.source_roots if contract is not None else ("src",)
    edited_module = module_name_for(EDIT_TARGET, source_roots)
    closure = build_project(edited, contract).imports.reverse_closure(
        edited_module
    )

    print(
        f"[bench_lint --perf] modules={cold.modules} "
        f"functions={cold.functions_analyzed} findings={len(cold.findings)}"
    )
    print(
        f"[bench_lint --perf] cold={cold_seconds:.3f}s "
        f"(budget={PERF_BUDGET_SECONDS:.0f}s)  warm={warm_seconds:.3f}s "
        f"(re-analyzed={warm.files_reanalyzed})  "
        f"edit {EDIT_TARGET}: re-analyzed={incremental.files_reanalyzed} "
        f"expected={len(closure)} in {incremental_seconds:.3f}s"
    )

    failures = []
    if cold_seconds >= PERF_BUDGET_SECONDS:
        failures.append(
            f"cold src perf sweep took {cold_seconds:.3f}s "
            f">= budget {PERF_BUDGET_SECONDS}s"
        )
    if cold.files_reanalyzed != cold.modules:
        failures.append("first sweep should analyze every module")
    if warm.files_reanalyzed != 0:
        failures.append(
            f"warm rerun re-analyzed {warm.files_reanalyzed} modules; "
            "an unchanged tree must replay entirely from cache"
        )
    if warm.findings != cold.findings:
        failures.append("cached findings diverged from cold findings")
    if incremental.files_reanalyzed != len(closure):
        failures.append(
            f"one-file edit re-analyzed {incremental.files_reanalyzed} "
            f"modules, expected exactly the file plus its reverse-import "
            f"closure ({len(closure)})"
        )
    if not (0 < len(closure) < cold.modules):
        failures.append(
            "edit target's reverse closure should be a nonempty strict "
            "subset of the tree; pick a different EDIT_TARGET"
        )

    mode = "smoke" if smoke else "full"
    result = BenchResult(bench="lint.perf", mode=mode, metrics={
        "modules": float(cold.modules),
        "functions": float(cold.functions_analyzed),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "incremental_seconds": incremental_seconds,
        "reanalyzed_after_edit": float(incremental.files_reanalyzed),
    })
    if check:
        history = load_trajectory(results_dir, result.bench)
        report = check_regression(result, history)
        print(report.to_text())
        if not report.passed:
            failures.append("perf-pack timings regressed against trajectory")
    if record or not smoke:
        path = append_result(results_dir, result)
        print(f"[bench_lint --perf] recorded {result.bench} -> {path}")

    for failure in failures:
        print(f"[bench_lint --perf] FAIL: {failure}")
    if not failures:
        print("[bench_lint --perf] OK")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: also require a strict-clean tree",
    )
    parser.add_argument(
        "--graph", action="store_true",
        help="benchmark the whole-program graph phase instead",
    )
    parser.add_argument(
        "--dataflow", action="store_true",
        help="benchmark the CFG/taint dataflow phase instead",
    )
    parser.add_argument(
        "--perf", action="store_true",
        help="benchmark the cost-model perf pack instead",
    )
    parser.add_argument(
        "--record", action="store_true",
        help="append the trajectory point even in smoke mode",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="gate the timings against the committed trajectory",
    )
    parser.add_argument(
        "--results", default=DEFAULT_RESULTS,
        help=f"trajectory location (default {DEFAULT_RESULTS})",
    )
    args = parser.parse_args()
    if args.perf:
        return run_perf(
            smoke=args.smoke, record=args.record, check=args.check,
            results_dir=args.results,
        )
    if args.dataflow:
        return run_dataflow(
            smoke=args.smoke, record=args.record, check=args.check,
            results_dir=args.results,
        )
    if args.graph:
        return run_graph()
    return run(smoke=args.smoke)


if __name__ == "__main__":
    raise SystemExit(main())
