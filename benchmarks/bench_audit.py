"""E8 — Audit: downstream risk flagging.

Regenerates: precision/recall of descendant flagging when a foundation
is found risky, comparing (a) the recorded version graph, (b) the
weight-recovered graph with all history hidden, and (c) a metadata-only
baseline that follows the (possibly corrupted) base_model card fields.

Expected shape: recorded graph is perfect; recovered graph catches most
weight-preserving descendants blind; the metadata baseline degrades
with card corruption.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import record_table
from repro.core.audit import propagate_risk
from repro.core.versioning import VersionGraph, recover_version_graph
from repro.lake import CardCorruptor, LakeSpec, generate_lake
from repro.transforms import TransformRecord


@pytest.fixture(scope="module")
def audit_lake():
    spec = LakeSpec(
        num_foundations=2, chains_per_foundation=4, max_chain_depth=2,
        docs_per_domain=16, foundation_epochs=8, specialize_epochs=6,
        num_merges=1, num_stitches=0, seed=81,
    )
    return generate_lake(spec)


def _metadata_graph(lake) -> VersionGraph:
    """Version graph built only from base_model card fields."""
    graph = VersionGraph()
    names = {}
    for record in lake:
        graph.add_model(record.model_id)
        names.setdefault(record.name, record.model_id)
    for record in lake:
        base = record.card.base_model
        if base and base in names:
            graph.add_edge(names[base], record.model_id,
                           TransformRecord(kind="finetune"))
    return graph


def _flagging_scores(graph, root, truth_descendants, threshold=0.2,
                     undirected=False):
    assessment = propagate_risk(graph, {root: 1.0}, undirected=undirected)
    flagged = assessment.flagged(threshold) - {root}
    if not flagged:
        return 0.0, 0.0
    tp = len(flagged & truth_descendants)
    precision = tp / len(flagged)
    recall = tp / len(truth_descendants) if truth_descendants else 1.0
    return precision, recall


@pytest.fixture(scope="module")
def audit_table(audit_lake):
    bundle = audit_lake
    lake = bundle.lake
    root = bundle.truth.foundations[0]
    recorded = VersionGraph.from_lake_history(lake)
    truth_descendants = recorded.descendants(root)

    rows = {}
    rows["recorded graph"] = _flagging_scores(recorded, root, truth_descendants)

    # Blind: hide all history and recover from weights.
    for record in lake:
        lake.set_history_visibility(record.model_id, False)
    recovered = recover_version_graph(lake).graph
    rows["recovered graph"] = _flagging_scores(recovered, root, truth_descendants)
    # Warning mode: recovered edge directions are heuristic, so audits
    # propagate warnings along them undirected for recall.
    rows["recovered (warning)"] = _flagging_scores(
        recovered, root, truth_descendants, undirected=True
    )
    for record in lake:
        lake.set_history_visibility(record.model_id, True)

    # Metadata baseline, pristine and corrupted cards.
    rows["metadata (pristine)"] = _flagging_scores(
        _metadata_graph(lake), root, truth_descendants
    )
    originals = {r.model_id: r.card.copy() for r in lake}
    CardCorruptor(missing_rate=0.5, poison_rate=0.2, seed=4).apply(lake)
    rows["metadata (corrupted)"] = _flagging_scores(
        _metadata_graph(lake), root, truth_descendants
    )
    for model_id, card in originals.items():
        lake.update_card(model_id, card)

    lines = [f"{'method':>22} {'precision':>10} {'recall':>8}"]
    for name, (precision, recall) in rows.items():
        lines.append(f"{name:>22} {precision:>10.2f} {recall:>8.2f}")
    record_table("E8_risk_flagging", lines)
    return rows, truth_descendants


class TestE8Audit:
    def test_recorded_graph_perfect(self, audit_table):
        rows, _ = audit_table
        assert rows["recorded graph"] == (1.0, 1.0)

    def test_recovered_warning_mode_useful(self, audit_table):
        rows, _ = audit_table
        precision, recall = rows["recovered (warning)"]
        assert recall >= 0.4
        assert precision >= 0.4

    def test_warning_mode_recall_dominates_directed(self, audit_table):
        rows, _ = audit_table
        assert rows["recovered (warning)"][1] >= rows["recovered graph"][1]

    def test_metadata_baseline_degrades_with_corruption(self, audit_table):
        rows, _ = audit_table
        assert rows["metadata (corrupted)"][1] <= rows["metadata (pristine)"][1]

    def test_pristine_metadata_matches_recorded(self, audit_table):
        """Truthful base_model fields reproduce the recorded single-parent
        lineage (multi-parent merges are the gap)."""
        rows, _ = audit_table
        assert rows["metadata (pristine)"][1] >= 0.7


class TestE8Timing:
    def test_bench_risk_propagation(self, benchmark, audit_lake):
        graph = VersionGraph.from_lake_history(audit_lake.lake)
        root = audit_lake.truth.foundations[0]
        benchmark(propagate_risk, graph, {root: 1.0})

    def test_bench_full_audit(self, benchmark, audit_lake, probes):
        from repro.core.audit import ModelAuditor
        from repro.core.docgen import CardGenerator

        generator = CardGenerator(audit_lake.lake, probes)
        auditor = ModelAuditor(audit_lake.lake, generator)
        model_id = audit_lake.truth.foundations[0]
        benchmark.pedantic(auditor.audit, args=(model_id,), rounds=3, iterations=1)
