"""Shared benchmark fixtures and the experiment-table recorder.

Each benchmark module computes its experiment's quality table once (in a
session fixture), records it under ``benchmarks/results/``, and then
times the operation under study with pytest-benchmark.  The tables are
the "rows/series the paper reports"; the timings are the systems story.

Every benchmark additionally snapshots the process-global metrics
registry (:mod:`repro.obs.metrics`) around its run: the wall time and
the counter deltas it caused are accumulated into
``results/observability.txt``, so each experiment row carries its
operational cost alongside its quality numbers.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterable, List

import pytest

from repro.data.probes import make_text_probes
from repro.lake import LakeSpec, generate_lake
from repro.obs import get_registry

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Rows accumulated by the per-test registry snapshots; written out at
#: session end as the "observability" table.
_OBS_ROWS: List[str] = []


def _counter_delta(before: Dict[str, int], after: Dict[str, int]) -> str:
    deltas = {
        name: after[name] - before.get(name, 0)
        for name in after
        if after[name] != before.get(name, 0)
    }
    if not deltas:
        return "-"
    return " ".join(f"{name}=+{delta}" for name, delta in sorted(deltas.items()))


@pytest.fixture(autouse=True)
def obs_snapshot(request):
    """Wrap every benchmark in a wall-clock + metrics-registry snapshot."""
    registry = get_registry()
    before = registry.snapshot()["counters"]
    start = time.perf_counter()
    yield
    wall = time.perf_counter() - start
    after = registry.snapshot()["counters"]
    _OBS_ROWS.append(
        f"{request.node.name:<52} {wall:9.3f}  {_counter_delta(before, after)}"
    )


def pytest_sessionfinish(session, exitstatus):
    if _OBS_ROWS:
        header = f"{'benchmark':<52} {'wall_s':>9}  counter deltas"
        record_table("observability", [header, "-" * len(header)] + _OBS_ROWS)


def record_table(name: str, lines: Iterable[str]) -> List[str]:
    """Persist an experiment table and echo it to stdout."""
    lines = list(lines)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    print(f"\n===== {name} =====")
    for line in lines:
        print(line)
    return lines


def record_bench_result(bench: str, metrics: Dict[str, float], mode: str = "full"):
    """Append a schema-versioned result to the perf trajectory.

    Gated on ``REPRO_BENCH_RECORD`` so ordinary pytest runs stay
    read-only; set it (as the CI perf job does) to extend the series
    under ``results/trajectory/`` via :mod:`repro.obs.timeseries`.
    """
    if not os.environ.get("REPRO_BENCH_RECORD"):
        return None
    from repro.obs.timeseries import BenchResult, append_result

    return append_result(
        RESULTS_DIR, BenchResult(bench=bench, mode=mode, metrics=dict(metrics))
    )


@pytest.fixture(scope="session")
def probes():
    return make_text_probes(probes_per_domain=4, seq_len=24)


@pytest.fixture(scope="session")
def search_lake():
    """E1 lake: opaque names, one clean specialist per domain."""
    spec = LakeSpec(
        num_foundations=2, chains_per_foundation=4, max_chain_depth=1,
        docs_per_domain=20, foundation_epochs=8, specialize_epochs=6,
        transform_mix={"finetune": 0.6, "lora": 0.4},
        num_merges=0, num_stitches=0, seed=1, opaque_names=True,
    )
    return generate_lake(spec)


@pytest.fixture(scope="session")
def mixed_lake():
    """E2/E6/E7/E8 lake: every transform kind, deeper chains."""
    spec = LakeSpec(
        num_foundations=3, chains_per_foundation=4, max_chain_depth=2,
        docs_per_domain=18, foundation_epochs=8, specialize_epochs=6,
        num_merges=1, num_stitches=1, seed=8,
    )
    return generate_lake(spec)
