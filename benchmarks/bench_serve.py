"""Serving load drill: micro-batched vs per-request dispatch under load.

Measures the serve layer's throughput claim and records it on the perf
trajectory (``benchmarks/results/trajectory/serve.load.json``, via
:mod:`repro.obs.timeseries`):

1. **Closed-loop A/B** — N concurrent clients (N >= 8) hammer an
   in-process :class:`~repro.serve.server.LakeServer` over real HTTP,
   once with micro-batching enabled (``window > 0``) and once in
   per-request mode (``window == 0``), through exactly the same code
   path.  The acceptance criterion is hard-asserted: batched throughput
   must be *strictly* higher than per-request throughput.
2. **Open-loop arrival** — requests arrive on a Poisson schedule
   (seeded, reproducible) regardless of completions, the regime where
   queueing actually builds; p50/p99 and achieved qps are recorded.
3. **Parity** — every pool query's served ranking must be identical
   (ids and scores) to a sequential ``SearchEngine.search`` on the same
   snapshot, for every method the server exposes.

Any 5xx anywhere in the drill is a hard failure.

Usage::

    python benchmarks/bench_serve.py            # full run
    python benchmarks/bench_serve.py --smoke    # quick CI gate
    python benchmarks/bench_serve.py --smoke --check   # gate vs trajectory

Smoke runs are read-only gates (``--record`` forces recording); full
runs append to the trajectory.  ``--check`` judges the fresh result
against the committed baseline via the standard regression gate.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.client import HTTPConnection

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.lake import LakeSpec, generate_lake, save_lake  # noqa: E402
from repro.obs.timeseries import (  # noqa: E402
    BenchResult,
    append_result,
    check_regression,
    load_trajectory,
)
from repro.serve import LakeServer, LakeSnapshot, ServeConfig  # noqa: E402

DEFAULT_RESULTS = os.path.join(REPO_ROOT, "benchmarks", "results")
BENCH_NAME = "serve.load"

#: Worse-direction drift allowed before --check fails a metric.
#: Wall-clock and throughput both jitter hard on shared CI runners.
TOLERANCES = {
    "batched_qps": 1.75,
    "unbatched_qps": 1.75,
    "batch_speedup": 2.0,
    "batched_p50_seconds": 1.75,
    "batched_p99_seconds": 1.75,
    "open_qps": 1.75,
    "open_p99_seconds": 1.75,
}

#: One query per closed-loop client: every steady-state round fills the
#: batch to ``max_batch`` and dispatches without waiting out the window,
#: so the A/B measures coalescing, not idle window time.
QUERY_POOL = (
    "legal specialist",
    "medical fine-tuned",
    "code model",
    "news summarizer",
    "legal contract review",
    "medical triage notes",
    "code completion assistant",
    "news briefing model",
)

_SMOKE_SPEC = dict(
    num_foundations=1, chains_per_foundation=2, max_chain_depth=1,
    docs_per_domain=10, eval_docs_per_domain=4,
    foundation_epochs=4, specialize_epochs=3, seed=13,
)
_FULL_SPEC = dict(
    num_foundations=2, chains_per_foundation=3, max_chain_depth=1,
    docs_per_domain=12, eval_docs_per_domain=5,
    foundation_epochs=6, specialize_epochs=4, seed=13,
)

#: Closed-loop smoke SLO: generous enough for a loaded 1-core CI box,
#: tight enough to catch a serving path that stopped overlapping work.
SMOKE_P99_BOUND_SECONDS = 0.5


def _percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


class ServerHarness:
    """A LakeServer on a private event loop in a daemon thread.

    The snapshot is shared across harness instances (one per A/B phase);
    ``LakeServer.stop()`` closing it between phases is safe — the weight
    store reopens handles on demand.
    """

    def __init__(self, snapshot: LakeSnapshot, window: float,
                 workers: int = 2, max_batch: int = 64):
        config = ServeConfig(
            directory=snapshot.directory, host="127.0.0.1", port=0,
            workers=workers, window=window, max_batch=max_batch,
        )
        self._server = LakeServer(snapshot, config)
        self._loop = asyncio.new_event_loop()
        self._stop_event = None
        self._ready = threading.Event()
        self._failure = None
        self._thread = threading.Thread(
            target=self._run, name="bench-serve-loop", daemon=True
        )
        self.port = 0

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced to the
            # bench thread through start()/stop(); never silently lost.
            self._failure = exc
            self._ready.set()
        finally:
            self._loop.close()

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        await self._server.start()
        self.port = self._server.port
        self._ready.set()
        await self._stop_event.wait()
        await self._server.stop()

    def __enter__(self) -> "ServerHarness":
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("server did not start within 60s")
        if self._failure is not None:
            raise RuntimeError(f"server failed to start: {self._failure}")
        return self

    def __exit__(self, *exc_info) -> None:
        import contextlib

        with contextlib.suppress(RuntimeError):
            # The loop is already closed if the server crashed mid-run;
            # the crash itself is re-raised below.
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=60)
        if self._failure is not None:
            raise RuntimeError(f"server crashed: {self._failure}")


def _get_json(conn: HTTPConnection, target: str):
    conn.request("GET", target)
    response = conn.getresponse()
    body = response.read()
    return response.status, json.loads(body)


def _search_target(query: str, k: int, method: str) -> str:
    from urllib.parse import quote

    return f"/search?q={quote(query)}&k={k}&method={method}"


def closed_loop(port: int, clients: int, per_client: int, k: int):
    """Every client issues ``per_client`` requests back-to-back over a
    keep-alive connection; returns (elapsed, latencies, bad_statuses)."""
    barrier = threading.Barrier(clients + 1)
    latencies = []
    bad = []
    lock = threading.Lock()

    def worker(wid: int) -> None:
        conn = HTTPConnection("127.0.0.1", port)
        query = QUERY_POOL[wid % len(QUERY_POOL)]
        target = _search_target(query, k, "hybrid")
        mine = []
        mine_bad = []
        barrier.wait()
        for _ in range(per_client):
            start = time.perf_counter()
            status, _ = _get_json(conn, target)
            mine.append(time.perf_counter() - start)
            if status != 200:
                mine_bad.append(status)
        conn.close()
        with lock:
            latencies.extend(mine)
            bad.extend(mine_bad)

    threads = [
        # Mutations inside the workers are lock-guarded.
        threading.Thread(target=worker, args=(wid,), daemon=True)  # repro: noqa[shared-state-race]
        for wid in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return elapsed, latencies, bad


def open_loop(port: int, requests: int, rate: float, k: int, seed: int = 5):
    """Poisson arrivals at ``rate`` req/s; each request rides its own
    connection (the no-keep-alive regime where queueing builds)."""
    rng = random.Random(seed)
    latencies = []
    bad = []
    lock = threading.Lock()

    def one_request(index: int) -> None:
        conn = HTTPConnection("127.0.0.1", port)
        query = QUERY_POOL[index % len(QUERY_POOL)]
        start = time.perf_counter()
        try:
            status, _ = _get_json(conn, _search_target(query, k, "hybrid"))
        finally:
            conn.close()
        with lock:
            latencies.append(time.perf_counter() - start)
            if status != 200:
                bad.append(status)

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=32) as pool:
        for index in range(requests):
            pool.submit(one_request, index)
            time.sleep(rng.expovariate(rate))
    elapsed = time.perf_counter() - start
    return elapsed, latencies, bad


def check_parity(port: int, snapshot: LakeSnapshot, k: int) -> bool:
    """Served rankings must match sequential engine.search exactly."""
    conn = HTTPConnection("127.0.0.1", port)
    ok = True
    try:
        for query in QUERY_POOL[:4]:
            for method in ("hybrid", "behavioral", "keyword"):
                status, payload = _get_json(
                    conn, _search_target(query, k, method)
                )
                if status != 200:
                    print(f"[bench_serve] FAIL parity: {method} {query!r} "
                          f"-> HTTP {status}")
                    ok = False
                    continue
                expected = snapshot.engine.search(query, k=k, method=method)
                served_ids = [hit["model_id"] for hit in payload["results"]]
                expected_ids = [hit.model_id for hit in expected]
                if served_ids != expected_ids:
                    print(f"[bench_serve] FAIL parity: {method} {query!r} "
                          f"served {served_ids} != engine {expected_ids}")
                    ok = False
                    continue
                for hit, exp in zip(payload["results"], expected):
                    if abs(float(hit["score"]) - float(exp.score)) > 1e-6:
                        print(f"[bench_serve] FAIL parity: {method} "
                              f"{query!r} score drift on {exp.model_id}")
                        ok = False
                        break
    finally:
        conn.close()
    return ok


def build_lake_dir(root: str, mode: str) -> str:
    spec_kwargs = _SMOKE_SPEC if mode == "smoke" else _FULL_SPEC
    bundle = generate_lake(LakeSpec(**spec_kwargs))
    directory = os.path.join(root, "lake")
    save_lake(bundle.lake, directory, sharded=True)
    return directory


def run(mode: str, record: bool, results_dir: str, check: bool) -> int:
    clients = 8 if mode == "smoke" else 12
    per_client = 12 if mode == "smoke" else 40
    rounds = 3 if mode == "smoke" else 4
    open_requests = 80 if mode == "smoke" else 300
    open_rate = 300.0 if mode == "smoke" else 500.0
    k = 5

    failures = []
    with tempfile.TemporaryDirectory() as root:
        print(f"[bench_serve] generating lake ({mode}) ...")
        directory = build_lake_dir(root, mode)
        snapshot = LakeSnapshot.open(directory)
        models = len(snapshot.lake)
        print(f"[bench_serve] lake ready: {models} models")

        total_bad = []

        def one_round(port: int):
            elapsed, latencies, bad = closed_loop(
                port, clients, per_client, k
            )
            total_bad.extend(bad)
            return len(latencies) / elapsed if elapsed else 0.0, latencies

        # Both servers up at once, rounds interleaved A/B/A/B: ambient
        # load drift on a shared runner then hits both arms equally
        # instead of whichever phase ran second.  Same snapshot, same
        # clients, same queries — the only difference is the window.
        best = {"per-request": (0.0, []), "batched": (0.0, [])}
        with ServerHarness(
            snapshot, window=0.0, max_batch=clients
        ) as plain, ServerHarness(
            snapshot, window=0.002, max_batch=clients
        ) as micro:
            ports = {"per-request": plain.port, "batched": micro.port}
            for port in ports.values():
                closed_loop(port, clients, 2, k)  # warm-up
            for _ in range(rounds):
                for label, port in ports.items():
                    qps, latencies = one_round(port)
                    if qps > best[label][0]:
                        best[label] = (qps, latencies)
        for label, (qps, latencies) in best.items():
            print(f"[bench_serve] closed-loop {label}: {qps:.0f} qps "
                  f"(p99 {_percentile(latencies, 0.99) * 1e3:.1f} ms)")
        unbatched_qps = best["per-request"][0]
        batched_qps, batched_latencies = best["batched"]

        with ServerHarness(snapshot, window=0.002, max_batch=clients) as live:
            open_elapsed, open_latencies, open_bad = open_loop(
                live.port, open_requests, open_rate, k
            )
            total_bad.extend(open_bad)
            parity_ok = check_parity(live.port, snapshot, k)
        snapshot.close()

    open_qps = len(open_latencies) / open_elapsed if open_elapsed else 0.0
    batched_p50 = _percentile(batched_latencies, 0.50)
    batched_p99 = _percentile(batched_latencies, 0.99)
    open_p99 = _percentile(open_latencies, 0.99)
    speedup = batched_qps / unbatched_qps if unbatched_qps else 0.0
    print(f"[bench_serve] open-loop: {open_qps:.0f} qps achieved "
          f"(p99 {open_p99 * 1e3:.1f} ms)")
    print(f"[bench_serve] batching speedup: x{speedup:.2f}")

    fives = [status for status in total_bad if status >= 500]
    if fives:
        failures.append(f"{len(fives)} responses were 5xx: {fives[:5]}")
    if total_bad and not fives:
        failures.append(f"non-200 responses: {total_bad[:5]}")
    if not parity_ok:
        failures.append("served rankings diverged from sequential search")
    if batched_qps <= unbatched_qps:
        failures.append(
            f"batched throughput {batched_qps:.0f} qps must beat "
            f"per-request {unbatched_qps:.0f} qps at {clients} clients"
        )
    if mode == "smoke" and batched_p99 > SMOKE_P99_BOUND_SECONDS:
        failures.append(
            f"closed-loop p99 {batched_p99:.3f}s exceeds smoke bound "
            f"{SMOKE_P99_BOUND_SECONDS}s"
        )

    result = BenchResult(
        bench=BENCH_NAME,
        mode=mode,
        metrics={
            "models": float(models),
            "closed_clients": float(clients),
            "unbatched_qps": round(unbatched_qps, 1),
            "batched_qps": round(batched_qps, 1),
            "batch_speedup": round(speedup, 3),
            "batched_p50_seconds": round(batched_p50, 5),
            "batched_p99_seconds": round(batched_p99, 5),
            "open_qps": round(open_qps, 1),
            "open_p99_seconds": round(open_p99, 5),
            "errors_5xx": float(len(fives)),
        },
    )

    if check:
        history = load_trajectory(results_dir, BENCH_NAME)
        report = check_regression(result, history, tolerances=TOLERANCES)
        print(report.to_text())
        if not report.passed:
            failures.append(
                f"regression gate: {[c.metric for c in report.regressions]}"
            )

    if record:
        path = append_result(results_dir, result)
        print(f"[bench_serve] recorded -> {path}")

    if failures:
        for failure in failures:
            print(f"[bench_serve] FAIL: {failure}")
        return 1
    print("[bench_serve] OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small lake, short drill (CI gate)")
    parser.add_argument("--record", action="store_true",
                        help="append to the trajectory even in smoke mode")
    parser.add_argument("--check", action="store_true",
                        help="gate the fresh result against the trajectory")
    parser.add_argument("--results", default=DEFAULT_RESULTS,
                        metavar="DIR", help="trajectory location")
    args = parser.parse_args()
    mode = "smoke" if args.smoke else "full"
    record = args.record or not args.smoke
    return run(mode, record, args.results, args.check)


if __name__ == "__main__":
    sys.exit(main())
