"""E3 — Training-data attribution quality.

Regenerates: top-k same-domain precision of influence estimators
(grad-dot, TracIn) against the input-similarity and random baselines,
plus agreement with exact leave-one-out retraining on probe items.

Expected shape: grad-dot ≈ TracIn >> random; the model-free input
baseline is strong on this task (domain classification is input-driven)
but learned estimators must at least match it.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import record_table
from repro.core.attribution import (
    grad_dot_influence,
    input_similarity_baseline,
    leave_one_out_influence,
    random_baseline,
    tracin_influence,
)
from repro.data import Tokenizer, build_default_vocabulary, make_domain_dataset
from repro.nn import TextClassifier, train_classifier

TOP_K = 10
NUM_TEST_QUERIES = 4


@pytest.fixture(scope="module")
def attribution_setup():
    tokenizer = Tokenizer(build_default_vocabulary())
    train = make_domain_dataset(
        ["legal", "medical", "news", "code"], 15, seq_len=20, seed=41,
        tokenizer=tokenizer,
    )
    model = TextClassifier(tokenizer.vocab_size, 8, dim=12, hidden=(16,), seed=0)
    result = train_classifier(
        model, train.tokens, train.labels, epochs=8, lr=5e-3, seed=0,
        checkpoint_every=3,
    )
    tests = make_domain_dataset(
        ["legal", "medical"], NUM_TEST_QUERIES // 2, seq_len=20, seed=42,
        tokenizer=tokenizer,
    )
    return tokenizer, model, result, train, tests


def _same_domain_precision(train, scores_result, domain: str) -> float:
    top = scores_result.top_k(TOP_K)
    return float(np.mean([train.domains[i] == domain for i in top]))


@pytest.fixture(scope="module")
def attribution_table(attribution_setup):
    tokenizer, model, train_result, train, tests = attribution_setup
    template = TextClassifier(tokenizer.vocab_size, 8, dim=12, hidden=(16,), seed=0)
    methods = {}
    for name in ("grad_dot", "tracin", "input_similarity", "random"):
        methods[name] = []
    for i in range(len(tests)):
        x, y, domain = tests.tokens[i], int(tests.labels[i]), tests.domains[i]
        methods["grad_dot"].append(_same_domain_precision(
            train, grad_dot_influence(model, train.tokens, train.labels, x, y), domain
        ))
        methods["tracin"].append(_same_domain_precision(
            train,
            tracin_influence(
                train_result.checkpoints, train_result.checkpoint_lrs,
                template, train.tokens, train.labels, x, y,
            ),
            domain,
        ))
        methods["input_similarity"].append(_same_domain_precision(
            train, input_similarity_baseline(train.tokens, x), domain
        ))
        methods["random"].append(_same_domain_precision(
            train, random_baseline(len(train), seed=i), domain
        ))
    lines = [f"{'method':>18} {'same-domain P@10':>18}"]
    means = {}
    for name, values in methods.items():
        means[name] = float(np.mean(values))
        lines.append(f"{name:>18} {means[name]:>18.2f}")
    record_table("E3_attribution_precision", lines)
    return means


class TestE3Attribution:
    def test_gradient_methods_beat_random(self, attribution_table):
        assert attribution_table["grad_dot"] > attribution_table["random"] + 0.3
        assert attribution_table["tracin"] > attribution_table["random"] + 0.3

    def test_gradient_methods_match_input_baseline(self, attribution_table):
        assert attribution_table["grad_dot"] >= (
            attribution_table["input_similarity"] - 0.15
        )

    def test_loo_agreement(self, attribution_setup):
        """Exact LOO should rank grad-dot's top items above its bottom."""
        tokenizer, model, _, train, tests = attribution_setup
        x, y = tests.tokens[0], int(tests.labels[0])
        grad = grad_dot_influence(model, train.tokens, train.labels, x, y)
        order = np.argsort(-grad.scores)
        candidates = [int(order[0]), int(order[1]), int(order[-1]), int(order[-2])]
        loo = leave_one_out_influence(
            model.architecture_spec(), train.tokens, train.labels, x, y,
            candidates, epochs=6, seed=1,
        )
        lines = [f"{'candidate':>10} {'grad_dot':>10} {'LOO':>10}"]
        for c in candidates:
            lines.append(f"{c:>10d} {grad.scores[c]:>10.4f} {loo.scores[c]:>10.4f}")
        record_table("E3_loo_agreement", lines)
        assert loo.scores[candidates[:2]].mean() > loo.scores[candidates[2:]].mean()


class TestE3Timing:
    def test_bench_grad_dot(self, benchmark, attribution_setup):
        _, model, _, train, tests = attribution_setup
        benchmark.pedantic(
            grad_dot_influence,
            args=(model, train.tokens, train.labels,
                  tests.tokens[0], int(tests.labels[0])),
            rounds=3, iterations=1,
        )

    def test_bench_input_similarity(self, benchmark, attribution_setup):
        _, _, _, train, tests = attribution_setup
        benchmark(input_similarity_baseline, train.tokens, tests.tokens[0])
