"""E6 — Weight-space modeling: predicting model properties from weights.

Regenerates: cross-validated accuracy of meta-models predicting (a) the
lineage root (foundation family), (b) specialty domain, and (c) the
transform kind from delta features — each against the majority-class
baseline — plus the cross-task linearity table (Zhou et al.).

Expected shape: root-family prediction is easy (architecture + weight
statistics give it away); specialty is harder; transform-kind from
deltas is near-perfect (each operator has a crisp signature); sibling
fine-tunes are linearly connected while independent models show a
barrier.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import record_table
from repro.core.versioning import VersionGraph
from repro.data import make_domain_dataset
from repro.lake import LakeSpec, generate_lake
from repro.nn import TextClassifier, train_classifier
from repro.transforms import finetune_classifier
from repro.weightspace import (
    MetaDataset,
    build_meta_dataset,
    cross_validated_accuracy,
    delta_features,
    linearity_gap,
)


@pytest.fixture(scope="module")
def weightspace_lake():
    spec = LakeSpec(
        num_foundations=3, chains_per_foundation=5, max_chain_depth=1,
        docs_per_domain=15, foundation_epochs=8, specialize_epochs=6,
        num_merges=0, num_stitches=0, seed=61,
    )
    return generate_lake(spec)


def _majority_baseline(labels: dict) -> float:
    values = list(labels.values())
    counts = {v: values.count(v) for v in set(values)}
    return max(counts.values()) / len(values)


@pytest.fixture(scope="module")
def property_table(weightspace_lake):
    bundle = weightspace_lake
    states = {
        mid: bundle.lake.get_model(mid, force=True).state_dict()
        for mid in bundle.lake.model_ids()
    }
    graph = VersionGraph.from_lake_history(bundle.lake)
    tasks = {
        "root_family": {mid: graph.root_of(mid) for mid in states},
        "specialty": {
            mid: (s or "generalist") for mid, s in bundle.truth.specialty.items()
        },
    }
    lines = [f"{'property':>16} {'meta-model CV acc':>18} {'majority':>9}"]
    results = {}
    for name, labels in tasks.items():
        dataset = build_meta_dataset(states, labels)
        accuracy = cross_validated_accuracy(dataset, folds=4, epochs=60, seed=0)
        baseline = _majority_baseline(labels)
        results[name] = (accuracy, baseline)
        lines.append(f"{name:>16} {accuracy:>18.2f} {baseline:>9.2f}")

    # Transform-kind prediction from delta features (nearest-centroid).
    deltas, kinds = [], []
    for parents, child, record in bundle.truth.edges:
        if len(parents) != 1 or record.kind == "distill":
            continue
        kind = "finetune" if record.kind == "preference" else record.kind
        deltas.append(delta_features(states[parents[0]], states[child]))
        kinds.append(kind)
    if len(set(kinds)) > 1:
        from repro.core.versioning import classify_transform

        correct = sum(
            classify_transform(states[parents[0]], states[child])
            == ("finetune" if record.kind == "preference" else record.kind)
            for parents, child, record in bundle.truth.edges
            if len(parents) == 1 and record.kind != "distill"
        )
        total = sum(
            1 for parents, _, record in bundle.truth.edges
            if len(parents) == 1 and record.kind != "distill"
        )
        results["transform_kind"] = (correct / total, _majority_baseline(
            {i: k for i, k in enumerate(kinds)}
        ))
        lines.append(
            f"{'transform_kind':>16} {results['transform_kind'][0]:>18.2f} "
            f"{results['transform_kind'][1]:>9.2f}"
        )
    record_table("E6_weightspace_properties", lines)
    return results


class TestE6WeightSpace:
    def test_root_family_predictable(self, property_table):
        accuracy, baseline = property_table["root_family"]
        assert accuracy > baseline + 0.15

    def test_transform_kind_predictable(self, property_table):
        accuracy, baseline = property_table["transform_kind"]
        assert accuracy >= 0.8
        assert accuracy > baseline

    def test_linearity_gap(self, weightspace_lake):
        """Zhou et al.: sibling fine-tunes are linearly connected."""
        bundle = weightspace_lake
        foundation_id = bundle.truth.foundations[0]
        kids = [
            c for p, c, r in bundle.truth.edges
            if p == (foundation_id,) and r.kind in ("finetune", "lora", "preference")
        ]
        if len(kids) < 2:
            pytest.skip("need two weight-aligned siblings")
        sibling_a = bundle.lake.get_model(kids[0], force=True)
        sibling_b = bundle.lake.get_model(kids[1], force=True)
        # Independent same-architecture model.
        spec = sibling_a.architecture_spec()
        unrelated = TextClassifier(
            spec["vocab_size"], spec["num_classes"], dim=spec["dim"],
            hidden=tuple(spec["hidden"]), seed=999,
        )
        train_classifier(
            unrelated, bundle.base_dataset.tokens, bundle.base_dataset.labels,
            epochs=8, lr=5e-3, seed=999,
        )
        gap = linearity_gap(
            sibling_a, sibling_b, unrelated, bundle.eval_dataset, num_points=7
        )
        lines = [
            f"sibling barrier:   {gap['sibling_barrier']:.3f}",
            f"unrelated barrier: {gap['unrelated_barrier']:.3f}",
            f"gap:               {gap['gap']:.3f}",
        ]
        record_table("E6_linearity_gap", lines)
        assert gap["sibling_barrier"] < gap["unrelated_barrier"]


class TestE6Timing:
    def test_bench_feature_extraction(self, benchmark, weightspace_lake):
        from repro.weightspace import model_weight_features

        state = weightspace_lake.lake.get_model(
            weightspace_lake.truth.foundations[0], force=True
        ).state_dict()
        benchmark(model_weight_features, state)

    def test_bench_metamodel_fit(self, benchmark, weightspace_lake):
        from repro.weightspace import WeightSpaceModel

        bundle = weightspace_lake
        states = {
            mid: bundle.lake.get_model(mid, force=True).state_dict()
            for mid in bundle.lake.model_ids()
        }
        labels = {mid: (s or "generalist") for mid, s in bundle.truth.specialty.items()}
        dataset = build_meta_dataset(states, labels)
        benchmark.pedantic(
            lambda: WeightSpaceModel(seed=0).fit(dataset, epochs=40),
            rounds=3, iterations=1,
        )
