"""E4 — Membership inference AUC vs overfitting.

Regenerates: loss-threshold and calibrated-attack AUC as training
epochs sweep (generalization gap grows), at two dataset sizes.

Expected shape: AUC rises monotonically-ish with epochs (more
memorization), calibrated >= plain, and smaller training sets leak more.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import record_table
from repro.core.attribution import calibrated_attack, loss_threshold_attack
from repro.data import Tokenizer, build_default_vocabulary, make_domain_dataset
from repro.nn import TextClassifier, train_classifier

EPOCH_SWEEP = (4, 15, 40)
SIZES = (8, 20)  # docs per domain


def _attack_auc(tokenizer, docs_per_domain: int, epochs: int):
    members = make_domain_dataset(
        ["legal", "medical"], docs_per_domain, seq_len=20, seed=51,
        tokenizer=tokenizer, mixture_noise=0.35,
    )
    nonmembers = make_domain_dataset(
        ["legal", "medical"], docs_per_domain, seq_len=20, seed=52,
        tokenizer=tokenizer, mixture_noise=0.35,
    )
    reference_data = make_domain_dataset(
        ["legal", "medical"], docs_per_domain, seq_len=20, seed=53,
        tokenizer=tokenizer, mixture_noise=0.35,
    )
    model = TextClassifier(tokenizer.vocab_size, 8, dim=12, hidden=(20,), seed=0)
    train_classifier(model, members.tokens, members.labels,
                     epochs=epochs, lr=5e-3, seed=0)
    reference = TextClassifier(tokenizer.vocab_size, 8, dim=12, hidden=(20,), seed=3)
    train_classifier(reference, reference_data.tokens, reference_data.labels,
                     epochs=epochs, lr=5e-3, seed=3)
    plain = loss_threshold_attack(
        model, members.tokens, members.labels,
        nonmembers.tokens, nonmembers.labels,
    ).auc
    calibrated = calibrated_attack(
        model, reference, members.tokens, members.labels,
        nonmembers.tokens, nonmembers.labels,
    ).auc
    return plain, calibrated


@pytest.fixture(scope="module")
def auc_table():
    tokenizer = Tokenizer(build_default_vocabulary())
    rows = {}
    lines = [f"{'docs/domain':>12} {'epochs':>7} {'AUC(loss)':>10} {'AUC(calib)':>11}"]
    for size in SIZES:
        for epochs in EPOCH_SWEEP:
            plain, calibrated = _attack_auc(tokenizer, size, epochs)
            rows[(size, epochs)] = (plain, calibrated)
            lines.append(
                f"{size:>12d} {epochs:>7d} {plain:>10.3f} {calibrated:>11.3f}"
            )
    record_table("E4_membership_auc", lines)
    return rows


class TestE4Membership:
    def test_auc_grows_with_overfitting(self, auc_table):
        for size in SIZES:
            low = auc_table[(size, EPOCH_SWEEP[0])][0]
            high = auc_table[(size, EPOCH_SWEEP[-1])][0]
            assert high >= low - 0.05
            assert high > 0.6

    def test_calibration_helps_or_neutral(self, auc_table):
        improvements = [
            calibrated - plain for plain, calibrated in auc_table.values()
        ]
        assert np.mean(improvements) > -0.05

    def test_smaller_data_leaks_more(self, auc_table):
        small = auc_table[(SIZES[0], EPOCH_SWEEP[-1])][0]
        large = auc_table[(SIZES[1], EPOCH_SWEEP[-1])][0]
        assert small >= large - 0.1


class TestE4Timing:
    def test_bench_loss_attack(self, benchmark):
        tokenizer = Tokenizer(build_default_vocabulary())
        members = make_domain_dataset(
            ["legal"], 10, seq_len=20, seed=54, tokenizer=tokenizer
        )
        nonmembers = make_domain_dataset(
            ["legal"], 10, seq_len=20, seed=55, tokenizer=tokenizer
        )
        model = TextClassifier(tokenizer.vocab_size, 8, dim=12, seed=0)
        train_classifier(model, members.tokens, members.labels, epochs=5, seed=0)
        benchmark(
            loss_threshold_attack, model, members.tokens, members.labels,
            nonmembers.tokens, nonmembers.labels,
        )
