"""E5 — Indexer scalability: HNSW vs flat scan vs LSH.

Regenerates: recall@10 and per-query latency as the number of indexed
model embeddings grows, plus the HNSW ef_search/recall trade-off.

Expected shape: flat is exact (recall 1.0) with latency growing
linearly in N; HNSW holds recall near 1.0 with much flatter latency
growth (its win appears at lake scale); LSH is fast but recall-poor on
high-dimensional embeddings.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import record_table
from repro.index import FlatIndex, HNSWIndex, LSHIndex, measure_recall

DIM = 32
SIZES = (200, 1000, 5000)
NUM_QUERIES = 25


def _clustered_vectors(n: int, seed: int) -> np.ndarray:
    """Synthetic model-embedding distribution: clustered by family."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(max(8, n // 100), DIM)) * 3
    assignments = rng.integers(len(centers), size=n)
    return centers[assignments] + rng.normal(scale=0.4, size=(n, DIM))


def _queries_from(vectors: np.ndarray, seed: int = 9) -> np.ndarray:
    """In-distribution queries: perturbed data points (standard recall
    protocol — queries drawn far outside the indexed distribution make
    'nearest neighbor' itself ill-posed)."""
    rng = np.random.default_rng(seed)
    idx = rng.choice(len(vectors), NUM_QUERIES, replace=False)
    return vectors[idx] + rng.normal(scale=0.2, size=(NUM_QUERIES, DIM))


@pytest.fixture(scope="module")
def scaling_table():
    rows = {}
    lines = [
        f"{'N':>6} | {'flat us/q':>10} | {'hnsw us/q':>10} {'recall':>7} | "
        f"{'lsh us/q':>9} {'recall':>7}"
    ]
    for n in SIZES:
        vectors = _clustered_vectors(n, seed=n)
        queries = _queries_from(vectors)
        ids = [f"v{i}" for i in range(n)]
        flat = FlatIndex()
        flat.build(ids, vectors)
        hnsw = HNSWIndex(m=8, ef_construction=64, ef_search=48, seed=0)
        hnsw.build(ids, vectors)
        lsh = LSHIndex(num_tables=8, bits_per_table=10, seed=0)
        lsh.build(ids, vectors)

        def time_queries(index):
            start = time.perf_counter()
            for q in queries:
                index.query(q, k=10)
            return (time.perf_counter() - start) / NUM_QUERIES * 1e6

        flat_us = time_queries(flat)
        hnsw_us = time_queries(hnsw)
        lsh_us = time_queries(lsh)
        hnsw_recall = measure_recall(hnsw, flat, queries, k=10)
        lsh_recall = measure_recall(lsh, flat, queries, k=10)
        rows[n] = dict(
            flat_us=flat_us, hnsw_us=hnsw_us, hnsw_recall=hnsw_recall,
            lsh_us=lsh_us, lsh_recall=lsh_recall,
        )
        lines.append(
            f"{n:>6d} | {flat_us:>10.1f} | {hnsw_us:>10.1f} "
            f"{hnsw_recall:>7.2f} | {lsh_us:>9.1f} {lsh_recall:>7.2f}"
        )
    record_table("E5_index_scaling", lines)
    return rows


class TestE5Scaling:
    def test_hnsw_recall_high(self, scaling_table):
        for n, row in scaling_table.items():
            assert row["hnsw_recall"] >= 0.8, (n, row)

    def test_hnsw_latency_grows_sublinearly(self, scaling_table):
        """Flat latency scales ~linearly with N; HNSW must grow much
        slower (the sublinear-search promise of §5)."""
        small, large = SIZES[0], SIZES[-1]
        flat_growth = scaling_table[large]["flat_us"] / scaling_table[small]["flat_us"]
        hnsw_growth = scaling_table[large]["hnsw_us"] / scaling_table[small]["hnsw_us"]
        assert hnsw_growth < flat_growth

    def test_ef_recall_tradeoff(self):
        vectors = _clustered_vectors(1500, seed=7)
        ids = [f"v{i}" for i in range(len(vectors))]
        flat = FlatIndex()
        flat.build(ids, vectors)
        hnsw = HNSWIndex(m=8, ef_construction=64, seed=0)
        hnsw.build(ids, vectors)
        queries = _queries_from(vectors, seed=3)
        lines = [f"{'ef_search':>10} {'recall@10':>10}"]
        recalls = {}
        for ef in (10, 24, 48, 96):
            recall = float(np.mean([
                len({i for i, _ in hnsw.query(q, k=10, ef=ef)}
                    & {i for i, _ in flat.query(q, k=10)}) / 10
                for q in queries
            ]))
            recalls[ef] = recall
            lines.append(f"{ef:>10d} {recall:>10.2f}")
        record_table("E5_ef_recall_tradeoff", lines)
        assert recalls[96] >= recalls[10]


class TestE5Timing:
    @pytest.fixture(scope="class")
    def built_indexes(self):
        vectors = _clustered_vectors(2000, seed=5)
        ids = [f"v{i}" for i in range(len(vectors))]
        flat = FlatIndex()
        flat.build(ids, vectors)
        hnsw = HNSWIndex(m=8, ef_construction=64, ef_search=48, seed=0)
        hnsw.build(ids, vectors)
        lsh = LSHIndex(num_tables=8, bits_per_table=10, seed=0)
        lsh.build(ids, vectors)
        query = _queries_from(vectors, seed=11)[0]
        return flat, hnsw, lsh, query

    def test_bench_flat_query(self, benchmark, built_indexes):
        flat, _, _, query = built_indexes
        benchmark(flat.query, query, 10)

    def test_bench_hnsw_query(self, benchmark, built_indexes):
        _, hnsw, _, query = built_indexes
        benchmark(hnsw.query, query, 10)

    def test_bench_lsh_query(self, benchmark, built_indexes):
        _, _, lsh, query = built_indexes
        benchmark(lsh.query, query, 10)

    def test_bench_hnsw_insert(self, benchmark, built_indexes):
        _, hnsw, _, _ = built_indexes
        counter = [0]

        def insert_one():
            counter[0] += 1
            hnsw.add(f"new{counter[0]}", np.random.default_rng(counter[0]).normal(size=DIM))

        benchmark.pedantic(insert_one, rounds=20, iterations=1)
