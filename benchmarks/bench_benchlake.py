"""E10 — Benchmark-lake construction and lifelong evaluation.

Regenerates: (a) the benchmark-lake construction audit — counts of
models, edges, transform kinds, specialists, datasets, all with
verified ground truth; (b) the lifelong-ledger cost curve: evaluations
performed per growth step, incremental vs naive full re-evaluation.

Expected shape: incremental cost per step is O(new cells) while naive
cost is O(all cells), so the gap widens every step.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from benchmarks.conftest import record_table
from repro.core.benchmarking import Benchmark, LifelongLedger
from repro.data import make_domain_dataset
from repro.lake import LakeSpec, generate_lake
from repro.nn import TextClassifier


@pytest.fixture(scope="module")
def benchlake():
    spec = LakeSpec(
        num_foundations=3, chains_per_foundation=4, max_chain_depth=2,
        docs_per_domain=15, foundation_epochs=8, specialize_epochs=6,
        num_merges=1, num_stitches=1, seed=101,
    )
    return generate_lake(spec)


class TestE10Construction:
    def test_construction_audit(self, benchlake):
        bundle = benchlake
        kinds = Counter(record.kind for _, _, record in bundle.truth.edges)
        specialists = sum(1 for s in bundle.truth.specialty.values() if s)
        lines = [
            f"models:                 {bundle.num_models}",
            f"derivation edges:       {len(bundle.truth.edges)}",
            f"transform kinds:        {dict(sorted(kinds.items()))}",
            f"specialists:            {specialists}",
            f"dataset versions:       {len(bundle.lake.datasets)}",
            f"foundations:            {len(bundle.truth.foundations)}",
        ]
        record_table("E10_benchmark_lake", lines)
        assert bundle.num_models >= 20
        assert len(kinds) >= 5  # diverse transforms, as §5 requires
        assert specialists >= 4

    def test_ground_truth_complete(self, benchlake):
        """Every model has labels for every task's ground truth."""
        bundle = benchlake
        for record in bundle.lake:
            assert record.model_id in bundle.truth.model_domains
            assert record.model_id in bundle.truth.domain_accuracy
            assert record.model_id in bundle.truth.specialty


class TestE10Lifelong:
    def test_incremental_vs_naive_cost(self, benchlake):
        bundle = benchlake
        ledger = LifelongLedger(lake=bundle.lake)
        ledger.add_benchmark(Benchmark("eval", bundle.eval_dataset, "accuracy"))

        lines = [
            f"{'step':>20} {'incremental':>12} {'naive full':>11} {'coverage':>9}"
        ]
        incremental_total = 0
        naive_total = 0

        def step(label):
            nonlocal incremental_total, naive_total
            performed = ledger.refresh()
            incremental_total += performed
            naive = len(bundle.lake) * len(ledger.benchmarks)
            naive_total += naive
            lines.append(
                f"{label:>20} {performed:>12d} {naive:>11d} "
                f"{ledger.coverage():>9.2f}"
            )
            return performed, naive

        step("initial")
        # Growth: three new models arrive.
        for i in range(3):
            model = TextClassifier(
                bundle.tokenizer.vocab_size, 8, dim=8, hidden=(8,), seed=200 + i
            )
            bundle.lake.add_model(model, name=f"arrival-{i}")
        inc_models, naive_models = step("+3 models")
        # A new benchmark arrives.
        extra = make_domain_dataset(
            ["legal"], 6, seq_len=24, seed=102, tokenizer=bundle.tokenizer
        )
        ledger.add_benchmark(Benchmark("legal-only", extra, "accuracy"))
        inc_bench, naive_bench = step("+1 benchmark")

        lines.append(f"{'TOTAL':>20} {incremental_total:>12d} {naive_total:>11d}")
        record_table("E10_lifelong_cost", lines)

        assert inc_models == 3  # only the newcomers
        assert inc_models < naive_models
        assert incremental_total < naive_total

    def test_leaderboard_consistency(self, benchlake):
        bundle = benchlake
        ledger = LifelongLedger(lake=bundle.lake)
        ledger.add_benchmark(Benchmark("eval2", bundle.eval_dataset, "accuracy"))
        ledger.refresh()
        top_id, top_score = ledger.leaderboard("eval2", k=1)[0]
        assert top_score >= max(
            np.mean(list(acc.values()))
            for acc in bundle.truth.domain_accuracy.values()
        ) - 0.15


class TestE10Timing:
    def test_bench_lake_generation(self, benchmark):
        spec = LakeSpec(
            num_foundations=1, chains_per_foundation=2, max_chain_depth=1,
            docs_per_domain=10, foundation_epochs=4, specialize_epochs=3,
            num_merges=0, num_stitches=0, seed=111,
        )
        benchmark.pedantic(generate_lake, args=(spec,), rounds=2, iterations=1)

    def test_bench_ledger_refresh(self, benchmark, benchlake):
        bundle = benchlake

        def fresh_refresh():
            ledger = LifelongLedger(lake=bundle.lake)
            ledger.add_benchmark(Benchmark("tmp", bundle.eval_dataset, "accuracy"))
            return ledger.refresh()

        benchmark.pedantic(fresh_refresh, rounds=3, iterations=1)
