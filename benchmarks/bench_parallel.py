"""Parallel-generation and index hot-path benchmark.

Measures the three perf claims of the parallel subsystem and records
them as schema-versioned results on the perf trajectory
(``benchmarks/results/trajectory/``, via :mod:`repro.obs.timeseries`):

1. **Wave-scheduled generation** — wall time of ``generate_lake`` at
   ``workers=1`` versus ``workers=N``, with a bit-identity check (same
   model ids, weight digests, and derivation edges).  The speedup is
   bounded by the physical core count of the host: on a single-core
   container the parallel run pays pool overhead and cannot beat
   sequential, which is why the report records ``cpu_count``.
2. **Embedding cache** — a cold ``SearchEngine`` build (every model
   loaded and embedded) versus a warm rebuild from the on-disk cache.
3. **Vectorized HNSW** — build and query time of the batched-distance
   search path versus the scalar reference path, plus an id-level
   parity check.

Usage::

    python benchmarks/bench_parallel.py            # full run
    python benchmarks/bench_parallel.py --smoke    # quick CI gate

``--smoke`` builds a tiny lake twice (sequential and parallel), asserts
the digests match, exercises the warm-cache path, and exits non-zero on
any divergence.  Smoke runs are read-only gates; full runs append to
the trajectory (``--record`` forces recording for smoke too).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.search import SearchEngine  # noqa: E402
from repro.data.probes import make_text_probes  # noqa: E402
from repro.index import HNSWIndex  # noqa: E402
from repro.lake.generator import LakeSpec, generate_lake  # noqa: E402
from repro.obs.timeseries import BenchResult, append_result  # noqa: E402

DEFAULT_RESULTS = os.path.join(REPO_ROOT, "benchmarks", "results")

FULL_SPEC = dict(
    num_foundations=8,
    chains_per_foundation=4,
    max_chain_depth=2,
    docs_per_domain=12,
    eval_docs_per_domain=5,
    foundation_epochs=4,
    specialize_epochs=3,
    num_merges=2,
    num_stitches=2,
    seed=17,
    hidden_history_fraction=0.3,
    num_lm_foundations=2,
    lm_chains=1,
    lm_epochs=1,
)

SMOKE_SPEC = dict(
    num_foundations=2,
    chains_per_foundation=2,
    max_chain_depth=1,
    docs_per_domain=8,
    eval_docs_per_domain=4,
    foundation_epochs=2,
    specialize_epochs=2,
    num_merges=1,
    num_stitches=1,
    seed=3,
    num_lm_foundations=1,
    lm_chains=1,
    lm_epochs=1,
)


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _fingerprint(bundle) -> dict:
    records = list(bundle.lake)
    return {
        "ids": [r.model_id for r in records],
        "digests": [r.weights_digest for r in records],
        "edges": [
            (tuple(parents), child, transform.kind)
            for parents, child, transform in bundle.truth.edges
        ],
    }


def _timed_generate(spec_kwargs: dict, workers: int):
    start = time.perf_counter()
    bundle = generate_lake(LakeSpec(**spec_kwargs, workers=workers))
    return bundle, time.perf_counter() - start


def bench_generation(spec_kwargs: dict, parallel_workers: int) -> dict:
    sequential, seq_seconds = _timed_generate(spec_kwargs, workers=1)
    parallel, par_seconds = _timed_generate(spec_kwargs, workers=parallel_workers)
    identical = _fingerprint(sequential) == _fingerprint(parallel)
    return {
        "models": len(list(sequential.lake)),
        "sequential_seconds": round(seq_seconds, 3),
        "parallel_workers": parallel_workers,
        "parallel_seconds": round(par_seconds, 3),
        "speedup": round(seq_seconds / par_seconds, 3),
        "bit_identical": identical,
        "_bundle": sequential,
    }


def bench_warm_cache(bundle) -> dict:
    probes = make_text_probes(probes_per_domain=4, seq_len=24)
    with tempfile.TemporaryDirectory() as cache_dir:
        start = time.perf_counter()
        SearchEngine(bundle.lake, probes, cache_dir=cache_dir)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        SearchEngine(bundle.lake, probes, cache_dir=cache_dir)
        warm = time.perf_counter() - start
    return {
        "cold_build_seconds": round(cold, 3),
        "warm_build_seconds": round(warm, 3),
        "speedup": round(cold / warm, 2),
    }


def bench_hnsw(n: int = 1500, dim: int = 32, num_queries: int = 50) -> dict:
    rng = np.random.default_rng(21)
    centers = rng.normal(size=(12, dim)) * 3
    vectors = centers[rng.integers(12, size=n)] + rng.normal(scale=0.4, size=(n, dim))
    ids = [f"v{i}" for i in range(n)]
    queries = vectors[rng.choice(n, num_queries, replace=False)] + rng.normal(
        scale=0.2, size=(num_queries, dim)
    )

    timings = {}
    results = {}
    for label, vectorized in (("scalar", False), ("vectorized", True)):
        index = HNSWIndex(m=8, ef_construction=64, ef_search=48, seed=0,
                          vectorized=vectorized)
        start = time.perf_counter()
        index.build(ids, vectors)
        build = time.perf_counter() - start
        start = time.perf_counter()
        hits = [index.query(q, k=10) for q in queries]
        query = time.perf_counter() - start
        timings[label] = (build, query)
        results[label] = [[i for i, _ in per_query] for per_query in hits]

    scalar_build, scalar_query = timings["scalar"]
    vector_build, vector_query = timings["vectorized"]
    return {
        "indexed_vectors": n,
        "queries": num_queries,
        "scalar_build_seconds": round(scalar_build, 3),
        "vectorized_build_seconds": round(vector_build, 3),
        "build_speedup": round(scalar_build / vector_build, 2),
        "scalar_query_us": round(scalar_query / num_queries * 1e6, 1),
        "vectorized_query_us": round(vector_query / num_queries * 1e6, 1),
        "query_speedup": round(scalar_query / vector_query, 2),
        "same_ids": results["scalar"] == results["vectorized"],
    }


def run(smoke: bool, record: bool, results_dir: str) -> int:
    cpus = _cpu_count()
    mode = "smoke" if smoke else "full"
    spec_kwargs = SMOKE_SPEC if smoke else FULL_SPEC
    parallel_workers = 2 if smoke else min(4, max(2, cpus))

    print(f"[bench_parallel] mode={mode} cpus={cpus}")
    generation = bench_generation(spec_kwargs, parallel_workers)
    bundle = generation.pop("_bundle")
    print(
        f"[bench_parallel] generation: {generation['models']} models, "
        f"seq {generation['sequential_seconds']}s, "
        f"x{parallel_workers} {generation['parallel_seconds']}s, "
        f"identical={generation['bit_identical']}"
    )
    if not generation["bit_identical"]:
        print("[bench_parallel] FAIL: parallel lake diverged from sequential")
        return 1

    warm = bench_warm_cache(bundle)
    print(
        f"[bench_parallel] cache: cold {warm['cold_build_seconds']}s, "
        f"warm {warm['warm_build_seconds']}s ({warm['speedup']}x)"
    )

    # Generation speedup is bounded by physical cores: on a 1-core host
    # the parallel run mostly measures pool overhead (>=2x needs >=4
    # cores), which is why the host facts on each BenchResult — not the
    # raw ratio — decide which recorded runs may gate each other.
    results = [
        BenchResult(bench="parallel.generation", mode=mode, metrics={
            "models": float(generation["models"]),
            "sequential_seconds": generation["sequential_seconds"],
            "parallel_workers": float(parallel_workers),
            "parallel_seconds": generation["parallel_seconds"],
            "speedup": generation["speedup"],
            "bit_identical": float(generation["bit_identical"]),
        }),
        BenchResult(bench="parallel.warm_cache", mode=mode, metrics={
            "cold_build_seconds": warm["cold_build_seconds"],
            "warm_build_seconds": warm["warm_build_seconds"],
            "speedup": warm["speedup"],
        }),
    ]
    if not smoke:
        hnsw = bench_hnsw()
        print(
            f"[bench_parallel] hnsw query: scalar {hnsw['scalar_query_us']}us, "
            f"vectorized {hnsw['vectorized_query_us']}us "
            f"({hnsw['query_speedup']}x), same_ids={hnsw['same_ids']}"
        )
        if not hnsw["same_ids"]:
            print("[bench_parallel] FAIL: vectorized HNSW returned different ids")
            return 1
        results.append(BenchResult(bench="parallel.hnsw", mode=mode, metrics={
            "indexed_vectors": float(hnsw["indexed_vectors"]),
            "queries": float(hnsw["queries"]),
            "scalar_build_seconds": hnsw["scalar_build_seconds"],
            "vectorized_build_seconds": hnsw["vectorized_build_seconds"],
            "build_speedup": hnsw["build_speedup"],
            "scalar_query_us": hnsw["scalar_query_us"],
            "vectorized_query_us": hnsw["vectorized_query_us"],
            "query_speedup": hnsw["query_speedup"],
            "same_ids": float(hnsw["same_ids"]),
        }))

    if record or not smoke:
        for result in results:
            path = append_result(results_dir, result)
            print(f"[bench_parallel] recorded {result.bench} -> {path}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="quick determinism gate for CI (tiny lake)")
    parser.add_argument("--record", action="store_true",
                        help="append to the trajectory even in smoke mode")
    parser.add_argument("--results", default=DEFAULT_RESULTS,
                        help=f"trajectory location (default {DEFAULT_RESULTS})")
    args = parser.parse_args()
    return run(smoke=args.smoke, record=args.record, results_dir=args.results)


if __name__ == "__main__":
    sys.exit(main())
