"""E9 — Citation stability under lake evolution.

Regenerates: the citation re-resolution matrix — citations taken at
time t are resolved after a sequence of lake mutations (metric updates,
card edits, new models), and each resolution is classified.

Expected shape: every citation remains resolvable; artifact identity
(weights digest) is never confused; the snapshot id detects evolution
exactly; fresh citations differ per snapshot.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import record_table
from repro.core.citation import cite_model, resolve_citation
from repro.lake import LakeSpec, ModelCard, generate_lake
from repro.nn import TextClassifier


@pytest.fixture(scope="module")
def citation_rows():
    spec = LakeSpec(
        num_foundations=2, chains_per_foundation=3, max_chain_depth=1,
        docs_per_domain=15, foundation_epochs=6, specialize_epochs=5,
        num_merges=0, num_stitches=0, seed=91,
    )
    bundle = generate_lake(spec)
    lake = bundle.lake
    citations = {mid: cite_model(lake, mid) for mid in lake.model_ids()}
    statuses = []

    # Mutation sequence mirroring real lake evolution.
    mutations = [
        ("record metric", lambda: lake.record_metric(
            bundle.truth.foundations[0], "new_bench", 0.9)),
        ("edit a card", lambda: lake.update_card(
            bundle.truth.foundations[1], ModelCard(model_name="edited"))),
        ("add a model", lambda: lake.add_model(
            TextClassifier(bundle.tokenizer.vocab_size, 8, dim=8, seed=123),
            name="latecomer")),
    ]
    lines = [f"{'after mutation':>16} {'exact':>6} {'evolved':>8} {'other':>6}"]
    rows = []
    for label, mutate in mutations:
        mutate()
        outcome = {"exact": 0, "lake_evolved": 0, "other": 0}
        for citation in citations.values():
            status = resolve_citation(lake, citation).status
            outcome[status if status in outcome else "other"] += 1
        rows.append((label, outcome))
        lines.append(
            f"{label:>16} {outcome['exact']:>6d} "
            f"{outcome['lake_evolved']:>8d} {outcome['other']:>6d}"
        )
    record_table("E9_citation_stability", lines)
    return bundle, citations, rows


class TestE9Citation:
    def test_artifacts_never_confused(self, citation_rows):
        """No citation ever resolves to changed weights or goes missing."""
        _, _, rows = citation_rows
        for _, outcome in rows:
            assert outcome["other"] == 0

    def test_evolution_always_detected(self, citation_rows):
        _, _, rows = citation_rows
        # After the first mutation, nothing resolves as exact anymore.
        for _, outcome in rows:
            assert outcome["exact"] == 0
            assert outcome["lake_evolved"] > 0

    def test_fresh_citations_are_new_versions(self, citation_rows):
        bundle, citations, _ = citation_rows
        model_id = bundle.truth.foundations[0]
        fresh = cite_model(bundle.lake, model_id)
        assert fresh.lake_snapshot != citations[model_id].lake_snapshot
        assert fresh.weights_digest == citations[model_id].weights_digest

    def test_lineage_encoded(self, citation_rows):
        bundle, citations, _ = citation_rows
        child = next(c for p, c, _ in bundle.truth.edges)
        assert citations[child].lineage_depth >= 1
        assert citations[child].root_id in bundle.truth.foundations


class TestE9Timing:
    def test_bench_cite(self, benchmark, citation_rows):
        bundle, _, _ = citation_rows
        benchmark(cite_model, bundle.lake, bundle.truth.foundations[0])

    def test_bench_resolve(self, benchmark, citation_rows):
        bundle, citations, _ = citation_rows
        citation = citations[bundle.truth.foundations[0]]
        benchmark(resolve_citation, bundle.lake, citation)
